//! `CTJAM_FORCE_SCALAR=1` escape-hatch test: with the hatch set, a
//! `Backend::Simd` request must still run the scalar oracle bit-exactly
//! — this is what keeps CI honest on machines where feature detection
//! is disabled or absent.
//!
//! This test owns its own integration-test binary (hence its own
//! process): the hatch is read once per process and cached, and the
//! backend switch is process-global, so it cannot share a binary with
//! tests that exercise the SIMD path.

use ctjam_nn::batch::Batch;
use ctjam_nn::kernel::{self, Backend};
use ctjam_nn::matrix::{gemm_nn_into, gemm_nn_scalar_into, Matrix};
use ctjam_nn::mlp::{BatchScratch, MlpBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn force_scalar_pins_the_oracle_bit_exactly() {
    // Set the hatch before any kernel code could have cached it — this
    // is the first and only test in this binary.
    std::env::set_var("CTJAM_FORCE_SCALAR", "1");
    assert!(kernel::force_scalar(), "escape hatch not picked up");

    // A SIMD request must be visibly recorded yet have no effect.
    kernel::set_backend(Backend::Simd);
    assert_eq!(kernel::requested_backend(), Backend::Simd);
    assert_eq!(kernel::active_backend(), Backend::Scalar);
    assert!(!kernel::simd_active());

    // Raw kernel dispatch: bit-exact with the scalar oracle.
    let mut rng = StdRng::seed_from_u64(99);
    let (s, k, n) = (6, 13, 21);
    let a: Vec<f64> = (0..s * k).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let mut dispatched = vec![0.0; s * n];
    let mut oracle = vec![0.0; s * n];
    gemm_nn_into(&a, s, k, &b, n, &mut dispatched);
    gemm_nn_scalar_into(&a, s, k, &b, n, &mut oracle);
    assert_eq!(dispatched, oracle, "dispatch diverged from the oracle");

    // And the full batched network path stays bit-exact with the
    // per-sample path, exactly as the scalar contract promises.
    let net = MlpBuilder::new(7).hidden(9).output(4).build(&mut rng);
    let rows: Vec<Vec<f64>> = (0..5)
        .map(|_| (0..7).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| &r[..]).collect();
    let x = Batch::from_rows(&refs);
    let mut scratch = BatchScratch::for_network(&net);
    let out = net.forward_batch(&x, &mut scratch);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(out.row(i), &net.forward(row)[..], "row {i} diverged");
    }

    // Matrix-level entry points route through the same dispatch.
    let ma = Matrix::from_fn(5, 11, |r, c| ((r * 13 + c * 7) as f64 * 0.3).sin());
    let mb = Matrix::from_fn(11, 19, |r, c| ((r * 5 + c * 3) as f64 * 0.7).cos());
    kernel::set_backend(Backend::Scalar);
    let want = ma.matmul(&mb);
    kernel::set_backend(Backend::Simd); // still forced off by the hatch
    let got = ma.matmul(&mb);
    assert_eq!(got, want);
    kernel::set_backend(Backend::Scalar);
}
