//! Differential harness: the AVX2+FMA microkernels vs the scalar
//! oracle, over random shapes and values.
//!
//! Every test drives the *explicit* kernel pair
//! (`gemm_*_scalar_into` vs `gemm_*_simd_into`) rather than flipping
//! the process-global backend switch — integration tests share a
//! process and run concurrently, so mutating `kernel::set_backend`
//! here would race every other test. (The dispatch seam itself is
//! covered by `tests/force_scalar.rs`, which owns its own binary.)
//!
//! The tolerance is the one documented in `ctjam_nn::simd`:
//!
//! ```text
//! |simd − scalar| ≤ (2k + 4) · ulp(M),   M = Σ_k |a·b| (+ |bias|)
//! ```
//!
//! where `k` is the reduction length of the element and `M` its
//! accumulated magnitude. Shapes deliberately cover empty dimensions
//! (0-row / 0-col / 0-reduction) and every ragged edge of the 4×8
//! register tile; value tests cover NaN and ±Inf propagation.

use ctjam_nn::kernel::simd_supported;
use ctjam_nn::matrix::{gemm_nn_scalar_into, gemm_nt_scalar_into, gemm_tn_scaled_scalar_into};
use ctjam_nn::simd::{gemm_nn_simd_into, gemm_nt_simd_into, gemm_tn_scaled_simd_into};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Unit in the last place of `|x|` (distance to the next representable
/// f64 away from zero). `ulp(0)` is the smallest subnormal.
fn ulp(x: f64) -> f64 {
    let a = x.abs();
    if !a.is_finite() {
        return f64::INFINITY;
    }
    f64::from_bits(a.to_bits() + 1) - a
}

/// Asserts one output element obeys the documented contract: identical
/// NaN-ness, identical infinities, and the `(2k + 4)·ulp(M)` bound on
/// finite values.
fn assert_element(got: f64, want: f64, magnitude: f64, k: usize, ctx: &str) {
    if want.is_nan() || got.is_nan() {
        assert!(
            want.is_nan() && got.is_nan(),
            "{ctx}: NaN divergence (scalar {want}, simd {got})"
        );
        return;
    }
    if want.is_infinite() || got.is_infinite() {
        assert!(
            got == want,
            "{ctx}: infinity divergence (scalar {want}, simd {got})"
        );
        return;
    }
    let tol = (2 * k + 4) as f64 * ulp(magnitude);
    assert!(
        (got - want).abs() <= tol,
        "{ctx}: |{got} - {want}| = {} > tol {tol} (magnitude {magnitude}, k {k})",
        (got - want).abs()
    );
}

/// Compares scalar and SIMD `gemm_nn` on the given operands.
fn check_nn(a: &[f64], a_rows: usize, a_cols: usize, b: &[f64], b_cols: usize) {
    let mut scalar = vec![0.0; a_rows * b_cols];
    let mut simd = vec![0.0; a_rows * b_cols];
    gemm_nn_scalar_into(a, a_rows, a_cols, b, b_cols, &mut scalar);
    gemm_nn_simd_into(a, a_rows, a_cols, b, b_cols, &mut simd);
    for s in 0..a_rows {
        for c in 0..b_cols {
            let m: f64 = (0..a_cols)
                .map(|r| (a[s * a_cols + r] * b[r * b_cols + c]).abs())
                .sum();
            assert_element(
                simd[s * b_cols + c],
                scalar[s * b_cols + c],
                m,
                a_cols,
                &format!("nn[{s}][{c}] ({a_rows}x{a_cols}x{b_cols})"),
            );
        }
    }
}

/// Compares scalar and SIMD `gemm_nt` (optional bias) on the operands.
fn check_nt(a: &[f64], a_rows: usize, b: &[f64], b_rows: usize, k: usize, bias: Option<&[f64]>) {
    let mut scalar = vec![0.0; a_rows * b_rows];
    let mut simd = vec![0.0; a_rows * b_rows];
    let mut pack = Vec::new();
    gemm_nt_scalar_into(a, a_rows, b, b_rows, k, bias, &mut pack, &mut scalar);
    gemm_nt_simd_into(a, a_rows, b, b_rows, k, bias, &mut pack, &mut simd);
    for s in 0..a_rows {
        for o in 0..b_rows {
            let mut m: f64 = (0..k).map(|r| (a[s * k + r] * b[o * k + r]).abs()).sum();
            if let Some(bs) = bias {
                m += bs[o].abs();
            }
            assert_element(
                simd[s * b_rows + o],
                scalar[s * b_rows + o],
                m,
                k,
                &format!(
                    "nt[{s}][{o}] ({a_rows}x{k}x{b_rows}, bias {})",
                    bias.is_some()
                ),
            );
        }
    }
}

/// Compares scalar and SIMD `gemm_tn_scaled` on the operands.
fn check_tn(a: &[f64], rows: usize, m: usize, scale: f64, b: &[f64], n: usize) {
    let mut scalar = vec![0.0; m * n];
    let mut simd = vec![0.0; m * n];
    gemm_tn_scaled_scalar_into(a, rows, m, scale, b, n, &mut scalar);
    gemm_tn_scaled_simd_into(a, rows, m, scale, b, n, &mut simd);
    for j in 0..m {
        for i in 0..n {
            let mag: f64 = (0..rows)
                .map(|s| (a[s * m + j] * scale * b[s * n + i]).abs())
                .sum();
            assert_element(
                simd[j * n + i],
                scalar[j * n + i],
                mag,
                rows,
                &format!("tn[{j}][{i}] ({rows}x{m}x{n}, scale {scale})"),
            );
        }
    }
}

fn random_values(rng: &mut StdRng, n: usize, span: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-span..span)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `gemm_nn`: random shapes straddling every tile edge (the SIMD
    /// kernel tiles 4 rows × 8 columns), including empty dimensions.
    #[test]
    fn nn_matches_scalar_within_ulp_bound(
        seed in any::<u64>(),
        a_rows in 0usize..10,
        a_cols in 0usize..18,
        b_cols in 0usize..35,
        span in 1.0f64..1e3,
    ) {
        if !simd_supported() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_values(&mut rng, a_rows * a_cols, span);
        let b = random_values(&mut rng, a_cols * b_cols, span);
        check_nn(&a, a_rows, a_cols, &b, b_cols);
    }

    /// `gemm_nt` (forward layer shape), with and without bias.
    #[test]
    fn nt_matches_scalar_within_ulp_bound(
        seed in any::<u64>(),
        a_rows in 0usize..10,
        k in 0usize..18,
        b_rows in 0usize..35,
        with_bias in prop::bool::ANY,
        span in 1.0f64..1e3,
    ) {
        if !simd_supported() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_values(&mut rng, a_rows * k, span);
        let b = random_values(&mut rng, b_rows * k, span);
        let bias = random_values(&mut rng, b_rows, span);
        let bias = if with_bias { Some(&bias[..]) } else { None };
        check_nt(&a, a_rows, &b, b_rows, k, bias);
    }

    /// `gemm_tn_scaled` (weight-gradient shape) with a random scale,
    /// including `scale = 0` and tiny scales.
    #[test]
    fn tn_scaled_matches_scalar_within_ulp_bound(
        seed in any::<u64>(),
        rows in 0usize..18,
        m in 0usize..10,
        n in 0usize..35,
        scale in -2.0f64..2.0,
        span in 1.0f64..1e3,
    ) {
        if !simd_supported() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_values(&mut rng, rows * m, span);
        let b = random_values(&mut rng, rows * n, span);
        check_tn(&a, rows, m, scale, &b, n);
    }

    /// NaN propagation: planting NaN in either operand poisons exactly
    /// the same output elements in both kernels (same fold order, and
    /// FMA propagates NaN like mul+add does).
    #[test]
    fn nan_propagation_is_identical(
        seed in any::<u64>(),
        a_rows in 1usize..8,
        k in 1usize..14,
        b_cols in 1usize..20,
        in_a in prop::bool::ANY,
    ) {
        if !simd_supported() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = random_values(&mut rng, a_rows * k, 10.0);
        let mut b = random_values(&mut rng, k * b_cols, 10.0);
        if in_a {
            let i = rng.gen_range(0..a.len());
            a[i] = f64::NAN;
        } else {
            let i = rng.gen_range(0..b.len());
            b[i] = f64::NAN;
        }
        check_nn(&a, a_rows, k, &b, b_cols);
        // The nt shape reads the same buffer as b_cols×k.
        check_nt(&a, a_rows, &b, b_cols, k, None);
    }

    /// ±Inf propagation with otherwise moderate values: the sums either
    /// saturate to the same signed infinity or cancel to NaN in both
    /// kernels. (Huge-but-finite values whose *intermediates* overflow
    /// are excluded — there FMA's skipped rounding can legitimately
    /// keep a product finite where mul+add overflows; the documented
    /// contract only covers exact infinities.)
    #[test]
    fn infinity_propagation_is_identical(
        seed in any::<u64>(),
        a_rows in 1usize..8,
        k in 1usize..14,
        b_cols in 1usize..20,
        negative in prop::bool::ANY,
        second_inf in prop::bool::ANY,
    ) {
        if !simd_supported() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = random_values(&mut rng, a_rows * k, 10.0);
        let b = random_values(&mut rng, k * b_cols, 10.0);
        let inf = if negative { f64::NEG_INFINITY } else { f64::INFINITY };
        let i = rng.gen_range(0..a.len());
        a[i] = inf;
        if second_inf {
            // A second infinity of the opposite sign in the same row
            // forces inf − inf = NaN through the accumulation.
            let j = rng.gen_range(0..a.len());
            a[j] = -inf;
        }
        check_nn(&a, a_rows, k, &b, b_cols);
        // The tn shape reduces over rows: pair `a` (a_rows×k) with a
        // fresh a_rows×b_cols right operand.
        let b2 = random_values(&mut rng, a_rows * b_cols, 10.0);
        check_tn(&a, a_rows, k, 0.5, &b2, b_cols);
    }
}

/// The degenerate shapes, exhaustively: any of the three dimensions
/// empty must produce an (empty or zeroed) output without touching
/// memory out of bounds in either kernel.
#[test]
fn empty_and_unit_dimensions_agree() {
    if !simd_supported() {
        return;
    }
    let vals: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
    for &rows in &[0usize, 1, 3, 4, 5] {
        for &k in &[0usize, 1, 2] {
            for &cols in &[0usize, 1, 7, 8, 9] {
                check_nn(&vals[..rows * k], rows, k, &vals[..k * cols], cols);
                check_nt(&vals[..rows * k], rows, &vals[..cols * k], cols, k, None);
                check_tn(&vals[..rows * k], rows, k, 1.25, &vals[..rows * cols], cols);
            }
        }
    }
}

/// When the reduction length is zero the SIMD kernel must still zero
/// the output (the scalar oracle's `fill(0.0)` behavior), even over a
/// dirty buffer.
#[test]
fn zero_reduction_zeroes_dirty_output() {
    if !simd_supported() {
        return;
    }
    let mut out = vec![f64::NAN; 5 * 9];
    gemm_nn_simd_into(&[], 5, 0, &[], 9, &mut out);
    assert!(
        out.iter().all(|&v| v == 0.0),
        "k = 0 must write exact zeros"
    );
}
