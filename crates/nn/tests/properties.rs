//! Property-based tests for the neural-network substrate.

use ctjam_nn::batch::Batch;
use ctjam_nn::loss::Loss;
use ctjam_nn::matrix::Matrix;
use ctjam_nn::mlp::{BatchScratch, MlpBuilder};
use ctjam_nn::serialize::{from_bytes, to_bytes};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn matvec_is_linear(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in any::<u64>(),
        alpha in -3.0f64..3.0,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) * 2.0 - 1.0
        };
        let m = Matrix::from_fn(rows, cols, |_, _| next());
        let x: Vec<f64> = (0..cols).map(|_| next()).collect();
        let y: Vec<f64> = (0..cols).map(|_| next()).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + alpha * b).collect();
        let lhs = m.mul_vec(&combo);
        let mx = m.mul_vec(&x);
        let my = m.mul_vec(&y);
        for i in 0..rows {
            prop_assert!((lhs[i] - (mx[i] + alpha * my[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn loss_nonnegative_and_zero_at_target(p in -10.0f64..10.0, delta in 0.1f64..5.0) {
        for loss in [Loss::Mse, Loss::Huber { delta }] {
            prop_assert!(loss.value(p, p) == 0.0);
            prop_assert!(loss.value(p, 0.0) >= 0.0);
            prop_assert!(loss.gradient(p, p) == 0.0);
        }
    }

    #[test]
    fn serialization_roundtrip(seed in any::<u64>(), hidden in 1usize..24, out in 1usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = MlpBuilder::new(5).hidden(hidden).output(out).build(&mut rng);
        let back = from_bytes(&to_bytes(&net)).unwrap();
        prop_assert_eq!(back.shape(), net.shape());
        let x = [0.1, 0.2, 0.3, 0.4, 0.5];
        let a = net.forward(&x);
        let b = back.forward(&x);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn gradient_check_random_architectures(
        seed in any::<u64>(),
        h1 in 2usize..8,
        h2 in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = MlpBuilder::new(3).hidden(h1).hidden(h2).output(2).build(&mut rng);
        let x = [0.3, -0.6, 0.9];
        let t = [0.5, -0.5];
        let batch: Vec<(&[f64], &[f64])> = vec![(&x, &t)];
        let (l0, grads) = net.loss_and_gradient(&batch);
        let params = net.flatten_params();
        let eps = 1e-6;
        // Spot-check a handful of coordinates.
        for i in (0..params.len()).step_by(params.len() / 5 + 1) {
            let mut p = params.clone();
            p[i] += eps;
            let mut plus = net.clone();
            plus.set_params(&p);
            p[i] -= 2.0 * eps;
            let mut minus = net.clone();
            minus.set_params(&p);
            let lp = plus.loss_and_gradient(&batch).0;
            let lm = minus.loss_and_gradient(&batch).0;
            // A ReLU kink inside the probed interval makes the central
            // difference meaningless; detect it by the two one-sided
            // slopes disagreeing and skip (the loss is piecewise smooth).
            let forward = (lp - l0) / eps;
            let backward = (l0 - lm) / eps;
            if (forward - backward).abs() > 1e-4 {
                continue;
            }
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!((numeric - grads[i]).abs() < 1e-4, "coord {}: {} vs {}", i, numeric, grads[i]);
        }
    }

    #[test]
    fn flatten_set_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = MlpBuilder::new(4).hidden(6).output(3).build(&mut rng);
        let flat = net.flatten_params();
        net.set_params(&flat);
        prop_assert_eq!(net.flatten_params(), flat);
    }

    /// Tentpole invariant: the blocked batch kernels reproduce the
    /// per-sample matrix products bit-for-bit over random shapes
    /// (covering the 8-wide register tile and its remainder loop).
    #[test]
    fn batched_matmuls_are_bit_exact(
        seed in any::<u64>(),
        rows in 1usize..20,
        k in 1usize..20,
        out in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = move || rng.gen_range(-2.0..2.0);
        let w = Matrix::from_fn(out, k, |_, _| next());
        let mut x = Batch::with_cols(k);
        for _ in 0..rows {
            let row: Vec<f64> = (0..k).map(|_| next()).collect();
            x.push_row(&row);
        }
        let bias: Vec<f64> = (0..out).map(|_| next()).collect();

        let mut nt = Batch::default();
        x.matmul_transposed_into(&w, Some(&bias), &mut nt);
        for (s, row) in x.iter_rows().enumerate() {
            let mut want = w.mul_vec(row);
            for (z, b) in want.iter_mut().zip(&bias) {
                *z += b;
            }
            prop_assert_eq!(nt.row(s), &want[..]);
        }

        let w2 = Matrix::from_fn(x.cols(), out, |_, _| next());
        let mut nn = Batch::default();
        x.matmul_into(&w2, &mut nn);
        for (s, row) in x.iter_rows().enumerate() {
            prop_assert_eq!(nn.row(s), &w2.mul_vec_transposed(row)[..]);
        }
    }

    /// Tentpole invariant: a batched forward pass equals `rows`
    /// per-sample forward passes bit-for-bit over random architectures
    /// and batch sizes.
    #[test]
    fn forward_batch_equals_per_sample(
        seed in any::<u64>(),
        input in 1usize..10,
        h1 in 1usize..12,
        out in 1usize..10,
        rows in 1usize..17,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = MlpBuilder::new(input).hidden(h1).output(out).build(&mut rng);
        let mut x = Batch::with_cols(input);
        for _ in 0..rows {
            let row: Vec<f64> = (0..input).map(|_| rng.gen_range(-1.5..1.5)).collect();
            x.push_row(&row);
        }
        let mut scratch = BatchScratch::for_network(&net);
        let y = net.forward_batch(&x, &mut scratch);
        for (s, row) in x.iter_rows().enumerate() {
            prop_assert_eq!(y.row(s), &net.forward(row)[..]);
        }
    }

    /// Tentpole invariant: the batched loss/gradient equals the
    /// per-sample path bit-for-bit — same loss, same flat gradient — so
    /// swapping the training path cannot perturb a seeded run.
    #[test]
    fn batched_gradient_equals_per_sample(
        seed in any::<u64>(),
        input in 1usize..8,
        h1 in 1usize..10,
        h2 in 1usize..10,
        out in 1usize..8,
        rows in 1usize..17,
        huber in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let builder = MlpBuilder::new(input).hidden(h1).hidden(h2);
        let builder = if huber {
            builder.loss(Loss::Huber { delta: 1.0 })
        } else {
            builder
        };
        let net = builder.output(out).build(&mut rng);

        let xs: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..input).map(|_| rng.gen_range(-1.5..1.5)).collect())
            .collect();
        let ts: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..out).map(|_| rng.gen_range(-1.5..1.5)).collect())
            .collect();
        let pairs: Vec<(&[f64], &[f64])> =
            xs.iter().zip(&ts).map(|(x, t)| (&x[..], &t[..])).collect();
        let (ref_loss, ref_grad) = net.loss_and_gradient(&pairs);

        let x_refs: Vec<&[f64]> = xs.iter().map(|r| &r[..]).collect();
        let t_refs: Vec<&[f64]> = ts.iter().map(|r| &r[..]).collect();
        let x = Batch::from_rows(&x_refs);
        let t = Batch::from_rows(&t_refs);
        let mut scratch = BatchScratch::for_network(&net);
        let (loss, grad) = net.loss_and_gradient_batch(&x, &t, &mut scratch);
        prop_assert_eq!(loss, ref_loss);
        prop_assert_eq!(grad, &ref_grad[..]);
    }
}
