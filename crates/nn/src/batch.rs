//! A packed row-major minibatch of `f64` feature vectors.
//!
//! [`Batch`] is the unit the batched training path moves around: one
//! contiguous allocation holding `rows` samples of `cols` features each,
//! reused across training steps (`clear`/`push_row`/`set_shape` never
//! shrink the backing buffer). The matrix products it offers are
//! *bit-exact* with the per-sample [`Matrix`]
//! operations: every output element accumulates its sum in the same
//! ascending-index order as `mul_vec`/`mul_vec_transposed`, so a batched
//! forward pass reproduces `rows` per-sample forward passes to the last
//! bit (property-tested in `tests/properties.rs`).

use crate::matrix::{gemm_nn_into, gemm_nt_into, Matrix};

/// A dense row-major batch: `rows` samples × `cols` features.
///
/// # Example
///
/// ```
/// use ctjam_nn::batch::Batch;
///
/// let mut b = Batch::with_cols(3);
/// b.push_row(&[1.0, 2.0, 3.0]);
/// b.push_row(&[4.0, 5.0, 6.0]);
/// assert_eq!(b.rows(), 2);
/// assert_eq!(b.row(1), &[4.0, 5.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Batch {
    /// An empty batch accepting rows of `cols` features.
    pub fn with_cols(cols: usize) -> Self {
        Batch {
            rows: 0,
            cols,
            data: Vec::new(),
        }
    }

    /// A zero-filled batch of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Batch {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a batch from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "batch needs at least one row");
        let mut batch = Batch::with_cols(rows[0].len());
        for row in rows {
            batch.push_row(row);
        }
        batch
    }

    /// Number of samples currently held.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Features per sample.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Drops all rows, keeping the allocation and the column width.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.data.clear();
    }

    /// Drops all rows and switches to a new column width, keeping the
    /// allocation.
    pub fn reset(&mut self, cols: usize) {
        self.rows = 0;
        self.cols = cols;
        self.data.clear();
    }

    /// Reshapes to `rows × cols`, zero-filling every entry. Reuses the
    /// backing buffer when capacity allows.
    pub fn set_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// One sample.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all entries.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of all entries.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates over the sample rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Becomes a copy of `other`, reusing the backing buffer.
    pub fn copy_from(&mut self, other: &Batch) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// `out = self · Wᵀ (+ bias)` — the dense-layer pre-activation for the
    /// whole batch at once: `out[s][o] = Σ_k self[s][k]·W[o][k] + bias[o]`.
    ///
    /// Bit-exact with `W.mul_vec(row)` followed by a bias add, for every
    /// row (same ascending-`k` accumulation, bias added after the dot
    /// product completes).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != w.cols()` or the bias length differs
    /// from `w.rows()`.
    pub fn matmul_transposed_into(&self, w: &Matrix, bias: Option<&[f64]>, out: &mut Batch) {
        let mut pack = Vec::new();
        self.matmul_transposed_scratch_into(w, bias, &mut pack, out);
    }

    /// [`Batch::matmul_transposed_into`] with a caller-owned pack buffer,
    /// so hot loops (e.g. one forward pass per layer per training step)
    /// skip the per-call transpose-scratch allocation. The buffer is
    /// resized as needed and may be reused across any shapes.
    pub fn matmul_transposed_scratch_into(
        &self,
        w: &Matrix,
        bias: Option<&[f64]>,
        pack: &mut Vec<f64>,
        out: &mut Batch,
    ) {
        assert_eq!(self.cols, w.cols(), "dimension mismatch");
        if let Some(b) = bias {
            assert_eq!(b.len(), w.rows(), "bias width mismatch");
        }
        out.set_shape(self.rows, w.rows());
        gemm_nt_into(
            &self.data,
            self.rows,
            w.as_slice(),
            w.rows(),
            self.cols,
            bias,
            pack,
            &mut out.data,
        );
    }

    /// `out = self · W (+ bias)` — the dense-layer pre-activation when
    /// the caller already holds the layer weights *transposed*
    /// (`W: in×out` row-major, e.g. a cached `Wᵀ`):
    /// `out[s][o] = Σ_k self[s][k]·W[k][o] + bias[o]`.
    ///
    /// Bit-exact with [`Batch::matmul_transposed_into`] on the
    /// untransposed weights: same ascending-`k` fold per element, bias
    /// added after the dot product completes — only the memory layout
    /// of the weights differs.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != w.rows()` or the bias length differs
    /// from `w.cols()`.
    pub fn matmul_bias_into(&self, w: &Matrix, bias: Option<&[f64]>, out: &mut Batch) {
        assert_eq!(self.cols, w.rows(), "dimension mismatch");
        if let Some(b) = bias {
            assert_eq!(b.len(), w.cols(), "bias width mismatch");
        }
        out.set_shape(self.rows, w.cols());
        gemm_nn_into(
            &self.data,
            self.rows,
            self.cols,
            w.as_slice(),
            w.cols(),
            &mut out.data,
        );
        if let Some(bs) = bias {
            for or in out.data.chunks_exact_mut(w.cols()) {
                for (o, &bv) in or.iter_mut().zip(bs) {
                    *o += bv;
                }
            }
        }
    }

    /// `out = self · W` — backward delta propagation for the whole batch:
    /// `out[s][c] = Σ_r self[s][r]·W[r][c]`.
    ///
    /// Bit-exact with `W.mul_vec_transposed(row)` for every row (same
    /// ascending-`r` accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != w.rows()`.
    pub fn matmul_into(&self, w: &Matrix, out: &mut Batch) {
        assert_eq!(self.cols, w.rows(), "dimension mismatch");
        out.set_shape(self.rows, w.cols());
        gemm_nn_into(
            &self.data,
            self.rows,
            self.cols,
            w.as_slice(),
            w.cols(),
            &mut out.data,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index() {
        let mut b = Batch::with_cols(2);
        b.push_row(&[1.0, 2.0]);
        b.push_row(&[3.0, 4.0]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.row(0), &[1.0, 2.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.cols(), 2);
    }

    #[test]
    fn set_shape_zero_fills() {
        let mut b = Batch::from_rows(&[&[1.0, 1.0]]);
        b.set_shape(2, 3);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 3);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_transposed_matches_mul_vec() {
        let w = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Batch::from_rows(&[&[1.0, 0.0, -1.0], &[0.5, 0.5, 0.5]]);
        let bias = [10.0, 20.0];
        let mut out = Batch::default();
        b.matmul_transposed_into(&w, Some(&bias), &mut out);
        for (s, row) in b.iter_rows().enumerate() {
            let mut want = w.mul_vec(row);
            for (z, bi) in want.iter_mut().zip(&bias) {
                *z += bi;
            }
            assert_eq!(out.row(s), &want[..]);
        }
    }

    #[test]
    fn matmul_matches_mul_vec_transposed() {
        let w = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0], &[-5.0, 6.0]]);
        let b = Batch::from_rows(&[&[1.0, -1.0, 2.0], &[0.25, 0.5, -0.75]]);
        let mut out = Batch::default();
        b.matmul_into(&w, &mut out);
        for (s, row) in b.iter_rows().enumerate() {
            assert_eq!(out.row(s), &w.mul_vec_transposed(row)[..]);
        }
    }

    #[test]
    #[should_panic]
    fn ragged_push_panics() {
        let mut b = Batch::with_cols(2);
        b.push_row(&[1.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let w = Matrix::zeros(2, 3);
        let b = Batch::from_rows(&[&[1.0, 2.0]]);
        let mut out = Batch::default();
        b.matmul_transposed_into(&w, None, &mut out);
    }
}
