//! Kernel-backend dispatch: scalar oracle vs explicit SIMD microkernels.
//!
//! Every GEMM in this crate ([`crate::matrix::gemm_nn_into`],
//! [`crate::matrix::gemm_nt_into`], [`crate::matrix::gemm_tn_scaled_into`]
//! and everything built on them — `Batch::matmul_*`, `Mlp::forward_batch`
//! / `backward_batch`) routes through one process-wide backend switch:
//!
//! * [`Backend::Scalar`] (the **default**) — the register-tiled scalar
//!   kernels. These are the repo's bit-exactness oracle: every output
//!   element folds its sum in ascending-`k` order with separate
//!   multiply and add roundings, so all golden values, determinism
//!   tests, and replay traces stay bit-for-bit reproducible.
//! * [`Backend::Simd`] — explicit AVX2+FMA `std::arch` microkernels
//!   ([`crate::simd`]), **opt-in** per run / serve config. FMA contracts
//!   each multiply-add into one rounding, so results are *not*
//!   bit-exact with the scalar path; they are ULP-bounded instead (see
//!   the [`crate::simd`] module docs for the documented bound, enforced
//!   by the differential harness in `tests/simd_differential.rs`).
//!
//! Requesting [`Backend::Simd`] is a *request*: it only takes effect
//! when the CPU actually reports `avx2`+`fma` at runtime
//! (`is_x86_feature_detected!`) **and** the `CTJAM_FORCE_SCALAR`
//! environment escape hatch is not set. [`simd_active`] tells you what
//! will really run; on a non-AVX2 machine (or under
//! `CTJAM_FORCE_SCALAR=1`) a Simd request silently degrades to the
//! scalar oracle, keeping CI on such machines honest and bit-exact.
//!
//! The switch is a process-global atomic because the kernels sit under
//! layers (`Batch`, `Mlp`, `GreedyPolicy`) that are freely cloned and
//! serialized — threading a per-object flag through them would put a
//! kernel-selection bit inside `PartialEq`/checkpoint comparisons.
//! Training and evaluation default to scalar; flip the switch only for
//! throughput-oriented paths (serving, perf benches) where the
//! documented ULP tolerance is acceptable.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel family the GEMM entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Register-tiled scalar kernels — bit-exact, the oracle. Default.
    Scalar,
    /// AVX2+FMA microkernels — ULP-bounded vs the oracle, opt-in.
    Simd,
}

/// Requested backend; `0 = Scalar`, `1 = Simd`.
static REQUESTED: AtomicU8 = AtomicU8::new(0);

/// Requests a kernel backend for every subsequent GEMM in this process.
///
/// The request is sticky and process-global (see the module docs for
/// why); it is honored only when [`simd_supported`] is true and
/// [`force_scalar`] is false — otherwise the scalar oracle keeps
/// running regardless.
pub fn set_backend(backend: Backend) {
    REQUESTED.store(
        match backend {
            Backend::Scalar => 0,
            Backend::Simd => 1,
        },
        Ordering::Relaxed,
    );
}

/// The backend most recently requested via [`set_backend`] (default
/// [`Backend::Scalar`]). This is the *request*; [`active_backend`] is
/// what actually runs.
pub fn requested_backend() -> Backend {
    if REQUESTED.load(Ordering::Relaxed) == 1 {
        Backend::Simd
    } else {
        Backend::Scalar
    }
}

/// Whether this CPU supports the SIMD kernels (runtime-detected
/// `avx2 && fma` on x86-64; always false elsewhere). Cached after the
/// first call.
pub fn simd_supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    *SUPPORTED.get_or_init(detect_simd)
}

#[cfg(target_arch = "x86_64")]
fn detect_simd() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_simd() -> bool {
    false
}

/// Whether the `CTJAM_FORCE_SCALAR` escape hatch pins the scalar
/// oracle regardless of requests ("", unset, and `0` mean off; any
/// other value means on). Read once per process and cached, so set it
/// before the first kernel dispatch.
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("CTJAM_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether the next GEMM will actually run the SIMD microkernels:
/// requested AND supported AND not force-disabled.
#[inline]
pub fn simd_active() -> bool {
    REQUESTED.load(Ordering::Relaxed) == 1 && simd_supported() && !force_scalar()
}

/// The backend the next GEMM will actually run.
pub fn active_backend() -> Backend {
    if simd_active() {
        Backend::Simd
    } else {
        Backend::Scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test (not several) because the switch is process-global and
    /// unit tests share a process: a second test flipping it in
    /// parallel would race this one.
    #[test]
    fn requests_round_trip_and_gate_on_support() {
        let before = requested_backend();
        set_backend(Backend::Simd);
        assert_eq!(requested_backend(), Backend::Simd);
        if !simd_supported() || force_scalar() {
            assert!(!simd_active());
            assert_eq!(active_backend(), Backend::Scalar);
        } else {
            assert!(simd_active());
            assert_eq!(active_backend(), Backend::Simd);
        }
        set_backend(Backend::Scalar);
        assert_eq!(requested_backend(), Backend::Scalar);
        assert_eq!(active_backend(), Backend::Scalar);
        assert!(!simd_active());
        set_backend(before);
    }
}
