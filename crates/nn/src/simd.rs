//! Explicit AVX2+FMA `std::arch` microkernels for the three GEMM
//! shapes, behind the runtime switch in [`crate::kernel`].
//!
//! The kernels mirror the scalar register-tiled loops in
//! [`crate::matrix`] exactly — same shapes, same ascending-`k`
//! left-fold per output element, tiling only interleaves *independent*
//! elements — but contract every multiply-add into one fused
//! `vfmadd231pd`, which skips the intermediate product rounding the
//! scalar oracle performs. The result is therefore **not bit-exact**
//! with the scalar path; it is ULP-bounded:
//!
//! ## The documented tolerance
//!
//! For an output element accumulating `k` products, both the scalar
//! fold and the FMA fold carry rounding error at most `k·ε·M` where
//! `M = Σ_k |a·b|` is the accumulated magnitude, so
//!
//! ```text
//! |simd − scalar| ≤ (2k + 4) · ulp(M),   M = Σ_k |a[s][k]·b[k][c]|
//! ```
//!
//! (the `+4` absorbs the final bias add and the denormal floor). The
//! differential harness in `tests/simd_differential.rs` enforces this
//! bound property-test-style over random shapes and values, including
//! non-lane-multiple ("ragged edge") dimensions, empty dimensions, and
//! NaN/±Inf propagation. Where bit-exactness is required — training,
//! golden values, replay — use the scalar oracle (the default backend).
//!
//! AVX-512 is deliberately left out for now: on this workload the
//! doubled register width did not pay for the downclock/complexity in
//! early experiments, and the AVX2 path already saturates the FMA
//! ports at these layer sizes. The dispatch seam in [`crate::kernel`]
//! is where a `zmm` tier would slot in.
//!
//! Safety: this module is the crate's only `unsafe` code. Every entry
//! point asserts exact slice lengths before the `unsafe` call, the
//! `#[target_feature]` functions are only reachable through wrappers
//! that have verified `avx2+fma` via [`crate::kernel::simd_supported`],
//! and all pointer arithmetic stays inside the asserted bounds (the
//! differential suite doubles as a sanitizer harness — `ci.sh` runs it
//! under Miri when available, else under a debug-assertions build).
#![allow(unsafe_code)]

use crate::kernel;

/// SIMD twin of [`crate::matrix::gemm_nn_scalar_into`]:
/// `out[s][c] = Σ_r a[s][r]·b[r][c]` with fused multiply-adds.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape arguments or the
/// CPU lacks `avx2+fma` (callers gate on
/// [`crate::kernel::simd_supported`]).
pub fn gemm_nn_simd_into(
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    b: &[f64],
    b_cols: usize,
    out: &mut [f64],
) {
    assert_eq!(a.len(), a_rows * a_cols, "a shape mismatch");
    assert_eq!(b.len(), a_cols * b_cols, "b shape mismatch");
    assert_eq!(out.len(), a_rows * b_cols, "out shape mismatch");
    assert!(kernel::simd_supported(), "SIMD kernels need avx2+fma");
    #[cfg(target_arch = "x86_64")]
    unsafe {
        x86::gemm_nn(a, a_rows, a_cols, b, b_cols, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("simd_supported() is false off x86-64")
}

/// SIMD twin of [`crate::matrix::gemm_nt_scalar_into`]: transpose-pack
/// `b`, then the NN microkernel, then the bias add.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape arguments or the
/// CPU lacks `avx2+fma`.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style gemm signature
pub fn gemm_nt_simd_into(
    a: &[f64],
    a_rows: usize,
    b: &[f64],
    b_rows: usize,
    k: usize,
    bias: Option<&[f64]>,
    pack: &mut Vec<f64>,
    out: &mut [f64],
) {
    assert_eq!(a.len(), a_rows * k, "a shape mismatch");
    assert_eq!(b.len(), b_rows * k, "b shape mismatch");
    assert_eq!(out.len(), a_rows * b_rows, "out shape mismatch");
    pack.clear();
    pack.resize(k * b_rows, 0.0);
    if k > 0 {
        for (o, br) in b.chunks_exact(k).enumerate() {
            for (kk, &w) in br.iter().enumerate() {
                pack[kk * b_rows + o] = w;
            }
        }
    }
    gemm_nn_simd_into(a, a_rows, k, pack, b_rows, out);
    if let (Some(bs), true) = (bias, b_rows > 0) {
        assert_eq!(bs.len(), b_rows, "bias width mismatch");
        for or in out.chunks_exact_mut(b_rows) {
            for (o, &bv) in or.iter_mut().zip(bs) {
                *o += bv;
            }
        }
    }
}

/// SIMD twin of [`crate::matrix::gemm_tn_scaled_scalar_into`]:
/// `out[j][i] = Σ_s (a[s][j]·scale)·b[s][i]` with fused multiply-adds
/// (the batched weight-gradient pass).
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape arguments or the
/// CPU lacks `avx2+fma`.
pub fn gemm_tn_scaled_simd_into(
    a: &[f64],
    rows: usize,
    m: usize,
    scale: f64,
    b: &[f64],
    n: usize,
    out: &mut [f64],
) {
    assert_eq!(a.len(), rows * m, "a shape mismatch");
    assert_eq!(b.len(), rows * n, "b shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    assert!(kernel::simd_supported(), "SIMD kernels need avx2+fma");
    #[cfg(target_arch = "x86_64")]
    unsafe {
        x86::gemm_tn_scaled(a, rows, m, scale, b, n, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("simd_supported() is false off x86-64")
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// `out[s][c] = Σ_r a[s][r]·b[r][c]`, 4-row × 8-column register
    /// tile (8 `ymm` accumulators live across the whole `r` loop), with
    /// 4-wide and scalar `mul_add` remainder paths. Caller asserted all
    /// slice lengths; every pointer below stays inside them.
    ///
    /// # Safety
    ///
    /// Requires `avx2`+`fma` and `a.len() == a_rows*a_cols`,
    /// `b.len() == a_cols*b_cols`, `out.len() == a_rows*b_cols`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_nn(
        a: &[f64],
        a_rows: usize,
        a_cols: usize,
        b: &[f64],
        b_cols: usize,
        out: &mut [f64],
    ) {
        let k = a_cols;
        let n = b_cols;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut s = 0;
        while s + 4 <= a_rows {
            let a0 = ap.add(s * k);
            let a1 = ap.add((s + 1) * k);
            let a2 = ap.add((s + 2) * k);
            let a3 = ap.add((s + 3) * k);
            let o0 = op.add(s * n);
            let o1 = op.add((s + 1) * n);
            let o2 = op.add((s + 2) * n);
            let o3 = op.add((s + 3) * n);
            let mut c = 0;
            while c + 8 <= n {
                let mut acc00 = _mm256_setzero_pd();
                let mut acc01 = _mm256_setzero_pd();
                let mut acc10 = _mm256_setzero_pd();
                let mut acc11 = _mm256_setzero_pd();
                let mut acc20 = _mm256_setzero_pd();
                let mut acc21 = _mm256_setzero_pd();
                let mut acc30 = _mm256_setzero_pd();
                let mut acc31 = _mm256_setzero_pd();
                for r in 0..k {
                    let b0 = _mm256_loadu_pd(bp.add(r * n + c));
                    let b1 = _mm256_loadu_pd(bp.add(r * n + c + 4));
                    let av = _mm256_set1_pd(*a0.add(r));
                    acc00 = _mm256_fmadd_pd(av, b0, acc00);
                    acc01 = _mm256_fmadd_pd(av, b1, acc01);
                    let av = _mm256_set1_pd(*a1.add(r));
                    acc10 = _mm256_fmadd_pd(av, b0, acc10);
                    acc11 = _mm256_fmadd_pd(av, b1, acc11);
                    let av = _mm256_set1_pd(*a2.add(r));
                    acc20 = _mm256_fmadd_pd(av, b0, acc20);
                    acc21 = _mm256_fmadd_pd(av, b1, acc21);
                    let av = _mm256_set1_pd(*a3.add(r));
                    acc30 = _mm256_fmadd_pd(av, b0, acc30);
                    acc31 = _mm256_fmadd_pd(av, b1, acc31);
                }
                _mm256_storeu_pd(o0.add(c), acc00);
                _mm256_storeu_pd(o0.add(c + 4), acc01);
                _mm256_storeu_pd(o1.add(c), acc10);
                _mm256_storeu_pd(o1.add(c + 4), acc11);
                _mm256_storeu_pd(o2.add(c), acc20);
                _mm256_storeu_pd(o2.add(c + 4), acc21);
                _mm256_storeu_pd(o3.add(c), acc30);
                _mm256_storeu_pd(o3.add(c + 4), acc31);
                c += 8;
            }
            while c + 4 <= n {
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut acc2 = _mm256_setzero_pd();
                let mut acc3 = _mm256_setzero_pd();
                for r in 0..k {
                    let bv = _mm256_loadu_pd(bp.add(r * n + c));
                    acc0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.add(r)), bv, acc0);
                    acc1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1.add(r)), bv, acc1);
                    acc2 = _mm256_fmadd_pd(_mm256_set1_pd(*a2.add(r)), bv, acc2);
                    acc3 = _mm256_fmadd_pd(_mm256_set1_pd(*a3.add(r)), bv, acc3);
                }
                _mm256_storeu_pd(o0.add(c), acc0);
                _mm256_storeu_pd(o1.add(c), acc1);
                _mm256_storeu_pd(o2.add(c), acc2);
                _mm256_storeu_pd(o3.add(c), acc3);
                c += 4;
            }
            while c < n {
                let mut acc = [0.0f64; 4];
                for r in 0..k {
                    let w = *bp.add(r * n + c);
                    acc[0] = w.mul_add(*a0.add(r), acc[0]);
                    acc[1] = w.mul_add(*a1.add(r), acc[1]);
                    acc[2] = w.mul_add(*a2.add(r), acc[2]);
                    acc[3] = w.mul_add(*a3.add(r), acc[3]);
                }
                *o0.add(c) = acc[0];
                *o1.add(c) = acc[1];
                *o2.add(c) = acc[2];
                *o3.add(c) = acc[3];
                c += 1;
            }
            s += 4;
        }
        while s < a_rows {
            let ar = ap.add(s * k);
            let or = op.add(s * n);
            let mut c = 0;
            while c + 8 <= n {
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                for r in 0..k {
                    let av = _mm256_set1_pd(*ar.add(r));
                    acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bp.add(r * n + c)), acc0);
                    acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bp.add(r * n + c + 4)), acc1);
                }
                _mm256_storeu_pd(or.add(c), acc0);
                _mm256_storeu_pd(or.add(c + 4), acc1);
                c += 8;
            }
            while c + 4 <= n {
                let mut acc = _mm256_setzero_pd();
                for r in 0..k {
                    let av = _mm256_set1_pd(*ar.add(r));
                    acc = _mm256_fmadd_pd(av, _mm256_loadu_pd(bp.add(r * n + c)), acc);
                }
                _mm256_storeu_pd(or.add(c), acc);
                c += 4;
            }
            while c < n {
                let mut acc = 0.0f64;
                for r in 0..k {
                    acc = (*bp.add(r * n + c)).mul_add(*ar.add(r), acc);
                }
                *or.add(c) = acc;
                c += 1;
            }
            s += 1;
        }
    }

    /// `out[j][i] = Σ_s (a[s][j]·scale)·b[s][i]`, 4-j × 8-i register
    /// tile. The per-sample scalar `a[s][j]·scale` is rounded once and
    /// broadcast — the same product the scalar kernel forms — so only
    /// the multiply-add contraction differs.
    ///
    /// # Safety
    ///
    /// Requires `avx2`+`fma` and `a.len() == rows*m`,
    /// `b.len() == rows*n`, `out.len() == m*n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_tn_scaled(
        a: &[f64],
        rows: usize,
        m: usize,
        scale: f64,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= m {
            let o0 = op.add(j * n);
            let o1 = op.add((j + 1) * n);
            let o2 = op.add((j + 2) * n);
            let o3 = op.add((j + 3) * n);
            let mut i = 0;
            while i + 8 <= n {
                let mut acc00 = _mm256_setzero_pd();
                let mut acc01 = _mm256_setzero_pd();
                let mut acc10 = _mm256_setzero_pd();
                let mut acc11 = _mm256_setzero_pd();
                let mut acc20 = _mm256_setzero_pd();
                let mut acc21 = _mm256_setzero_pd();
                let mut acc30 = _mm256_setzero_pd();
                let mut acc31 = _mm256_setzero_pd();
                for s in 0..rows {
                    let arow = ap.add(s * m + j);
                    let b0 = _mm256_loadu_pd(bp.add(s * n + i));
                    let b1 = _mm256_loadu_pd(bp.add(s * n + i + 4));
                    let av = _mm256_set1_pd(*arow * scale);
                    acc00 = _mm256_fmadd_pd(av, b0, acc00);
                    acc01 = _mm256_fmadd_pd(av, b1, acc01);
                    let av = _mm256_set1_pd(*arow.add(1) * scale);
                    acc10 = _mm256_fmadd_pd(av, b0, acc10);
                    acc11 = _mm256_fmadd_pd(av, b1, acc11);
                    let av = _mm256_set1_pd(*arow.add(2) * scale);
                    acc20 = _mm256_fmadd_pd(av, b0, acc20);
                    acc21 = _mm256_fmadd_pd(av, b1, acc21);
                    let av = _mm256_set1_pd(*arow.add(3) * scale);
                    acc30 = _mm256_fmadd_pd(av, b0, acc30);
                    acc31 = _mm256_fmadd_pd(av, b1, acc31);
                }
                _mm256_storeu_pd(o0.add(i), acc00);
                _mm256_storeu_pd(o0.add(i + 4), acc01);
                _mm256_storeu_pd(o1.add(i), acc10);
                _mm256_storeu_pd(o1.add(i + 4), acc11);
                _mm256_storeu_pd(o2.add(i), acc20);
                _mm256_storeu_pd(o2.add(i + 4), acc21);
                _mm256_storeu_pd(o3.add(i), acc30);
                _mm256_storeu_pd(o3.add(i + 4), acc31);
                i += 8;
            }
            while i + 4 <= n {
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut acc2 = _mm256_setzero_pd();
                let mut acc3 = _mm256_setzero_pd();
                for s in 0..rows {
                    let arow = ap.add(s * m + j);
                    let bv = _mm256_loadu_pd(bp.add(s * n + i));
                    acc0 = _mm256_fmadd_pd(_mm256_set1_pd(*arow * scale), bv, acc0);
                    acc1 = _mm256_fmadd_pd(_mm256_set1_pd(*arow.add(1) * scale), bv, acc1);
                    acc2 = _mm256_fmadd_pd(_mm256_set1_pd(*arow.add(2) * scale), bv, acc2);
                    acc3 = _mm256_fmadd_pd(_mm256_set1_pd(*arow.add(3) * scale), bv, acc3);
                }
                _mm256_storeu_pd(o0.add(i), acc0);
                _mm256_storeu_pd(o1.add(i), acc1);
                _mm256_storeu_pd(o2.add(i), acc2);
                _mm256_storeu_pd(o3.add(i), acc3);
                i += 4;
            }
            while i < n {
                let mut acc = [0.0f64; 4];
                for s in 0..rows {
                    let w = *bp.add(s * n + i);
                    let arow = ap.add(s * m + j);
                    acc[0] = (*arow * scale).mul_add(w, acc[0]);
                    acc[1] = (*arow.add(1) * scale).mul_add(w, acc[1]);
                    acc[2] = (*arow.add(2) * scale).mul_add(w, acc[2]);
                    acc[3] = (*arow.add(3) * scale).mul_add(w, acc[3]);
                }
                *o0.add(i) = acc[0];
                *o1.add(i) = acc[1];
                *o2.add(i) = acc[2];
                *o3.add(i) = acc[3];
                i += 1;
            }
            j += 4;
        }
        while j < m {
            let or = op.add(j * n);
            let mut i = 0;
            while i + 4 <= n {
                let mut acc = _mm256_setzero_pd();
                for s in 0..rows {
                    let av = _mm256_set1_pd(*ap.add(s * m + j) * scale);
                    acc = _mm256_fmadd_pd(av, _mm256_loadu_pd(bp.add(s * n + i)), acc);
                }
                _mm256_storeu_pd(or.add(i), acc);
                i += 4;
            }
            while i < n {
                let mut acc = 0.0f64;
                for s in 0..rows {
                    acc = (*ap.add(s * m + j) * scale).mul_add(*bp.add(s * n + i), acc);
                }
                *or.add(i) = acc;
                i += 1;
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{gemm_nn_scalar_into, gemm_tn_scaled_scalar_into};

    /// Spot check on one fixed shape (the proptest harness in
    /// `tests/simd_differential.rs` is the real gate).
    #[test]
    fn simd_kernels_track_the_scalar_oracle() {
        if !kernel::simd_supported() {
            return;
        }
        let (s, k, n) = (7, 13, 21);
        let a: Vec<f64> = (0..s * k).map(|i| ((i * 37) as f64 * 0.11).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| ((i * 19) as f64 * 0.07).cos()).collect();
        let mut scalar = vec![0.0; s * n];
        let mut simd = vec![0.0; s * n];
        gemm_nn_scalar_into(&a, s, k, &b, n, &mut scalar);
        gemm_nn_simd_into(&a, s, k, &b, n, &mut simd);
        for (x, y) in scalar.iter().zip(&simd) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + x.abs()), "{x} vs {y}");
        }

        let mut scalar = vec![0.0; k * n];
        let mut simd = vec![0.0; k * n];
        gemm_tn_scaled_scalar_into(&a[..s * k], s, k, 0.25, &b[..s * n], n, &mut scalar);
        gemm_tn_scaled_simd_into(&a[..s * k], s, k, 0.25, &b[..s * n], n, &mut simd);
        for (x, y) in scalar.iter().zip(&simd) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }
}
