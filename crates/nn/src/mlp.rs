//! The multi-layer perceptron with exact backpropagation.
//!
//! Two equivalent training paths exist:
//!
//! * the **per-sample** path ([`Mlp::forward`], [`Mlp::loss_and_gradient`],
//!   [`Mlp::train_batch`]) — simple, allocation-per-call;
//! * the **batched** path ([`Mlp::forward_batch`],
//!   [`Mlp::loss_and_gradient_batch`], [`Mlp::train_minibatch`]) — one
//!   packed [`Batch`] per layer, reusable [`BatchScratch`] buffers, and
//!   blocked matrix–matrix kernels.
//!
//! The two paths are **bit-exact**: every dot product accumulates in the
//! same order, so swapping one for the other cannot perturb a single
//! reproducible run (property-tested in `tests/properties.rs`).

use crate::activation::Activation;
use crate::batch::Batch;
use crate::loss::Loss;
use crate::matrix::{gemm_tn_scaled_into, Matrix};
use crate::optimizer::Optimizer;
use rand::Rng;

/// One dense layer: `a = act(W·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    weights: Matrix,
    /// `Wᵀ`, kept in sync with `weights` (refreshed on every parameter
    /// write) so the batched forward kernel reads both operands
    /// contiguously without a per-call transpose.
    weights_t: Matrix,
    biases: Vec<f64>,
    activation: Activation,
}

impl DenseLayer {
    /// Xavier/Glorot-uniform initialization.
    fn init<R: Rng + ?Sized>(
        input: usize,
        output: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let limit = (6.0 / (input + output) as f64).sqrt();
        let mut layer = DenseLayer {
            weights: Matrix::from_fn(output, input, |_, _| rng.gen_range(-limit..limit)),
            weights_t: Matrix::zeros(input, output),
            biases: vec![0.0; output],
            activation,
        };
        layer.refresh_transpose();
        layer
    }

    /// Rebuilds the cached transpose after `weights` changed.
    fn refresh_transpose(&mut self) {
        let (rows, cols) = (self.weights.rows(), self.weights.cols());
        debug_assert_eq!(self.weights_t.rows(), cols);
        debug_assert_eq!(self.weights_t.cols(), rows);
        let w = self.weights.as_slice();
        let wt = self.weights_t.as_mut_slice();
        for o in 0..rows {
            for k in 0..cols {
                wt[k * rows + o] = w[o * cols + k];
            }
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.weights.rows()
    }

    /// Parameters in this layer (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }

    /// The weight matrix (`output_size × input_size`, row-major).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector (`output_size` entries).
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut z = self.weights.mul_vec(x);
        for (zi, b) in z.iter_mut().zip(&self.biases) {
            *zi += b;
        }
        let mut a = z.clone();
        self.activation.apply_slice(&mut a);
        (z, a)
    }
}

/// A fully connected network.
///
/// Build with [`MlpBuilder`]; see the crate docs for a training example.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    loss: Loss,
}

/// Builder for [`Mlp`].
///
/// ```
/// use ctjam_nn::mlp::MlpBuilder;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // The paper's architecture: 3·I inputs, two ReLU hidden layers, C·PL
/// // linear outputs.
/// let net = MlpBuilder::new(24).hidden(40).hidden(40).output(160).build(&mut rng);
/// assert_eq!(net.shape(), vec![24, 40, 40, 160]);
/// ```
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    sizes: Vec<usize>,
    loss: Loss,
}

impl MlpBuilder {
    /// Starts a network with `input` features.
    ///
    /// # Panics
    ///
    /// Panics if `input == 0`.
    pub fn new(input: usize) -> Self {
        assert!(input > 0, "input width must be positive");
        MlpBuilder {
            sizes: vec![input],
            loss: Loss::Mse,
        }
    }

    /// Appends a ReLU hidden layer of `width` units.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn hidden(mut self, width: usize) -> Self {
        assert!(width > 0, "hidden width must be positive");
        self.sizes.push(width);
        self
    }

    /// Selects the training loss (default MSE).
    #[must_use]
    pub fn loss(mut self, loss: Loss) -> Self {
        self.loss = loss;
        self
    }

    /// Appends the linear output layer and finalizes the architecture.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn output(mut self, width: usize) -> MlpFinal {
        assert!(width > 0, "output width must be positive");
        self.sizes.push(width);
        MlpFinal {
            sizes: self.sizes,
            loss: self.loss,
        }
    }
}

/// A finalized architecture awaiting weight initialization.
#[derive(Debug, Clone)]
pub struct MlpFinal {
    sizes: Vec<usize>,
    loss: Loss,
}

impl MlpFinal {
    /// Initializes weights (Xavier uniform) and produces the network.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Mlp {
        let n = self.sizes.len();
        let layers = (0..n - 1)
            .map(|i| {
                let activation = if i + 2 == n {
                    Activation::Identity
                } else {
                    Activation::Relu
                };
                DenseLayer::init(self.sizes[i], self.sizes[i + 1], activation, rng)
            })
            .collect();
        Mlp {
            layers,
            loss: self.loss,
        }
    }
}

impl Mlp {
    /// Layer widths including input and output.
    pub fn shape(&self) -> Vec<usize> {
        let mut shape = vec![self.layers[0].input_size()];
        shape.extend(self.layers.iter().map(DenseLayer::output_size));
        shape
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.layers[0].input_size()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.layers
            .last()
            .expect("at least one layer")
            .output_size()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::param_count).sum()
    }

    /// The training loss in force.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_size(), "input width mismatch");
        let mut a = x.to_vec();
        for layer in &self.layers {
            a = layer.forward(&a).1;
        }
        a
    }

    /// Forward pass keeping every layer's pre-activation and activation —
    /// the trace backpropagation consumes.
    fn forward_trace(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut activations = vec![x.to_vec()];
        let mut preacts = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (z, a) = layer.forward(activations.last().expect("nonempty"));
            preacts.push(z);
            activations.push(a);
        }
        (activations, preacts)
    }

    /// Flattens all parameters (per layer: weights row-major, then biases).
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.weights.as_slice());
            out.extend_from_slice(&layer.biases);
        }
        out
    }

    /// Writes back a flat parameter vector (inverse of
    /// [`Mlp::flatten_params`]).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match [`Mlp::param_count`].
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.param_count(), "parameter count mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            let w = layer.weights.len();
            layer
                .weights
                .as_mut_slice()
                .copy_from_slice(&params[offset..offset + w]);
            layer.refresh_transpose();
            offset += w;
            let b = layer.biases.len();
            layer.biases.copy_from_slice(&params[offset..offset + b]);
            offset += b;
        }
    }

    /// Copies another network's weights into this one (target-network
    /// synchronization in DQN).
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn copy_weights_from(&mut self, other: &Mlp) {
        assert_eq!(self.shape(), other.shape(), "architecture mismatch");
        self.set_params(&other.flatten_params());
    }

    /// Computes the mean per-sample loss and its gradient over a batch
    /// without updating weights. The gradient is flat, aligned with
    /// [`Mlp::flatten_params`].
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or mismatched widths.
    pub fn loss_and_gradient(&self, batch: &[(&[f64], &[f64])]) -> (f64, Vec<f64>) {
        assert!(!batch.is_empty(), "empty training batch");
        let out_dim = self.output_size() as f64;
        let scale = 1.0 / batch.len() as f64;

        let mut grad_w: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.output_size(), l.input_size()))
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.output_size()])
            .collect();
        let mut total_loss = 0.0;

        for &(x, t) in batch {
            assert_eq!(t.len(), self.output_size(), "target width mismatch");
            let (activations, preacts) = self.forward_trace(x);
            let prediction = activations.last().expect("output exists");
            total_loss += self.loss.mean(prediction, t);

            // dL/da at the output (per-sample loss is the mean over dims).
            let mut delta: Vec<f64> = prediction
                .iter()
                .zip(t)
                .map(|(&p, &y)| self.loss.gradient(p, y) / out_dim)
                .collect();

            for l in (0..self.layers.len()).rev() {
                let layer = &self.layers[l];
                // dz = dL/da ⊙ act′(z).
                let dz: Vec<f64> = delta
                    .iter()
                    .zip(&preacts[l])
                    .map(|(&d, &z)| d * layer.activation.derivative(z))
                    .collect();
                grad_w[l].add_outer(&dz, &activations[l], scale);
                for (g, d) in grad_b[l].iter_mut().zip(&dz) {
                    *g += d * scale;
                }
                if l > 0 {
                    delta = layer.weights.mul_vec_transposed(&dz);
                }
            }
        }

        let mut flat = Vec::with_capacity(self.param_count());
        for (gw, gb) in grad_w.iter().zip(&grad_b) {
            flat.extend_from_slice(gw.as_slice());
            flat.extend_from_slice(gb);
        }
        (total_loss * scale, flat)
    }

    /// One optimization step on a batch; returns the pre-update mean loss.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or mismatched widths.
    pub fn train_batch<O: Optimizer>(&mut self, batch: &[(&[f64], &[f64])], opt: &mut O) -> f64 {
        let (loss, grads) = self.loss_and_gradient(batch);
        let mut params = self.flatten_params();
        opt.step(&mut params, &grads);
        self.set_params(&params);
        loss
    }

    /// Writes all parameters into `out` (cleared first), in
    /// [`Mlp::flatten_params`] order, without allocating when `out` has
    /// capacity.
    pub fn flatten_params_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.weights.as_slice());
            out.extend_from_slice(&layer.biases);
        }
    }

    /// Batched forward pass over every row of `x` at once, recording the
    /// full activation trace in `scratch` (consumed by
    /// [`Mlp::backward_batch`]). Returns the output batch.
    ///
    /// Bit-exact with calling [`Mlp::forward`] on each row.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input width.
    pub fn forward_batch<'s>(&self, x: &Batch, scratch: &'s mut BatchScratch) -> &'s Batch {
        assert_eq!(x.cols(), self.input_size(), "input width mismatch");
        scratch.activations[0].copy_from(x);
        for (l, layer) in self.layers.iter().enumerate() {
            let (head, tail) = scratch.activations.split_at_mut(l + 1);
            let z = &mut scratch.preacts[l];
            head[l].matmul_bias_into(&layer.weights_t, Some(&layer.biases), z);
            let a = &mut tail[0];
            a.copy_from(z);
            layer.activation.apply_slice(a.as_mut_slice());
        }
        scratch
            .activations
            .last()
            .expect("at least the input activation")
    }

    /// Backward pass over the activation trace left in `scratch` by the
    /// most recent [`Mlp::forward_batch`] call (with this network and the
    /// inputs whose predictions `targets` refers to). Returns the mean
    /// per-sample loss and the flat gradient, aligned with
    /// [`Mlp::flatten_params`], both living in `scratch`.
    ///
    /// Bit-exact with [`Mlp::loss_and_gradient`] on the same pairs.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or its shape disagrees with the
    /// recorded trace.
    pub fn backward_batch<'s>(
        &self,
        targets: &Batch,
        scratch: &'s mut BatchScratch,
    ) -> (f64, &'s [f64]) {
        let rows = targets.rows();
        assert!(rows > 0, "empty training batch");
        assert_eq!(targets.cols(), self.output_size(), "target width mismatch");
        let output = scratch.activations.last().expect("output exists");
        assert_eq!(
            output.rows(),
            rows,
            "trace/target batch-size mismatch (run forward_batch first)"
        );
        let out_dim = self.output_size() as f64;
        let scale = 1.0 / rows as f64;

        // dL/da at the output, one row per sample, accumulating the loss
        // in ascending sample order (same order as the per-sample path).
        let mut total_loss = 0.0;
        scratch.delta.set_shape(rows, self.output_size());
        for s in 0..rows {
            let prediction = output.row(s);
            let target = targets.row(s);
            total_loss += self.loss.mean(prediction, target);
            for ((d, &p), &y) in scratch
                .delta
                .row_mut(s)
                .iter_mut()
                .zip(prediction)
                .zip(target)
            {
                *d = self.loss.gradient(p, y) / out_dim;
            }
        }

        for l in (0..self.layers.len()).rev() {
            let layer = &self.layers[l];
            let (out_size, in_size) = (layer.output_size(), layer.input_size());
            // dz = dL/da ⊙ act′(z), for the whole batch.
            scratch.dz.set_shape(rows, out_size);
            for ((d, &dl), &z) in scratch
                .dz
                .as_mut_slice()
                .iter_mut()
                .zip(scratch.delta.as_slice())
                .zip(scratch.preacts[l].as_slice())
            {
                *d = dl * layer.activation.derivative(z);
            }
            // dW = (dz·scale)ᵀ · a as one transposed GEMM. Each gradient
            // element folds over samples in ascending order from 0.0,
            // adding the identical `(dz[s][j]·scale)·a[s][i]` terms the
            // per-sample rank-1 updates added — bit-exact, but every
            // cache line of the activations is now read once instead of
            // once per sample.
            gemm_tn_scaled_into(
                scratch.dz.as_slice(),
                rows,
                out_size,
                scale,
                scratch.activations[l].as_slice(),
                in_size,
                scratch.grad_w[l].as_mut_slice(),
            );
            let gb = &mut scratch.grad_b[l];
            gb.iter_mut().for_each(|g| *g = 0.0);
            for s in 0..rows {
                for (g, &d) in gb.iter_mut().zip(scratch.dz.row(s)) {
                    *g += d * scale;
                }
            }
            if l > 0 {
                scratch.dz.matmul_into(&layer.weights, &mut scratch.delta);
            }
        }

        scratch.flat.clear();
        scratch.flat.reserve(self.param_count());
        for (gw, gb) in scratch.grad_w.iter().zip(&scratch.grad_b) {
            scratch.flat.extend_from_slice(gw.as_slice());
            scratch.flat.extend_from_slice(gb);
        }
        (total_loss * scale, &scratch.flat)
    }

    /// Batched mean loss and flat gradient — [`Mlp::loss_and_gradient`]
    /// over packed inputs/targets with zero per-sample allocation.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or mismatched widths.
    pub fn loss_and_gradient_batch<'s>(
        &self,
        x: &Batch,
        targets: &Batch,
        scratch: &'s mut BatchScratch,
    ) -> (f64, &'s [f64]) {
        assert_eq!(x.rows(), targets.rows(), "input/target batch mismatch");
        self.forward_batch(x, scratch);
        self.backward_batch(targets, scratch)
    }

    /// One optimization step on a packed minibatch; returns the
    /// pre-update mean loss. Bit-exact with [`Mlp::train_batch`] on the
    /// same pairs.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or mismatched widths.
    pub fn train_minibatch<O: Optimizer>(
        &mut self,
        x: &Batch,
        targets: &Batch,
        scratch: &mut BatchScratch,
        opt: &mut O,
    ) -> f64 {
        let (loss, _) = self.loss_and_gradient_batch(x, targets, scratch);
        self.flatten_params_into(&mut scratch.params);
        opt.step(&mut scratch.params, &scratch.flat);
        self.set_params(&scratch.params);
        loss
    }
}

/// Reusable buffers for the batched forward/backward path: layer
/// activations and pre-activations for a whole minibatch, gradient
/// accumulators, and the flattened gradient/parameter vectors. Create one
/// per network with [`BatchScratch::for_network`] and reuse it across
/// training steps — after warm-up no path through
/// [`Mlp::train_minibatch`] allocates.
#[derive(Debug, Clone)]
pub struct BatchScratch {
    /// `activations[0]` is the input batch, `activations[l + 1]` the
    /// output of layer `l`.
    activations: Vec<Batch>,
    /// Pre-activation `z` of each layer.
    preacts: Vec<Batch>,
    /// `dL/da` of the layer currently being backpropagated.
    delta: Batch,
    /// `dL/dz` of the layer currently being backpropagated.
    dz: Batch,
    grad_w: Vec<Matrix>,
    grad_b: Vec<Vec<f64>>,
    flat: Vec<f64>,
    params: Vec<f64>,
}

impl BatchScratch {
    /// Buffers sized for `net`'s architecture (row counts grow lazily to
    /// whatever batch size shows up).
    pub fn for_network(net: &Mlp) -> Self {
        let mut activations = vec![Batch::with_cols(net.input_size())];
        activations.extend(net.layers.iter().map(|l| Batch::with_cols(l.output_size())));
        BatchScratch {
            activations,
            preacts: net
                .layers
                .iter()
                .map(|l| Batch::with_cols(l.output_size()))
                .collect(),
            delta: Batch::default(),
            dz: Batch::default(),
            grad_w: net
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.output_size(), l.input_size()))
                .collect(),
            grad_b: net
                .layers
                .iter()
                .map(|l| vec![0.0; l.output_size()])
                .collect(),
            flat: Vec::new(),
            params: Vec::new(),
        }
    }

    /// The flat gradient left by the most recent backward pass, aligned
    /// with [`Mlp::flatten_params`].
    pub fn gradient(&self) -> &[f64] {
        &self.flat
    }

    /// The network output left by the most recent
    /// [`Mlp::forward_batch`] call.
    pub fn output(&self) -> &Batch {
        self.activations
            .last()
            .expect("at least the input activation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn shape_and_param_count() {
        let net = MlpBuilder::new(24)
            .hidden(40)
            .hidden(40)
            .output(160)
            .build(&mut rng());
        assert_eq!(net.shape(), vec![24, 40, 40, 160]);
        // 24·40+40 + 40·40+40 + 40·160+160 = 9240... computed exactly:
        let expected = 24 * 40 + 40 + 40 * 40 + 40 + 40 * 160 + 160;
        assert_eq!(net.param_count(), expected);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = MlpBuilder::new(4).hidden(8).output(2).build(&mut rng());
        let x = [0.1, -0.2, 0.3, -0.4];
        assert_eq!(net.forward(&x), net.forward(&x));
    }

    #[test]
    fn params_roundtrip() {
        let mut net = MlpBuilder::new(3).hidden(5).output(2).build(&mut rng());
        let flat = net.flatten_params();
        assert_eq!(flat.len(), net.param_count());
        let mut changed = flat.clone();
        changed[0] += 1.0;
        net.set_params(&changed);
        assert_eq!(net.flatten_params(), changed);
    }

    #[test]
    fn copy_weights_synchronizes_outputs() {
        let mut r = rng();
        let a = MlpBuilder::new(4).hidden(6).output(3).build(&mut r);
        let mut b = MlpBuilder::new(4).hidden(6).output(3).build(&mut r);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_ne!(a.forward(&x), b.forward(&x));
        b.copy_weights_from(&a);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let net = MlpBuilder::new(3)
            .hidden(5)
            .hidden(4)
            .output(2)
            .build(&mut rng());
        let x = [0.5, -1.0, 0.25];
        let t = [1.0, -1.0];
        let batch: Vec<(&[f64], &[f64])> = vec![(&x, &t)];
        let (_, analytic) = net.loss_and_gradient(&batch);

        let params = net.flatten_params();
        let eps = 1e-6;
        let mut worst = 0.0f64;
        for i in (0..params.len()).step_by(7) {
            let mut plus = net.clone();
            let mut p = params.clone();
            p[i] += eps;
            plus.set_params(&p);
            let mut minus = net.clone();
            p[i] -= 2.0 * eps;
            minus.set_params(&p);
            let (lp, _) = plus.loss_and_gradient(&batch);
            let (lm, _) = minus.loss_and_gradient(&batch);
            let numeric = (lp - lm) / (2.0 * eps);
            worst = worst.max((numeric - analytic[i]).abs());
        }
        assert!(worst < 1e-5, "max gradient error {worst}");
    }

    #[test]
    fn training_reduces_loss_on_regression() {
        let mut net = MlpBuilder::new(1).hidden(16).output(1).build(&mut rng());
        let mut adam = Adam::with_learning_rate(0.01);
        let xs: Vec<[f64; 1]> = (0..32).map(|i| [i as f64 / 16.0 - 1.0]).collect();
        let ys: Vec<[f64; 1]> = xs.iter().map(|x| [x[0].sin()]).collect();
        let batch: Vec<(&[f64], &[f64])> =
            xs.iter().zip(&ys).map(|(x, y)| (&x[..], &y[..])).collect();
        let initial = net.train_batch(&batch, &mut adam);
        let mut last = initial;
        for _ in 0..1500 {
            last = net.train_batch(&batch, &mut adam);
        }
        assert!(
            last < initial / 20.0,
            "loss did not shrink: {initial} -> {last}"
        );
    }

    #[test]
    fn huber_loss_trains_too() {
        let mut net = MlpBuilder::new(2)
            .hidden(8)
            .loss(Loss::Huber { delta: 1.0 })
            .output(1)
            .build(&mut rng());
        let mut adam = Adam::with_learning_rate(0.02);
        let xs = [[0.0, 1.0], [1.0, 0.0]];
        let ys = [[1.0], [-1.0]];
        let batch: Vec<(&[f64], &[f64])> =
            xs.iter().zip(&ys).map(|(x, y)| (&x[..], &y[..])).collect();
        let initial = net.train_batch(&batch, &mut adam);
        let mut last = initial;
        for _ in 0..800 {
            last = net.train_batch(&batch, &mut adam);
        }
        assert!(last < initial / 5.0);
    }

    #[test]
    fn forward_batch_is_bit_exact_with_per_sample() {
        let net = MlpBuilder::new(5)
            .hidden(9)
            .hidden(7)
            .output(3)
            .build(&mut rng());
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|s| (0..5).map(|k| ((s * 5 + k) as f64).sin()).collect())
            .collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| &r[..]).collect();
        let x = Batch::from_rows(&row_refs);
        let mut scratch = BatchScratch::for_network(&net);
        let out = net.forward_batch(&x, &mut scratch);
        for (s, row) in rows.iter().enumerate() {
            assert_eq!(out.row(s), &net.forward(row)[..]);
        }
    }

    #[test]
    fn batched_gradient_is_bit_exact_with_per_sample() {
        let net = MlpBuilder::new(4)
            .hidden(6)
            .hidden(5)
            .output(2)
            .build(&mut rng());
        let xs: Vec<Vec<f64>> = (0..8)
            .map(|s| (0..4).map(|k| ((s * 4 + k) as f64 * 0.37).cos()).collect())
            .collect();
        let ts: Vec<Vec<f64>> = (0..8)
            .map(|s| (0..2).map(|k| ((s * 2 + k) as f64 * 0.11).sin()).collect())
            .collect();
        let pairs: Vec<(&[f64], &[f64])> =
            xs.iter().zip(&ts).map(|(x, t)| (&x[..], &t[..])).collect();
        let (ref_loss, ref_grad) = net.loss_and_gradient(&pairs);

        let x_refs: Vec<&[f64]> = xs.iter().map(|r| &r[..]).collect();
        let t_refs: Vec<&[f64]> = ts.iter().map(|r| &r[..]).collect();
        let x = Batch::from_rows(&x_refs);
        let t = Batch::from_rows(&t_refs);
        let mut scratch = BatchScratch::for_network(&net);
        let (loss, grad) = net.loss_and_gradient_batch(&x, &t, &mut scratch);
        assert_eq!(loss, ref_loss);
        assert_eq!(grad, &ref_grad[..]);
    }

    #[test]
    fn train_minibatch_is_bit_exact_with_train_batch() {
        let mut per_sample = MlpBuilder::new(3).hidden(8).output(2).build(&mut rng());
        let mut batched = per_sample.clone();
        let xs: Vec<Vec<f64>> = (0..5)
            .map(|s| (0..3).map(|k| (s + k) as f64 / 4.0 - 0.5).collect())
            .collect();
        let ts: Vec<Vec<f64>> = (0..5)
            .map(|s| vec![(s as f64).sin(), (s as f64).cos()])
            .collect();
        let pairs: Vec<(&[f64], &[f64])> =
            xs.iter().zip(&ts).map(|(x, t)| (&x[..], &t[..])).collect();
        let x_refs: Vec<&[f64]> = xs.iter().map(|r| &r[..]).collect();
        let t_refs: Vec<&[f64]> = ts.iter().map(|r| &r[..]).collect();
        let x = Batch::from_rows(&x_refs);
        let t = Batch::from_rows(&t_refs);

        let mut adam_a = Adam::with_learning_rate(0.01);
        let mut adam_b = Adam::with_learning_rate(0.01);
        let mut scratch = BatchScratch::for_network(&batched);
        for _ in 0..25 {
            let la = per_sample.train_batch(&pairs, &mut adam_a);
            let lb = batched.train_minibatch(&x, &t, &mut scratch, &mut adam_b);
            assert_eq!(la, lb);
        }
        assert_eq!(per_sample.flatten_params(), batched.flatten_params());
    }

    #[test]
    #[should_panic]
    fn backward_without_forward_trace_panics() {
        let net = MlpBuilder::new(3).hidden(4).output(2).build(&mut rng());
        let mut scratch = BatchScratch::for_network(&net);
        let t = Batch::from_rows(&[&[0.0, 0.0]]);
        net.backward_batch(&t, &mut scratch);
    }

    #[test]
    #[should_panic]
    fn wrong_input_width_panics() {
        let net = MlpBuilder::new(3).hidden(4).output(1).build(&mut rng());
        net.forward(&[1.0]);
    }

    #[test]
    #[should_panic]
    fn empty_batch_panics() {
        let mut net = MlpBuilder::new(3).hidden(4).output(1).build(&mut rng());
        let mut adam = Adam::with_learning_rate(0.01);
        net.train_batch(&[], &mut adam);
    }
}
