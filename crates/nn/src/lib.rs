//! A small, dependency-free neural-network library.
//!
//! The paper trains a 4-layer fully connected DQN (input `3×I`, two ReLU
//! hidden layers, linear output `C×PL`) — a network of ~10 k parameters.
//! Nothing about it needs a deep-learning framework, so this crate
//! implements exactly what the DQN requires, from scratch:
//!
//! * [`matrix`] — a row-major `f64` matrix with the handful of ops
//!   backprop needs, including blocked matrix–matrix products.
//! * [`batch`] — a packed row-major minibatch and the batched
//!   linear-algebra kernels (bit-exact with the per-sample path).
//! * [`kernel`] — the process-wide scalar/SIMD backend switch (scalar
//!   oracle by default; AVX2+FMA opt-in, `CTJAM_FORCE_SCALAR` escape
//!   hatch).
//! * [`simd`] — the explicit AVX2+FMA microkernels behind runtime
//!   feature detection, ULP-bounded against the scalar oracle.
//! * [`quant`] — post-training int8 symmetric quantization of an
//!   [`mlp::Mlp`] for the serving-only inference path.
//! * [`activation`] — ReLU and identity activations with derivatives.
//! * [`loss`] — mean-squared error and Huber loss.
//! * [`optimizer`] — SGD and Adam.
//! * [`mlp`] — the multi-layer perceptron with exact backpropagation.
//! * [`serialize`] — weight (de)serialization and the parameter/memory
//!   accounting the paper reports (10 664 floats ≈ 42.7 KB).
//!
//! # Example
//!
//! Fit XOR (the classic nonlinearity check):
//!
//! ```
//! use ctjam_nn::mlp::MlpBuilder;
//! use ctjam_nn::optimizer::Adam;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut net = MlpBuilder::new(2).hidden(8).hidden(8).output(1).build(&mut rng);
//! let mut adam = Adam::with_learning_rate(0.01);
//! let inputs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
//! let targets = [[0.0], [1.0], [1.0], [0.0]];
//! for _ in 0..2000 {
//!     let batch: Vec<(&[f64], &[f64])> = inputs
//!         .iter()
//!         .zip(&targets)
//!         .map(|(i, t)| (&i[..], &t[..]))
//!         .collect();
//!     net.train_batch(&batch, &mut adam);
//! }
//! assert!(net.forward(&[1.0, 0.0])[0] > 0.7);
//! assert!(net.forward(&[1.0, 1.0])[0] < 0.3);
//! ```

// `deny` (not `forbid`) so the one SIMD module can opt back in with an
// explicit `#![allow(unsafe_code)]`; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod batch;
pub mod kernel;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optimizer;
pub mod quant;
pub mod rnn;
pub mod serialize;
pub mod simd;
