//! A minimal Elman recurrent network with truncated backpropagation
//! through time.
//!
//! The paper notes (§III.C) that "other neural networks architectures
//! (e.g. RNN) can also be adopted" for the anti-jamming policy; this
//! module provides that alternative, and the suite also uses it to build
//! the DeepJam-style *adaptive* jammer (related work \[14\]) that predicts
//! the victim's next channel from its traffic history.
//!
//! Architecture: `h_t = tanh(W_xh·x_t + W_hh·h_{t−1} + b_h)`,
//! `y_t = W_hy·h_t + b_y`, trained by BPTT over fixed-length sequences
//! with MSE loss on every step's output.

use crate::matrix::Matrix;
use crate::optimizer::Optimizer;
use rand::Rng;

/// An Elman RNN.
///
/// # Example
///
/// Learn to echo the previous input (a one-step memory task):
///
/// ```
/// use ctjam_nn::rnn::Rnn;
/// use ctjam_nn::optimizer::Adam;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut rnn = Rnn::new(1, 8, 1, &mut rng);
/// let mut adam = Adam::with_learning_rate(0.01);
/// let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![f64::from(i % 2 == 0)]).collect();
/// // Target at step t is the input at step t−1 (0 for the first step).
/// let ys: Vec<Vec<f64>> = std::iter::once(vec![0.0])
///     .chain(xs.iter().take(11).cloned())
///     .collect();
/// for _ in 0..400 {
///     rnn.train_sequence(&xs, &ys, &mut adam);
/// }
/// let out = rnn.run(&xs);
/// assert!((out[5][0] - xs[4][0]).abs() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rnn {
    w_xh: Matrix,
    w_hh: Matrix,
    b_h: Vec<f64>,
    w_hy: Matrix,
    b_y: Vec<f64>,
}

impl Rnn {
    /// Creates an RNN with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, output: usize, rng: &mut R) -> Self {
        assert!(
            input > 0 && hidden > 0 && output > 0,
            "dimensions must be positive"
        );
        let lim_xh = (6.0 / (input + hidden) as f64).sqrt();
        let lim_hh = (6.0 / (2 * hidden) as f64).sqrt();
        let lim_hy = (6.0 / (hidden + output) as f64).sqrt();
        Rnn {
            w_xh: Matrix::from_fn(hidden, input, |_, _| rng.gen_range(-lim_xh..lim_xh)),
            w_hh: Matrix::from_fn(hidden, hidden, |_, _| rng.gen_range(-lim_hh..lim_hh)),
            b_h: vec![0.0; hidden],
            w_hy: Matrix::from_fn(output, hidden, |_, _| rng.gen_range(-lim_hy..lim_hy)),
            b_y: vec![0.0; output],
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.w_xh.cols()
    }

    /// Hidden-state width.
    pub fn hidden_size(&self) -> usize {
        self.w_xh.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.w_hy.rows()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w_xh.len() + self.w_hh.len() + self.b_h.len() + self.w_hy.len() + self.b_y.len()
    }

    /// One recurrent step from hidden state `h`; returns `(h_next, y)`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn step(&self, x: &[f64], h: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x.len(), self.input_size(), "input width mismatch");
        assert_eq!(h.len(), self.hidden_size(), "hidden width mismatch");
        let mut z = self.w_xh.mul_vec(x);
        let rec = self.w_hh.mul_vec(h);
        for ((zi, r), b) in z.iter_mut().zip(&rec).zip(&self.b_h) {
            *zi = (*zi + r + b).tanh();
        }
        let mut y = self.w_hy.mul_vec(&z);
        for (yi, b) in y.iter_mut().zip(&self.b_y) {
            *yi += b;
        }
        (z, y)
    }

    /// Runs a whole sequence from a zero hidden state, returning every
    /// step's output.
    pub fn run(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut h = vec![0.0; self.hidden_size()];
        xs.iter()
            .map(|x| {
                let (h_next, y) = self.step(x, &h);
                h = h_next;
                y
            })
            .collect()
    }

    /// Flat parameter vector (w_xh, w_hh, b_h, w_hy, b_y order).
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        out.extend_from_slice(self.w_xh.as_slice());
        out.extend_from_slice(self.w_hh.as_slice());
        out.extend_from_slice(&self.b_h);
        out.extend_from_slice(self.w_hy.as_slice());
        out.extend_from_slice(&self.b_y);
        out
    }

    /// Writes back a flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.param_count(), "parameter count mismatch");
        let mut offset = 0;
        let mut take = |len: usize| {
            let slice = &params[offset..offset + len];
            offset += len;
            slice
        };
        let w = self.w_xh.len();
        self.w_xh.as_mut_slice().copy_from_slice(take(w));
        let w = self.w_hh.len();
        self.w_hh.as_mut_slice().copy_from_slice(take(w));
        let b = self.b_h.len();
        self.b_h.copy_from_slice(take(b));
        let w = self.w_hy.len();
        self.w_hy.as_mut_slice().copy_from_slice(take(w));
        let b = self.b_y.len();
        self.b_y.copy_from_slice(take(b));
    }

    /// Mean per-step MSE loss and its flat gradient over one sequence
    /// (full BPTT from a zero initial hidden state).
    ///
    /// # Panics
    ///
    /// Panics on empty sequences or width mismatches.
    pub fn loss_and_gradient(&self, xs: &[Vec<f64>], ys: &[Vec<f64>]) -> (f64, Vec<f64>) {
        assert!(!xs.is_empty(), "empty training sequence");
        assert_eq!(xs.len(), ys.len(), "input/target length mismatch");
        let steps = xs.len();
        let hidden = self.hidden_size();
        let out_dim = self.output_size() as f64;

        // Forward, keeping hidden states.
        let mut hs: Vec<Vec<f64>> = Vec::with_capacity(steps + 1);
        hs.push(vec![0.0; hidden]);
        let mut outputs = Vec::with_capacity(steps);
        for x in xs {
            let (h, y) = self.step(x, hs.last().expect("seeded"));
            hs.push(h);
            outputs.push(y);
        }

        // Backward.
        let mut g_w_xh = Matrix::zeros(hidden, self.input_size());
        let mut g_w_hh = Matrix::zeros(hidden, hidden);
        let mut g_b_h = vec![0.0; hidden];
        let mut g_w_hy = Matrix::zeros(self.output_size(), hidden);
        let mut g_b_y = vec![0.0; self.output_size()];
        let mut loss = 0.0;
        let scale = 1.0 / steps as f64;
        let mut dh_next = vec![0.0; hidden];

        for t in (0..steps).rev() {
            let y = &outputs[t];
            let target = &ys[t];
            assert_eq!(target.len(), self.output_size(), "target width mismatch");
            // Per-step loss: mean over output dims.
            let dy: Vec<f64> = y
                .iter()
                .zip(target)
                .map(|(p, q)| {
                    loss += (p - q) * (p - q) / out_dim;
                    2.0 * (p - q) / out_dim
                })
                .collect();
            g_w_hy.add_outer(&dy, &hs[t + 1], scale);
            for (g, d) in g_b_y.iter_mut().zip(&dy) {
                *g += d * scale;
            }
            // dL/dh_t = W_hyᵀ·dy + carry from t+1.
            let mut dh = self.w_hy.mul_vec_transposed(&dy);
            for (d, c) in dh.iter_mut().zip(&dh_next) {
                *d += c;
            }
            // Through tanh: dz = dh ⊙ (1 − h²).
            let dz: Vec<f64> = dh
                .iter()
                .zip(&hs[t + 1])
                .map(|(d, h)| d * (1.0 - h * h))
                .collect();
            g_w_xh.add_outer(&dz, &xs[t], scale);
            g_w_hh.add_outer(&dz, &hs[t], scale);
            for (g, d) in g_b_h.iter_mut().zip(&dz) {
                *g += d * scale;
            }
            dh_next = self.w_hh.mul_vec_transposed(&dz);
        }

        let mut flat = Vec::with_capacity(self.param_count());
        flat.extend_from_slice(g_w_xh.as_slice());
        flat.extend_from_slice(g_w_hh.as_slice());
        flat.extend_from_slice(&g_b_h);
        flat.extend_from_slice(g_w_hy.as_slice());
        flat.extend_from_slice(&g_b_y);
        (loss * scale, flat)
    }

    /// One optimization step on a sequence; returns the pre-update loss.
    pub fn train_sequence<O: Optimizer>(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        opt: &mut O,
    ) -> f64 {
        let (loss, grads) = self.loss_and_gradient(xs, ys);
        let mut params = self.flatten_params();
        opt.step(&mut params, &grads);
        self.set_params(&params);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn dimensions_and_param_count() {
        let rnn = Rnn::new(3, 7, 2, &mut rng());
        assert_eq!(rnn.input_size(), 3);
        assert_eq!(rnn.hidden_size(), 7);
        assert_eq!(rnn.output_size(), 2);
        assert_eq!(rnn.param_count(), 3 * 7 + 7 * 7 + 7 + 7 * 2 + 2);
    }

    #[test]
    fn params_roundtrip() {
        let mut rnn = Rnn::new(2, 4, 1, &mut rng());
        let mut p = rnn.flatten_params();
        p[0] += 1.0;
        rnn.set_params(&p);
        assert_eq!(rnn.flatten_params(), p);
    }

    #[test]
    fn hidden_state_carries_information() {
        let rnn = Rnn::new(1, 6, 1, &mut rng());
        let h0 = vec![0.0; 6];
        let (h1, _) = rnn.step(&[1.0], &h0);
        let (_, y_fresh) = rnn.step(&[0.0], &h0);
        let (_, y_after) = rnn.step(&[0.0], &h1);
        assert!(
            (y_fresh[0] - y_after[0]).abs() > 1e-9,
            "hidden state must influence the output"
        );
    }

    #[test]
    fn bptt_gradient_matches_finite_differences() {
        let rnn = Rnn::new(2, 5, 2, &mut rng());
        let xs: Vec<Vec<f64>> = (0..6)
            .map(|t| vec![(t as f64 * 0.7).sin(), (t as f64 * 0.3).cos()])
            .collect();
        let ys: Vec<Vec<f64>> = (0..6).map(|t| vec![(t as f64 * 0.5).cos(), 0.25]).collect();
        let (l0, grads) = rnn.loss_and_gradient(&xs, &ys);
        let params = rnn.flatten_params();
        let eps = 1e-6;
        let mut worst = 0.0f64;
        for i in (0..params.len()).step_by(5) {
            let mut p = params.clone();
            p[i] += eps;
            let mut plus = rnn.clone();
            plus.set_params(&p);
            p[i] -= 2.0 * eps;
            let mut minus = rnn.clone();
            minus.set_params(&p);
            let lp = plus.loss_and_gradient(&xs, &ys).0;
            let lm = minus.loss_and_gradient(&xs, &ys).0;
            let numeric = (lp - lm) / (2.0 * eps);
            worst = worst.max((numeric - grads[i]).abs());
        }
        let _ = l0;
        assert!(worst < 1e-5, "max BPTT gradient error {worst}");
    }

    #[test]
    fn learns_a_memory_task() {
        // Predict the input from two steps ago — requires real recurrence.
        let mut rnn = Rnn::new(1, 12, 1, &mut rng());
        let mut adam = Adam::with_learning_rate(0.02);
        let pattern = [1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let xs: Vec<Vec<f64>> = pattern.iter().map(|&v| vec![v]).collect();
        let ys: Vec<Vec<f64>> = (0..pattern.len())
            .map(|t| vec![if t >= 2 { pattern[t - 2] } else { 0.0 }])
            .collect();
        let mut last = f64::INFINITY;
        for _ in 0..1_500 {
            last = rnn.train_sequence(&xs, &ys, &mut adam);
        }
        assert!(last < 0.03, "memory task not learned: loss {last}");
    }

    #[test]
    #[should_panic]
    fn empty_sequence_panics() {
        let rnn = Rnn::new(1, 2, 1, &mut rng());
        rnn.loss_and_gradient(&[], &[]);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        Rnn::new(0, 3, 1, &mut rng());
    }
}
