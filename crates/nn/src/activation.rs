//! Activation functions.

/// An elementwise activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)` — the paper's hidden-layer
    /// activation.
    #[default]
    Relu,
    /// Identity (linear output layer, standard for Q-value heads).
    Identity,
}

impl Activation {
    /// Applies the activation to one value.
    ///
    /// ```
    /// use ctjam_nn::activation::Activation;
    /// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
    /// assert_eq!(Activation::Relu.apply(3.0), 3.0);
    /// assert_eq!(Activation::Identity.apply(-2.0), -2.0);
    /// ```
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the pre-activation value.
    ///
    /// ReLU's derivative at 0 is taken as 0 (the usual convention).
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a slice in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn derivatives_are_consistent_with_finite_differences() {
        let h = 1e-7;
        for act in [Activation::Relu, Activation::Identity] {
            for x in [-2.0, -0.5, 0.5, 2.0] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                assert!((act.derivative(x) - numeric).abs() < 1e-6, "{act:?} at {x}");
            }
        }
    }

    #[test]
    fn slice_application() {
        let mut xs = [-1.0, 0.0, 1.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 1.0]);
    }
}
