//! Loss functions for regression heads (Q-value targets).

/// A pointwise regression loss.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Loss {
    /// Mean squared error, `(ŷ − y)²` averaged over outputs.
    #[default]
    Mse,
    /// Huber loss with threshold `δ`: quadratic near zero, linear in the
    /// tails — the standard DQN stabilizer against outlier TD errors.
    Huber {
        /// Transition point between quadratic and linear regimes.
        delta: f64,
    },
}

impl Loss {
    /// Loss value for a prediction/target pair.
    pub fn value(self, prediction: f64, target: f64) -> f64 {
        let e = prediction - target;
        match self {
            Loss::Mse => e * e,
            Loss::Huber { delta } => {
                if e.abs() <= delta {
                    0.5 * e * e
                } else {
                    delta * (e.abs() - 0.5 * delta)
                }
            }
        }
    }

    /// Gradient of the loss with respect to the prediction.
    pub fn gradient(self, prediction: f64, target: f64) -> f64 {
        let e = prediction - target;
        match self {
            Loss::Mse => 2.0 * e,
            Loss::Huber { delta } => e.clamp(-delta, delta),
        }
    }

    /// Mean loss over a pair of equal-length slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    pub fn mean(self, predictions: &[f64], targets: &[f64]) -> f64 {
        assert_eq!(predictions.len(), targets.len(), "length mismatch");
        assert!(!predictions.is_empty(), "empty loss batch");
        predictions
            .iter()
            .zip(targets)
            .map(|(&p, &t)| self.value(p, t))
            .sum::<f64>()
            / predictions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(Loss::Mse.value(3.0, 1.0), 4.0);
        assert_eq!(Loss::Mse.gradient(3.0, 1.0), 4.0);
        assert_eq!(Loss::Mse.value(1.0, 1.0), 0.0);
    }

    #[test]
    fn huber_is_quadratic_then_linear() {
        let h = Loss::Huber { delta: 1.0 };
        assert_eq!(h.value(0.5, 0.0), 0.125);
        assert_eq!(h.value(3.0, 0.0), 2.5); // 1·(3 − 0.5)
        assert_eq!(h.gradient(0.5, 0.0), 0.5);
        assert_eq!(h.gradient(5.0, 0.0), 1.0); // clipped
        assert_eq!(h.gradient(-5.0, 0.0), -1.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let eps = 1e-7;
        for loss in [Loss::Mse, Loss::Huber { delta: 1.5 }] {
            for (p, t) in [(0.3, 0.0), (2.0, -1.0), (-3.0, 0.5)] {
                let numeric = (loss.value(p + eps, t) - loss.value(p - eps, t)) / (2.0 * eps);
                assert!(
                    (loss.gradient(p, t) - numeric).abs() < 1e-5,
                    "{loss:?} at ({p}, {t})"
                );
            }
        }
    }

    #[test]
    fn mean_averages() {
        let m = Loss::Mse.mean(&[1.0, 3.0], &[1.0, 1.0]);
        assert_eq!(m, 2.0);
    }

    #[test]
    #[should_panic]
    fn empty_batch_panics() {
        Loss::Mse.mean(&[], &[]);
    }
}
