//! Post-training int8 quantization of an [`Mlp`] — the serving-only
//! inference path.
//!
//! Motivated by the resource-constrained-IoT DRL line of work
//! (PAPERS.md): the anti-jamming policies this repo trains are meant to
//! run on tiny devices, where an int8 forward pass costs a quarter of
//! the f64 model's memory traffic. The scheme is standard *symmetric
//! static* quantization:
//!
//! * **Weights**: per-output-row scale `w_scale[o] = max|W[o][·]| / 127`,
//!   rounded to the nearest `i8` (symmetric, so no zero-point).
//! * **Activations**: one scale per layer input,
//!   `in_scale = max|a| / 127`, where the max is taken over a
//!   calibration set propagated through the **f64** network (non-finite
//!   values are ignored; an all-zero calibration falls back to scale
//!   `1/127`).
//! * **Accumulation**: `i8 × i8 → i32` (exact — no rounding inside the
//!   dot product), dequantized once per output as
//!   `acc · (w_scale[o] · in_scale) + bias[o]`; bias and activation stay
//!   in f64.
//!
//! Because the inner loop is integer math, a quantized forward pass is
//! exactly reproducible — bit-identical across machines and backends —
//! but it is *lossy* vs the f64 model. The accuracy contract is
//! therefore **behavioral**, not numeric: serving only enables this
//! path when greedy-action agreement vs f64 on held-out observations
//! clears a gate (≥ 99.5% in ctjam-serve; see `ctjam_dqn::quant` and
//! the gate test in `crates/dqn/tests/quant_gate.rs`).
//!
//! Adversarial inputs are safe by construction: quantizing an input
//! value saturates huge magnitudes to ±127, flushes subnormals to 0,
//! and maps NaN to 0 (Rust's saturating float→int cast) — the forward
//! pass never panics on any f64 input.

use crate::activation::Activation;
use crate::batch::Batch;
use crate::mlp::Mlp;

/// Upper bound on quantized layer width: `127·127·cols` must fit an
/// `i32` accumulator with slack (`i32::MAX / 127² ≈ 133 000`).
const MAX_QUANT_DIM: usize = 100_000;

/// One int8-quantized dense layer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLayer {
    rows: usize,
    cols: usize,
    /// Row-major `rows × cols` int8 weights.
    weights_q: Vec<i8>,
    /// Per-output-row symmetric weight scale (dequant multiplier).
    w_scale: Vec<f64>,
    /// f64 biases, added after dequantization.
    bias: Vec<f64>,
    /// Symmetric scale of this layer's *input* activations.
    in_scale: f64,
    activation: Activation,
}

/// An int8-quantized [`Mlp`] for inference only.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantLayer>,
}

/// Reusable buffers for [`QuantizedMlp::forward_into`]: the quantized
/// input row and the f64 ping-pong activation buffers.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    q_in: Vec<i8>,
    cur: Vec<f64>,
    next: Vec<f64>,
}

/// Quantizes one f64 value against a symmetric scale. Saturates to
/// ±127, flushes NaN to 0 (saturating cast semantics).
#[inline]
fn quantize_value(v: f64, inv_scale: f64) -> i8 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i8
}

/// Symmetric scale for a set of values: `max|v| / 127` over the finite
/// entries, falling back to `1/127` when everything is zero or
/// non-finite (so dequantization never divides by zero).
fn symmetric_scale<'a>(values: impl Iterator<Item = &'a f64>) -> f64 {
    let max_abs = values
        .map(|v| v.abs())
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max);
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0 / 127.0
    }
}

impl QuantizedMlp {
    /// Post-training quantization of `net`, calibrating activation
    /// scales by propagating `calibration` through the f64 network.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty, its width differs from the
    /// network input, or a layer exceeds the int8 accumulator bound.
    pub fn quantize(net: &Mlp, calibration: &Batch) -> Self {
        assert!(calibration.rows() > 0, "empty calibration set");
        assert_eq!(
            calibration.cols(),
            net.input_size(),
            "calibration width mismatch"
        );
        // Propagate the calibration set through the f64 network once,
        // recording each layer's input max-abs for its in_scale.
        let mut acts: Vec<f64> = calibration.as_slice().to_vec();
        let rows = calibration.rows();
        let mut layers = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            let (out_size, in_size) = (layer.output_size(), layer.input_size());
            assert!(
                in_size <= MAX_QUANT_DIM,
                "layer too wide for the i32 accumulator ({in_size} > {MAX_QUANT_DIM})"
            );
            let in_scale = symmetric_scale(acts.iter());
            let w = layer.weights().as_slice();
            let mut weights_q = Vec::with_capacity(w.len());
            let mut w_scale = Vec::with_capacity(out_size);
            for wr in w.chunks_exact(in_size) {
                let scale = symmetric_scale(wr.iter());
                let inv = 1.0 / scale;
                weights_q.extend(wr.iter().map(|&v| quantize_value(v, inv)));
                w_scale.push(scale);
            }
            layers.push(QuantLayer {
                rows: out_size,
                cols: in_size,
                weights_q,
                w_scale,
                bias: layer.biases().to_vec(),
                in_scale,
                activation: layer.activation(),
            });
            // f64 forward to the next layer's input for its calibration.
            let mut next = vec![0.0; rows * out_size];
            for (xr, or) in acts
                .chunks_exact(in_size)
                .zip(next.chunks_exact_mut(out_size))
            {
                for (o, (wr, &b)) in or
                    .iter_mut()
                    .zip(w.chunks_exact(in_size).zip(layer.biases()))
                {
                    let mut acc = 0.0;
                    for (&wv, &xv) in wr.iter().zip(xr) {
                        acc += wv * xv;
                    }
                    *o = layer.activation().apply(acc + b);
                }
            }
            acts = next;
        }
        QuantizedMlp { layers }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.layers.first().expect("at least one layer").cols
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.layers.last().expect("at least one layer").rows
    }

    /// Bytes the quantized parameters occupy (i8 weights + f64 scales
    /// and biases) — the memory-footprint number the IoT motivation
    /// cares about; compare with `8 × Mlp::param_count()`.
    pub fn param_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights_q.len() + 8 * (l.w_scale.len() + l.bias.len() + 1))
            .sum()
    }

    /// Inference over one observation, writing the Q-row into `out`.
    /// Never panics on non-finite or huge inputs (they saturate/flush
    /// during quantization).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward_into(&self, x: &[f64], scratch: &mut QuantScratch, out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.input_size(), "input width mismatch");
        scratch.cur.clear();
        scratch.cur.extend_from_slice(x);
        for layer in &self.layers {
            let inv = 1.0 / layer.in_scale;
            scratch.q_in.clear();
            scratch
                .q_in
                .extend(scratch.cur.iter().map(|&v| quantize_value(v, inv)));
            scratch.next.clear();
            scratch.next.reserve(layer.rows);
            for (wr, (&scale, &b)) in layer
                .weights_q
                .chunks_exact(layer.cols)
                .zip(layer.w_scale.iter().zip(&layer.bias))
            {
                let mut acc: i32 = 0;
                for (&wq, &xq) in wr.iter().zip(&scratch.q_in) {
                    acc += i32::from(wq) * i32::from(xq);
                }
                let deq = acc as f64 * (scale * layer.in_scale) + b;
                scratch.next.push(layer.activation.apply(deq));
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        out.clear();
        out.extend_from_slice(&scratch.cur);
    }

    /// Inference over every row of `batch`, appending each Q-row to
    /// `out` (cleared first) — row `s` occupies
    /// `out[s·output_size .. (s+1)·output_size]`.
    ///
    /// # Panics
    ///
    /// Panics if `batch.cols()` differs from the input width.
    pub fn forward_batch_into(
        &self,
        batch: &Batch,
        scratch: &mut QuantScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(batch.cols(), self.input_size(), "input width mismatch");
        out.clear();
        let mut row_out = Vec::with_capacity(self.output_size());
        for s in 0..batch.rows() {
            self.forward_into(batch.row(s), scratch, &mut row_out);
            out.extend_from_slice(&row_out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net() -> Mlp {
        let mut rng = StdRng::seed_from_u64(11);
        MlpBuilder::new(4).hidden(8).output(3).build(&mut rng)
    }

    fn calib() -> Batch {
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|s| (0..4).map(|k| ((s * 4 + k) as f64 * 0.37).sin()).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| &r[..]).collect();
        Batch::from_rows(&refs)
    }

    #[test]
    fn quantized_forward_tracks_f64_closely() {
        let net = small_net();
        let q = QuantizedMlp::quantize(&net, &calib());
        let mut scratch = QuantScratch::default();
        let mut out = Vec::new();
        let x = [0.3, -0.7, 0.9, -0.1];
        q.forward_into(&x, &mut scratch, &mut out);
        let want = net.forward(&x);
        assert_eq!(out.len(), want.len());
        let span = want.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        for (got, w) in out.iter().zip(&want) {
            // ~1% of the output span: two int8 roundings through two layers.
            assert!((got - w).abs() <= 0.05 * span, "{got} vs {w}");
        }
    }

    #[test]
    fn batch_forward_is_per_row_forward() {
        let net = small_net();
        let q = QuantizedMlp::quantize(&net, &calib());
        let mut scratch = QuantScratch::default();
        let batch = calib();
        let mut all = Vec::new();
        q.forward_batch_into(&batch, &mut scratch, &mut all);
        let mut one = Vec::new();
        for s in 0..batch.rows() {
            q.forward_into(batch.row(s), &mut scratch, &mut one);
            assert_eq!(
                &all[s * q.output_size()..(s + 1) * q.output_size()],
                &one[..]
            );
        }
    }

    #[test]
    fn adversarial_inputs_never_panic() {
        let net = small_net();
        let q = QuantizedMlp::quantize(&net, &calib());
        let mut scratch = QuantScratch::default();
        let mut out = Vec::new();
        for x in [
            [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0],
            [1e308, -1e308, 5e-324, -5e-324],
            [f64::MIN_POSITIVE, -f64::MIN_POSITIVE, 0.0, -0.0],
        ] {
            q.forward_into(&x, &mut scratch, &mut out);
            assert!(
                out.iter().all(|v| v.is_finite()),
                "non-finite output for {x:?}"
            );
        }
    }

    #[test]
    fn saturation_and_nan_map_into_i8_range() {
        assert_eq!(quantize_value(1e300, 127.0), 127);
        assert_eq!(quantize_value(-1e300, 127.0), -127);
        assert_eq!(quantize_value(f64::NAN, 127.0), 0);
        assert_eq!(quantize_value(5e-324, 127.0), 0);
    }

    #[test]
    fn param_bytes_beat_f64() {
        let net = small_net();
        let q = QuantizedMlp::quantize(&net, &calib());
        assert!(q.param_bytes() < 8 * net.param_count());
    }

    #[test]
    #[should_panic(expected = "empty calibration")]
    fn empty_calibration_panics() {
        let net = small_net();
        QuantizedMlp::quantize(&net, &Batch::with_cols(4));
    }

    #[test]
    #[should_panic(expected = "calibration width mismatch")]
    fn wrong_calibration_width_panics() {
        let net = small_net();
        QuantizedMlp::quantize(&net, &Batch::from_rows(&[&[1.0, 2.0]]));
    }
}
