//! Weight (de)serialization and memory accounting.
//!
//! The paper reports that its trained DQN is "a series of matrices, which
//! contain 10 664 float numbers with 42.7 KB memory" — i.e. 32-bit floats
//! (10 664 × 4 B = 42.66 KB) loaded onto the IoT hub before the
//! experiment. This module serializes networks in exactly that deployable
//! f32 format (plus a shape header) and provides the accounting.

use crate::mlp::{Mlp, MlpBuilder};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic tag of the weight file format.
const MAGIC: &[u8; 4] = b"CTJN";

/// Magic tag of the f64-exact checkpoint weight format.
const MAGIC_EXACT: &[u8; 4] = b"CTJ8";

/// Errors from deserializing a weight blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// Missing or wrong magic tag.
    BadMagic,
    /// The blob ended prematurely.
    Truncated,
    /// The declared shape is invalid (fewer than 2 layers, zero width).
    BadShape,
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::BadMagic => write!(f, "not a ctjam weight blob"),
            SerializeError::Truncated => write!(f, "weight blob ended prematurely"),
            SerializeError::BadShape => write!(f, "weight blob declares an invalid shape"),
        }
    }
}

impl std::error::Error for SerializeError {}

/// Serializes a network to the deployable format: magic, layer count,
/// layer widths (u32 LE), then all parameters as f32 LE in
/// [`Mlp::flatten_params`] order.
pub fn to_bytes(net: &Mlp) -> Bytes {
    let shape = net.shape();
    let params = net.flatten_params();
    let mut buf = BytesMut::with_capacity(4 + 4 + shape.len() * 4 + params.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(shape.len() as u32);
    for s in &shape {
        buf.put_u32_le(*s as u32);
    }
    for p in params {
        buf.put_f32_le(p as f32);
    }
    buf.freeze()
}

/// Deserializes a network from [`to_bytes`] output. Weights round-trip
/// through f32, matching what the deployed MCU actually runs.
///
/// # Errors
///
/// Returns a [`SerializeError`] on format violations.
pub fn from_bytes(mut bytes: &[u8]) -> Result<Mlp, SerializeError> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    bytes.advance(4);
    let num_sizes = bytes.get_u32_le() as usize;
    if num_sizes < 2 {
        return Err(SerializeError::BadShape);
    }
    if bytes.remaining() < num_sizes * 4 {
        return Err(SerializeError::Truncated);
    }
    let mut shape = Vec::with_capacity(num_sizes);
    for _ in 0..num_sizes {
        let s = bytes.get_u32_le() as usize;
        if s == 0 {
            return Err(SerializeError::BadShape);
        }
        shape.push(s);
    }

    let mut builder = MlpBuilder::new(shape[0]);
    for &h in &shape[1..num_sizes - 1] {
        builder = builder.hidden(h);
    }
    // Weight values are about to be overwritten; the RNG seed is moot.
    let mut rng = rand::rngs::mock::StepRng::new(1, 1);
    let mut net = builder.output(shape[num_sizes - 1]).build(&mut rng);

    let count = net.param_count();
    if bytes.remaining() < count * 4 {
        return Err(SerializeError::Truncated);
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        params.push(f64::from(bytes.get_f32_le()));
    }
    net.set_params(&params);
    Ok(net)
}

/// Serializes a network losslessly: magic `CTJ8`, layer count, layer
/// widths (u32 LE), then all parameters as f64 LE.
///
/// The deployable format ([`to_bytes`]) rounds through f32 — fine for
/// the MCU, fatal for checkpoint/resume, where training must continue
/// bit-exactly from the saved weights. This is the checkpoint side.
pub fn to_bytes_exact(net: &Mlp) -> Bytes {
    let shape = net.shape();
    let params = net.flatten_params();
    let mut buf = BytesMut::with_capacity(4 + 4 + shape.len() * 4 + params.len() * 8);
    buf.put_slice(MAGIC_EXACT);
    buf.put_u32_le(shape.len() as u32);
    for s in &shape {
        buf.put_u32_le(*s as u32);
    }
    for p in params {
        buf.put_f64_le(p);
    }
    buf.freeze()
}

/// Deserializes a network from [`to_bytes_exact`] output, reproducing
/// the original parameters bit-for-bit.
///
/// # Errors
///
/// Returns a [`SerializeError`] on format violations.
pub fn from_bytes_exact(mut bytes: &[u8]) -> Result<Mlp, SerializeError> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC_EXACT {
        return Err(SerializeError::BadMagic);
    }
    bytes.advance(4);
    let num_sizes = bytes.get_u32_le() as usize;
    if num_sizes < 2 {
        return Err(SerializeError::BadShape);
    }
    if bytes.remaining() < num_sizes * 4 {
        return Err(SerializeError::Truncated);
    }
    let mut shape = Vec::with_capacity(num_sizes);
    for _ in 0..num_sizes {
        let s = bytes.get_u32_le() as usize;
        if s == 0 {
            return Err(SerializeError::BadShape);
        }
        shape.push(s);
    }

    let mut builder = MlpBuilder::new(shape[0]);
    for &h in &shape[1..num_sizes - 1] {
        builder = builder.hidden(h);
    }
    // Weight values are about to be overwritten; the RNG seed is moot.
    let mut rng = rand::rngs::mock::StepRng::new(1, 1);
    let mut net = builder.output(shape[num_sizes - 1]).build(&mut rng);

    let count = net.param_count();
    if bytes.remaining() < count * 8 {
        return Err(SerializeError::Truncated);
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        params.push(bytes.get_f64_le());
    }
    net.set_params(&params);
    Ok(net)
}

/// Deployed memory footprint in bytes: 4 bytes per parameter, the f32
/// format the paper's 42.7 KB figure implies.
pub fn deployed_bytes(net: &Mlp) -> usize {
    net.param_count() * 4
}

/// Human-readable size in KB (matching the paper's reporting style).
pub fn deployed_kb(net: &Mlp) -> f64 {
    deployed_bytes(net) as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_scale_net() -> Mlp {
        let mut rng = StdRng::seed_from_u64(1);
        // 3·I = 24 inputs, two hidden layers, C·PL = 160 outputs.
        MlpBuilder::new(24)
            .hidden(48)
            .hidden(42)
            .output(160)
            .build(&mut rng)
    }

    #[test]
    fn roundtrip_preserves_shape_and_weights() {
        let net = paper_scale_net();
        let blob = to_bytes(&net);
        let back = from_bytes(&blob).unwrap();
        assert_eq!(back.shape(), net.shape());
        // Values survive up to f32 precision.
        let a = net.flatten_params();
        let b = back.flatten_params();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn roundtripped_network_predicts_like_the_original() {
        let net = paper_scale_net();
        let back = from_bytes(&to_bytes(&net)).unwrap();
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = net.forward(&x);
        let b = back.forward(&x);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn memory_footprint_matches_paper_order() {
        // The paper: 10 664 floats, 42.7 KB. Our default DQN shape is the
        // same order of magnitude and well under the MCU budget.
        let net = paper_scale_net();
        let params = net.param_count();
        assert!(
            (8_000..13_000).contains(&params),
            "parameter count {params} far from the paper's 10 664"
        );
        assert_eq!(deployed_bytes(&net), params * 4);
        assert!(
            (32.0..52.0).contains(&deployed_kb(&net)),
            "{} KB far from the paper's 42.7 KB",
            deployed_kb(&net)
        );
    }

    #[test]
    fn exact_roundtrip_is_bit_identical() {
        let net = paper_scale_net();
        let back = from_bytes_exact(&to_bytes_exact(&net)).unwrap();
        assert_eq!(back.shape(), net.shape());
        let a = net.flatten_params();
        let b = back.flatten_params();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn exact_and_deployable_magics_do_not_cross_parse() {
        let net = paper_scale_net();
        assert_eq!(
            from_bytes(&to_bytes_exact(&net)).unwrap_err(),
            SerializeError::BadMagic
        );
        assert_eq!(
            from_bytes_exact(&to_bytes(&net)).unwrap_err(),
            SerializeError::BadMagic
        );
    }

    #[test]
    fn truncated_exact_blob_rejected() {
        let blob = to_bytes_exact(&paper_scale_net());
        let cut = &blob[..blob.len() - 3];
        assert_eq!(
            from_bytes_exact(cut).unwrap_err(),
            SerializeError::Truncated
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            from_bytes(b"NOPE1234").unwrap_err(),
            SerializeError::BadMagic
        );
        assert_eq!(from_bytes(&[]).unwrap_err(), SerializeError::BadMagic);
    }

    #[test]
    fn truncated_blob_rejected() {
        let blob = to_bytes(&paper_scale_net());
        let cut = &blob[..blob.len() - 10];
        assert_eq!(from_bytes(cut).unwrap_err(), SerializeError::Truncated);
    }

    #[test]
    fn zero_width_shape_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(3);
        buf.put_u32_le(4);
        buf.put_u32_le(0);
        buf.put_u32_le(2);
        assert_eq!(from_bytes(&buf).unwrap_err(), SerializeError::BadShape);
    }
}
