//! A row-major `f64` matrix with the operations backpropagation needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use ctjam_nn::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = vec![1.0, 1.0];
/// assert_eq!(a.mul_vec(&x), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat view of the entries (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of the entries (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[allow(clippy::needless_range_loop)] // row index computes the data offset
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out[r] = row.iter().zip(x).map(|(w, v)| w * v).sum();
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    #[allow(clippy::needless_range_loop)] // row index computes the data offset
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let yr = y[r];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * yr;
            }
        }
        out
    }

    /// Accumulates the outer product `y·xᵀ` into `self` scaled by `scale`
    /// (the weight-gradient update `dW += scale · dz xᵀ`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[allow(clippy::needless_range_loop)] // row index computes the data offset
    pub fn add_outer(&mut self, y: &[f64], x: &[f64], scale: f64) {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let yr = y[r] * scale;
            for (w, v) in row.iter_mut().zip(x) {
                *w += yr * v;
            }
        }
    }

    /// Fills the matrix with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn mul_vec_matches_hand_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn transposed_product_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = [1.0, -1.0, 2.0];
        // Aᵀy = [1−3+10, 2−4+12] = [8, 10].
        assert_eq!(a.mul_vec_transposed(&y), vec![8.0, 10.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut g = Matrix::zeros(2, 2);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(g.as_slice(), &[1.5, 2.0, 3.0, 4.0]);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(g[(1, 1)], 8.0);
        g.fill_zero();
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        Matrix::zeros(2, 3).mul_vec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
