//! A row-major `f64` matrix with the operations backpropagation needs.
//!
//! The GEMM entry points ([`gemm_nn_into`], [`gemm_nt_into`],
//! [`gemm_tn_scaled_into`]) dispatch between the scalar oracle kernels
//! (`*_scalar_into`, bit-exact, the default) and the AVX2+FMA
//! microkernels in [`crate::simd`] according to the process-wide switch
//! in [`crate::kernel`].

use crate::{kernel, simd};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use ctjam_nn::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = vec![1.0, 1.0];
/// assert_eq!(a.mul_vec(&x), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat view of the entries (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of the entries (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[allow(clippy::needless_range_loop)] // row index computes the data offset
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out[r] = row.iter().zip(x).map(|(w, v)| w * v).sum();
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    #[allow(clippy::needless_range_loop)] // row index computes the data offset
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let yr = y[r];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * yr;
            }
        }
        out
    }

    /// Accumulates the outer product `y·xᵀ` into `self` scaled by `scale`
    /// (the weight-gradient update `dW += scale · dz xᵀ`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[allow(clippy::needless_range_loop)] // row index computes the data offset
    pub fn add_outer(&mut self, y: &[f64], x: &[f64], scale: f64) {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let yr = y[r] * scale;
            for (w, v) in row.iter_mut().zip(x) {
                *w += yr * v;
            }
        }
    }

    /// Blocked matrix–matrix product `A·B`.
    ///
    /// Each output element accumulates over `k` in ascending order — the
    /// same order as [`Matrix::mul_vec_transposed`] — so batched and
    /// per-sample paths agree bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm_nn_into(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        out
    }

    /// Blocked/register-tiled product with a transposed right-hand side,
    /// `A·Bᵀ` (both operands row-major, both traversed contiguously).
    ///
    /// Each output element is a plain ascending-`k` dot product — the
    /// same accumulation order as [`Matrix::mul_vec`] row by row — so the
    /// result is bit-identical to the per-row path. The tiling only
    /// interleaves *independent* dot products for instruction-level
    /// parallelism; it never reorders a single sum.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let mut pack = Vec::new();
        gemm_nt_into(
            &self.data,
            self.rows,
            &rhs.data,
            rhs.rows,
            self.cols,
            None,
            &mut pack,
            &mut out.data,
        );
        out
    }

    /// Fills the matrix with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// `out[s][o] = Σ_k a[s][k]·b[o][k] (+ bias[o])` for `a: a_rows×k`
/// (row-major), `b: b_rows×k` (row-major), `out: a_rows×b_rows` —
/// dispatching to the scalar oracle or the SIMD microkernel per
/// [`crate::kernel::simd_active`].
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style gemm signature
pub fn gemm_nt_into(
    a: &[f64],
    a_rows: usize,
    b: &[f64],
    b_rows: usize,
    k: usize,
    bias: Option<&[f64]>,
    pack: &mut Vec<f64>,
    out: &mut [f64],
) {
    if kernel::simd_active() {
        simd::gemm_nt_simd_into(a, a_rows, b, b_rows, k, bias, pack, out);
    } else {
        gemm_nt_scalar_into(a, a_rows, b, b_rows, k, bias, pack, out);
    }
}

/// Scalar oracle for [`gemm_nt_into`].
///
/// Every output element accumulates in ascending `k` order starting from
/// `0.0`, with the bias added only after the dot product completes —
/// bit-identical to `mul_vec` plus a bias add. Lengths are the caller's
/// contract (`Matrix`/`Batch` wrappers assert shapes).
///
/// `pack` is reusable scratch: `b` is transposed into it (`k`-major) so
/// the hot loop reads both operands contiguously and auto-vectorizes
/// across *independent* per-column accumulators. The transpose costs one
/// extra pass over `b` — amortised over `a_rows` — and cannot change a
/// single bit of the result, because each output element's sum still
/// folds left over ascending `k`; only the memory layout moves.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style gemm signature
pub fn gemm_nt_scalar_into(
    a: &[f64],
    a_rows: usize,
    b: &[f64],
    b_rows: usize,
    k: usize,
    bias: Option<&[f64]>,
    pack: &mut Vec<f64>,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), a_rows * k);
    debug_assert_eq!(b.len(), b_rows * k);
    debug_assert_eq!(out.len(), a_rows * b_rows);
    pack.clear();
    pack.resize(k * b_rows, 0.0);
    if k > 0 {
        for (o, br) in b.chunks_exact(k).enumerate() {
            for (kk, &w) in br.iter().enumerate() {
                pack[kk * b_rows + o] = w;
            }
        }
    }
    gemm_nn_scalar_into(a, a_rows, k, pack, b_rows, out);
    if let (Some(bs), true) = (bias, b_rows > 0) {
        for or in out.chunks_exact_mut(b_rows) {
            for (o, &bv) in or.iter_mut().zip(bs) {
                *o += bv;
            }
        }
    }
}

/// `out[s][c] = Σ_r a[s][r]·b[r][c]` for `a: a_rows×a_cols` and
/// `b: a_cols×b_cols`, both row-major.
///
/// Accumulates over `r` in ascending order into independent per-column
/// accumulators — bit-identical to `mul_vec_transposed` row by row, and
/// vectorizable because the inner column loop carries no dependency.
/// Micro-kernel tile of [`gemm_nn_into`]: an `NN_MR × NN_NR` block of
/// output elements accumulates entirely in registers across the whole
/// `r` loop, so `out` is stored once instead of once per `r` step and
/// every load of `b` feeds `NN_MR` rows. Tiling only regroups
/// *independent* output elements; each one still folds over `r` in
/// ascending order from `0.0`, so the result is bit-identical to the
/// naive loop.
const NN_MR: usize = 4;
/// Primary register-tile width (output columns per micro-kernel pass).
const NN_NR: usize = 16;
/// Narrow register tile for column remainders of the primary tile.
const NN_NR2: usize = 8;

/// `out[s][c] = Σ_r a[s][r]·b[r][c]` for `a: a_rows×a_cols` and
/// `b: a_cols×b_cols`, both row-major — dispatching to the scalar
/// oracle or the SIMD microkernel per [`crate::kernel::simd_active`].
pub fn gemm_nn_into(
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    b: &[f64],
    b_cols: usize,
    out: &mut [f64],
) {
    if kernel::simd_active() {
        simd::gemm_nn_simd_into(a, a_rows, a_cols, b, b_cols, out);
    } else {
        gemm_nn_scalar_into(a, a_rows, a_cols, b, b_cols, out);
    }
}

/// Scalar oracle for [`gemm_nn_into`].
pub fn gemm_nn_scalar_into(
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    b: &[f64],
    b_cols: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), a_rows * a_cols);
    debug_assert_eq!(b.len(), a_cols * b_cols);
    debug_assert_eq!(out.len(), a_rows * b_cols);
    let mut s = 0;
    while s + NN_MR <= a_rows {
        let mut c = 0;
        while c + NN_NR <= b_cols {
            let mut acc = [[0.0f64; NN_NR]; NN_MR];
            for r in 0..a_cols {
                let br = &b[r * b_cols + c..r * b_cols + c + NN_NR];
                for (m, am) in acc.iter_mut().enumerate() {
                    let av = a[(s + m) * a_cols + r];
                    for (o, &w) in am.iter_mut().zip(br) {
                        *o += w * av;
                    }
                }
            }
            for (m, am) in acc.iter().enumerate() {
                out[(s + m) * b_cols + c..(s + m) * b_cols + c + NN_NR].copy_from_slice(am);
            }
            c += NN_NR;
        }
        while c + NN_NR2 <= b_cols {
            let mut acc = [[0.0f64; NN_NR2]; NN_MR];
            for r in 0..a_cols {
                let br = &b[r * b_cols + c..r * b_cols + c + NN_NR2];
                for (m, am) in acc.iter_mut().enumerate() {
                    let av = a[(s + m) * a_cols + r];
                    for (o, &w) in am.iter_mut().zip(br) {
                        *o += w * av;
                    }
                }
            }
            for (m, am) in acc.iter().enumerate() {
                out[(s + m) * b_cols + c..(s + m) * b_cols + c + NN_NR2].copy_from_slice(am);
            }
            c += NN_NR2;
        }
        // Remaining columns: one register accumulator per output element,
        // still folding ascending `r`.
        while c < b_cols {
            let mut acc = [0.0f64; NN_MR];
            for r in 0..a_cols {
                let w = b[r * b_cols + c];
                for (m, o) in acc.iter_mut().enumerate() {
                    *o += w * a[(s + m) * a_cols + r];
                }
            }
            for (m, &o) in acc.iter().enumerate() {
                out[(s + m) * b_cols + c] = o;
            }
            c += 1;
        }
        s += NN_MR;
    }
    // Remaining rows: the plain single-row kernel.
    for s in s..a_rows {
        let or = &mut out[s * b_cols..(s + 1) * b_cols];
        or.fill(0.0);
        let ar = &a[s * a_cols..(s + 1) * a_cols];
        for (r, &av) in ar.iter().enumerate() {
            let br = &b[r * b_cols..(r + 1) * b_cols];
            for (o, &w) in or.iter_mut().zip(br) {
                *o += w * av;
            }
        }
    }
}

/// `out[j][i] = Σ_s (a[s][j]·scale)·b[s][i]` for `a: rows×m` and
/// `b: rows×n`, both row-major — the batched weight gradient
/// `dW = (dz·scale)ᵀ·A` as one pass — dispatching to the scalar oracle
/// or the SIMD microkernel per [`crate::kernel::simd_active`].
pub fn gemm_tn_scaled_into(
    a: &[f64],
    rows: usize,
    m: usize,
    scale: f64,
    b: &[f64],
    n: usize,
    out: &mut [f64],
) {
    if kernel::simd_active() {
        simd::gemm_tn_scaled_simd_into(a, rows, m, scale, b, n, out);
    } else {
        gemm_tn_scaled_scalar_into(a, rows, m, scale, b, n, out);
    }
}

/// Scalar oracle for [`gemm_tn_scaled_into`]: no transpose pack (row
/// `s` of both operands is already contiguous).
///
/// Every output element folds over `s` in ascending order from `0.0`,
/// adding exactly the `(a·scale)·b` products of the per-sample rank-1
/// update sequence — bit-identical to `Matrix::add_outer` called once
/// per sample in ascending order on a zeroed accumulator.
pub fn gemm_tn_scaled_scalar_into(
    a: &[f64],
    rows: usize,
    m: usize,
    scale: f64,
    b: &[f64],
    n: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), rows * m);
    debug_assert_eq!(b.len(), rows * n);
    debug_assert_eq!(out.len(), m * n);
    let mut j = 0;
    while j + NN_MR <= m {
        let mut i = 0;
        while i + NN_NR <= n {
            let mut acc = [[0.0f64; NN_NR]; NN_MR];
            for s in 0..rows {
                let avs = &a[s * m + j..s * m + j + NN_MR];
                let bvs = &b[s * n + i..s * n + i + NN_NR];
                for (mm, am) in acc.iter_mut().enumerate() {
                    let av = avs[mm] * scale;
                    for (o, &w) in am.iter_mut().zip(bvs) {
                        *o += av * w;
                    }
                }
            }
            for (mm, am) in acc.iter().enumerate() {
                out[(j + mm) * n + i..(j + mm) * n + i + NN_NR].copy_from_slice(am);
            }
            i += NN_NR;
        }
        while i + NN_NR2 <= n {
            let mut acc = [[0.0f64; NN_NR2]; NN_MR];
            for s in 0..rows {
                let avs = &a[s * m + j..s * m + j + NN_MR];
                let bvs = &b[s * n + i..s * n + i + NN_NR2];
                for (mm, am) in acc.iter_mut().enumerate() {
                    let av = avs[mm] * scale;
                    for (o, &w) in am.iter_mut().zip(bvs) {
                        *o += av * w;
                    }
                }
            }
            for (mm, am) in acc.iter().enumerate() {
                out[(j + mm) * n + i..(j + mm) * n + i + NN_NR2].copy_from_slice(am);
            }
            i += NN_NR2;
        }
        while i < n {
            let mut acc = [0.0f64; NN_MR];
            for s in 0..rows {
                let w = b[s * n + i];
                for (mm, o) in acc.iter_mut().enumerate() {
                    *o += (a[s * m + j + mm] * scale) * w;
                }
            }
            for (mm, &o) in acc.iter().enumerate() {
                out[(j + mm) * n + i] = o;
            }
            i += 1;
        }
        j += NN_MR;
    }
    for j in j..m {
        let or = &mut out[j * n..(j + 1) * n];
        or.fill(0.0);
        for s in 0..rows {
            let av = a[s * m + j] * scale;
            let bvs = &b[s * n..(s + 1) * n];
            for (o, &w) in or.iter_mut().zip(bvs) {
                *o += av * w;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn mul_vec_matches_hand_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn transposed_product_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = [1.0, -1.0, 2.0];
        // Aᵀy = [1−3+10, 2−4+12] = [8, 10].
        assert_eq!(a.mul_vec_transposed(&y), vec![8.0, 10.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut g = Matrix::zeros(2, 2);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(g.as_slice(), &[1.5, 2.0, 3.0, 4.0]);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(g[(1, 1)], 8.0);
        g.fill_zero();
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_equals_explicit_transpose() {
        // Shapes larger than the register tile so both the tiled body and
        // the remainder path run.
        let a = Matrix::from_fn(5, 11, |r, c| ((r * 13 + c * 7) as f64 * 0.3).sin());
        let b = Matrix::from_fn(19, 11, |r, c| ((r * 5 + c * 3) as f64 * 0.7).cos());
        let bt = Matrix::from_fn(11, 19, |r, c| b[(c, r)]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&bt));
    }

    #[test]
    fn matmul_transposed_rows_are_bit_exact_with_mul_vec() {
        let a = Matrix::from_fn(4, 9, |r, c| ((r * 31 + c) as f64 * 0.11).sin());
        let b = Matrix::from_fn(21, 9, |r, c| ((r * 17 + c * 2) as f64 * 0.13).cos());
        let c = a.matmul_transposed(&b);
        for s in 0..a.rows() {
            let row: Vec<f64> = (0..a.cols()).map(|j| a[(s, j)]).collect();
            let want = b.mul_vec(&row);
            let got: Vec<f64> = (0..b.rows()).map(|o| c[(s, o)]).collect();
            assert_eq!(got, want, "row {s} diverged from mul_vec");
        }
    }

    #[test]
    fn matmul_rows_are_bit_exact_with_mul_vec_transposed() {
        let a = Matrix::from_fn(3, 14, |r, c| ((r * 7 + c * 5) as f64 * 0.19).sin());
        let b = Matrix::from_fn(14, 6, |r, c| ((r * 3 + c * 11) as f64 * 0.23).cos());
        let c = a.matmul(&b);
        for s in 0..a.rows() {
            let row: Vec<f64> = (0..a.cols()).map(|j| a[(s, j)]).collect();
            let want = b.mul_vec_transposed(&row);
            let got: Vec<f64> = (0..b.cols()).map(|o| c[(s, o)]).collect();
            assert_eq!(got, want, "row {s} diverged from mul_vec_transposed");
        }
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        Matrix::zeros(2, 3).mul_vec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
