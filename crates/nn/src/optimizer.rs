//! First-order optimizers operating on flat parameter vectors.

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Optional momentum coefficient (0 disables).
    pub momentum: f64,
}

impl Sgd {
    /// SGD with the given learning rate and no momentum.
    pub fn with_learning_rate(learning_rate: f64) -> SgdState {
        SgdState {
            config: Sgd {
                learning_rate,
                momentum: 0.0,
            },
            velocity: Vec::new(),
        }
    }
}

/// SGD with its momentum buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdState {
    config: Sgd,
    velocity: Vec<f64>,
}

impl SgdState {
    /// Creates SGD with momentum.
    pub fn with_momentum(learning_rate: f64, momentum: f64) -> Self {
        SgdState {
            config: Sgd {
                learning_rate,
                momentum,
            },
            velocity: Vec::new(),
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Adam with standard `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e−8`.
    pub fn with_learning_rate(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Bias-correction step counter (number of updates applied).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// First-moment buffer (empty until the first update).
    pub fn first_moment(&self) -> &[f64] {
        &self.m
    }

    /// Second-moment buffer (empty until the first update).
    pub fn second_moment(&self) -> &[f64] {
        &self.v
    }

    /// Rebuilds an Adam instance from checkpointed state, with standard
    /// `β₁/β₂/ε`. The moment buffers must be equal-length (both may be
    /// empty for an optimizer that never stepped).
    ///
    /// # Panics
    ///
    /// Panics if `m` and `v` differ in length.
    pub fn restore(learning_rate: f64, step: u64, m: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(m.len(), v.len(), "moment buffers must be equal length");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step,
            m,
            v,
        }
    }
}

/// A stateful optimizer that applies a gradient step to a flat parameter
/// vector. State buffers are allocated lazily on first use and keyed by
/// position, so an optimizer must be used with a single network.
pub trait Optimizer {
    /// Applies one update: `params ← params − f(grads)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`, or if the vector length
    /// changes between calls.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);
}

impl Optimizer for SgdState {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "parameter/gradient mismatch");
        if self.config.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.config.learning_rate * g;
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; params.len()];
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "optimizer reuse across networks"
        );
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.config.momentum * *v + g;
            *p -= self.config.learning_rate * *v;
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "parameter/gradient mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "optimizer reuse across networks"
        );
        self.step += 1;
        let b1t = 1.0 - self.beta1.powi(self.step as i32);
        let b2t = 1.0 - self.beta2.powi(self.step as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x − 3)² from x = 0.
    fn minimize<O: Optimizer>(opt: &mut O, iterations: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..iterations {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::with_learning_rate(0.1);
        assert!((minimize(&mut sgd, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut sgd = SgdState::with_momentum(0.02, 0.9);
        assert!((minimize(&mut sgd, 500) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::with_learning_rate(0.1);
        assert!((minimize(&mut adam, 500) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_handles_ill_scaled_gradients() {
        // Two coordinates with gradients 1000× apart: Adam normalizes.
        let mut adam = Adam::with_learning_rate(0.05);
        let mut x = [0.0f64, 0.0];
        for _ in 0..3000 {
            let g = [2000.0 * (x[0] - 1.0), 2.0 * (x[1] - 1.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 1.0).abs() < 1e-2, "x0 = {}", x[0]);
        assert!((x[1] - 1.0).abs() < 1e-2, "x1 = {}", x[1]);
    }

    #[test]
    fn restored_adam_steps_bit_exactly() {
        let mut original = Adam::with_learning_rate(0.05);
        let mut x = [0.2f64, -0.7, 1.3];
        for i in 0..10 {
            let g = [0.1 * i as f64, -0.3, 0.5 * (i as f64 - 4.0)];
            original.step(&mut x, &g);
        }
        let mut restored = Adam::restore(
            original.learning_rate(),
            original.step_count(),
            original.first_moment().to_vec(),
            original.second_moment().to_vec(),
        );
        let mut x2 = x;
        let g = [0.25, -0.5, 0.75];
        original.step(&mut x, &g);
        restored.step(&mut x2, &g);
        assert_eq!(x, x2);
    }

    #[test]
    #[should_panic]
    fn mismatched_moment_buffers_rejected() {
        let _ = Adam::restore(0.1, 1, vec![0.0], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut adam = Adam::with_learning_rate(0.1);
        adam.step(&mut [0.0, 0.0], &[1.0]);
    }

    #[test]
    #[should_panic]
    fn reuse_across_networks_panics() {
        let mut adam = Adam::with_learning_rate(0.1);
        adam.step(&mut [0.0, 0.0], &[1.0, 1.0]);
        adam.step(&mut [0.0], &[1.0]);
    }
}
