//! Property-based tests: the paper's structural theorems should hold for
//! *every* valid parameterization, not just the defaults.

use ctjam_mdp::analysis::{
    check_lemma_iii2, check_lemma_iii3, check_threshold_structure, solve_threshold,
};
use ctjam_mdp::antijam::{Action, AntijamMdp, AntijamParams, JammerMode, State};
use ctjam_mdp::solve::value_iteration::value_iteration;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = AntijamParams> {
    (
        2usize..10,      // sweep cycle
        2usize..8,       // number of Tx power levels
        1.0f64..20.0,    // Tx power lower bound
        5.0f64..25.0,    // Jx power lower bound
        0.0f64..150.0,   // L_H
        0.0f64..300.0,   // L_J
        prop::bool::ANY, // jammer mode
    )
        .prop_map(
            |(cycle, m, tx_lo, jx_lo, l_h, l_j, random_mode)| AntijamParams {
                sweep_cycle: cycle,
                tx_powers: (0..m).map(|i| tx_lo + i as f64).collect(),
                jx_powers: (0..10).map(|i| jx_lo + i as f64).collect(),
                l_h,
                l_j,
                jammer_mode: if random_mode {
                    JammerMode::RandomPower
                } else {
                    JammerMode::MaxPower
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transition_kernel_is_always_valid(params in arb_params()) {
        // Construction validates distributions; just confirm it succeeds
        // and probabilities stay in range.
        let mdp = AntijamMdp::new(params);
        let t = mdp.tabular();
        for s in 0..t.num_states() {
            for a in 0..t.num_actions() {
                let mass: f64 = t.transitions(s, a).iter().map(|tr| tr.prob).sum();
                prop_assert!((mass - 1.0).abs() < 1e-9);
                for tr in t.transitions(s, a) {
                    prop_assert!(tr.prob > 0.0 && tr.prob <= 1.0 + 1e-12);
                    prop_assert!(tr.reward <= 0.0, "rewards are losses");
                }
            }
        }
    }

    #[test]
    fn lemmas_and_threshold_hold_generally(params in arb_params()) {
        let (mdp, q, threshold) = solve_threshold(params);
        prop_assert_eq!(check_lemma_iii2(&mdp, &q), None);
        prop_assert_eq!(check_lemma_iii3(&mdp, &q), None);
        prop_assert!(check_threshold_structure(&mdp, &q));
        prop_assert!(threshold >= 1 && threshold <= mdp.sweep_cycle());
    }

    // Lemmas III.2 and III.3, re-derived from the raw Q table rather than
    // through the `check_lemma_*` helpers, across the exact knobs the
    // paper's proofs quantify over: L_J, L_H, and the sweep cycle ⌈K/m⌉.
    // Everything else stays at the paper's §IV.A.1 defaults so a failure
    // localizes to the randomized parameter.

    #[test]
    fn lemma_iii2_q_stay_non_increasing_in_n(
        l_j in 0.0f64..300.0,
        l_h in 0.0f64..150.0,
        cycle in 2usize..12,
    ) {
        let params = AntijamParams {
            l_j,
            l_h,
            sweep_cycle: cycle,
            ..AntijamParams::default()
        };
        let mdp = AntijamMdp::new(params);
        let sol = value_iteration(mdp.tabular(), 0.9, 1e-11, 100_000);
        for p in 0..mdp.num_powers() {
            let a = mdp.action_index(Action { hop: false, power: p });
            for n in 2..=mdp.num_safe_states() {
                let prev = sol.q[mdp.state_index(State::Safe(n - 1))][a];
                let cur = sol.q[mdp.state_index(State::Safe(n))][a];
                prop_assert!(
                    cur <= prev + 1e-9,
                    "Q(n, stay) increased at n={n}, power={p}: {prev} -> {cur} \
                     (L_J={l_j}, L_H={l_h}, cycle={cycle})"
                );
            }
        }
    }

    #[test]
    fn lemma_iii3_q_hop_non_decreasing_in_n(
        l_j in 0.0f64..300.0,
        l_h in 0.0f64..150.0,
        cycle in 2usize..12,
    ) {
        let params = AntijamParams {
            l_j,
            l_h,
            sweep_cycle: cycle,
            ..AntijamParams::default()
        };
        let mdp = AntijamMdp::new(params);
        let sol = value_iteration(mdp.tabular(), 0.9, 1e-11, 100_000);
        for p in 0..mdp.num_powers() {
            let a = mdp.action_index(Action { hop: true, power: p });
            for n in 2..=mdp.num_safe_states() {
                let prev = sol.q[mdp.state_index(State::Safe(n - 1))][a];
                let cur = sol.q[mdp.state_index(State::Safe(n))][a];
                prop_assert!(
                    cur >= prev - 1e-9,
                    "Q(n, hop) decreased at n={n}, power={p}: {prev} -> {cur} \
                     (L_J={l_j}, L_H={l_h}, cycle={cycle})"
                );
            }
        }
    }

    #[test]
    fn value_iteration_is_stable_under_warm_start(params in arb_params()) {
        // Banach uniqueness: starting from the converged V must stay put.
        let mdp = AntijamMdp::new(params);
        let sol = value_iteration(mdp.tabular(), 0.9, 1e-11, 100_000);
        let mut out = vec![0.0; sol.v.len()];
        let residual = mdp.tabular().bellman_backup(0.9, &sol.v, &mut out);
        prop_assert!(residual < 1e-9, "fixed point moved by {residual}");
    }

    #[test]
    fn win_probability_is_monotone_in_power(params in arb_params()) {
        let mdp = AntijamMdp::new(params);
        for i in 1..mdp.num_powers() {
            prop_assert!(mdp.win_probability(i) >= mdp.win_probability(i - 1));
        }
    }
}
