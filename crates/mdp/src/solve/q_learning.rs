//! Tabular Q-learning on a sampled model.
//!
//! The paper jumps from the exact MDP solution to a DQN because the Tx
//! cannot observe its true state; tabular Q-learning is the intermediate
//! point — model-free like the DQN, exact-state like the MDP — and serves
//! as a correctness oracle for both.

use crate::mdp::TabularMdp;
use rand::Rng;

/// Q-learning hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QLearningConfig {
    /// Discount factor `γ`.
    pub gamma: f64,
    /// Learning rate `α`.
    pub alpha: f64,
    /// Exploration rate `ε` (ε-greedy).
    pub epsilon: f64,
    /// Number of environment steps.
    pub steps: usize,
}

impl Default for QLearningConfig {
    fn default() -> Self {
        QLearningConfig {
            gamma: 0.9,
            alpha: 0.1,
            epsilon: 0.2,
            steps: 200_000,
        }
    }
}

/// Samples a transition of `mdp` from `(state, action)`.
///
/// Returns `(next_state, reward)`.
pub fn sample_transition<R: Rng + ?Sized>(
    mdp: &TabularMdp,
    state: usize,
    action: usize,
    rng: &mut R,
) -> (usize, f64) {
    let mut u: f64 = rng.gen_range(0.0..1.0);
    let transitions = mdp.transitions(state, action);
    for t in transitions {
        if u < t.prob {
            return (t.next, t.reward);
        }
        u -= t.prob;
    }
    let last = transitions.last().expect("validated mdp has transitions");
    (last.next, last.reward)
}

/// Runs ε-greedy tabular Q-learning over a continuing task on `mdp`,
/// returning the learned Q table.
///
/// # Panics
///
/// Panics if `config.gamma` is outside `[0, 1)`.
pub fn q_learning<R: Rng + ?Sized>(
    mdp: &TabularMdp,
    config: &QLearningConfig,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert!(
        (0.0..1.0).contains(&config.gamma),
        "gamma must be in [0,1), got {}",
        config.gamma
    );
    let mut q = vec![vec![0.0f64; mdp.num_actions()]; mdp.num_states()];
    let mut state = 0usize;
    for _ in 0..config.steps {
        let action = if rng.gen_bool(config.epsilon) {
            rng.gen_range(0..mdp.num_actions())
        } else {
            argmax(&q[state])
        };
        let (next, reward) = sample_transition(mdp, state, action, rng);
        let target =
            reward + config.gamma * q[next].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        q[state][action] += config.alpha * (target - q[state][action]);
        state = next;
    }
    q
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite Q values"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::solve::value_iteration::value_iteration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> TabularMdp {
        // Two states; action 1 in state 0 pays off by moving to state 1
        // where action 0 yields reward 2 and stays.
        MdpBuilder::new(2, 2)
            .transition(0, 0, 0, 1.0, 0.0)
            .transition(0, 1, 1, 1.0, 0.0)
            .transition(1, 0, 1, 1.0, 2.0)
            .transition(1, 1, 0, 1.0, 0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn learns_the_optimal_policy() {
        let mdp = chain();
        let mut rng = StdRng::seed_from_u64(1);
        let q = q_learning(&mdp, &QLearningConfig::default(), &mut rng);
        assert!(q[0][1] > q[0][0], "should hop to the rewarding state");
        assert!(q[1][0] > q[1][1], "should stay on the rewarding state");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (s, a) index the Q tables
    fn q_values_approach_value_iteration() {
        let mdp = chain();
        let exact = value_iteration(&mdp, 0.9, 1e-12, 100_000);
        let mut rng = StdRng::seed_from_u64(2);
        let config = QLearningConfig {
            steps: 400_000,
            alpha: 0.05,
            ..QLearningConfig::default()
        };
        let q = q_learning(&mdp, &config, &mut rng);
        for s in 0..2 {
            for a in 0..2 {
                assert!(
                    (q[s][a] - exact.q[s][a]).abs() < 0.5,
                    "Q[{s}][{a}] = {} vs exact {}",
                    q[s][a],
                    exact.q[s][a]
                );
            }
        }
    }

    #[test]
    fn sampling_respects_distribution() {
        let mdp = MdpBuilder::new(2, 1)
            .transition(0, 0, 0, 0.25, 0.0)
            .transition(0, 0, 1, 0.75, 1.0)
            .transition(1, 0, 1, 1.0, 0.0)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let ones = (0..n)
            .filter(|_| sample_transition(&mdp, 0, 0, &mut rng).0 == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    #[should_panic]
    fn bad_gamma_rejected() {
        let mdp = chain();
        let mut rng = StdRng::seed_from_u64(0);
        q_learning(
            &mdp,
            &QLearningConfig {
                gamma: 1.0,
                ..QLearningConfig::default()
            },
            &mut rng,
        );
    }
}
