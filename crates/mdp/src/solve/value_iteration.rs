//! Value iteration: repeated application of the Bellman optimality
//! operator (Eq. 20), which Theorem III.1 shows is a `γ`-contraction with
//! a unique fixed point `V*`.

use crate::mdp::TabularMdp;
use crate::solve::Solution;

/// Solves `mdp` by value iteration.
///
/// Iterates until the max-norm residual drops below `tolerance` or
/// `max_iterations` sweeps have run, then extracts `Q*` and the greedy
/// policy (Eq. 19).
///
/// # Panics
///
/// Panics if `gamma` is outside `[0, 1)` or `tolerance` is not positive.
///
/// # Example
///
/// ```
/// use ctjam_mdp::mdp::MdpBuilder;
/// use ctjam_mdp::solve::value_iteration::value_iteration;
///
/// // One state, two actions: reward 0 vs reward 1. The optimal value is
/// // the discounted sum of always taking the better action: 1/(1−γ).
/// let mdp = MdpBuilder::new(1, 2)
///     .transition(0, 0, 0, 1.0, 0.0)
///     .transition(0, 1, 0, 1.0, 1.0)
///     .build()
///     .unwrap();
/// let sol = value_iteration(&mdp, 0.5, 1e-12, 1_000);
/// assert!((sol.v[0] - 2.0).abs() < 1e-9);
/// assert_eq!(sol.policy, vec![1]);
/// ```
pub fn value_iteration(
    mdp: &TabularMdp,
    gamma: f64,
    tolerance: f64,
    max_iterations: usize,
) -> Solution {
    assert!(
        (0.0..1.0).contains(&gamma),
        "gamma must be in [0,1), got {gamma}"
    );
    assert!(tolerance > 0.0, "tolerance must be positive");
    let mut v = vec![0.0; mdp.num_states()];
    let mut next = vec![0.0; mdp.num_states()];
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    while iterations < max_iterations {
        residual = mdp.bellman_backup(gamma, &v, &mut next);
        std::mem::swap(&mut v, &mut next);
        iterations += 1;
        if residual < tolerance {
            break;
        }
    }
    Solution::from_values(mdp, gamma, v, iterations, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;

    /// A 3-state corridor: move right (action 1) to reach the terminal
    /// reward, or stay (action 0) for nothing.
    fn corridor() -> TabularMdp {
        MdpBuilder::new(3, 2)
            .transition(0, 0, 0, 1.0, 0.0)
            .transition(0, 1, 1, 1.0, 0.0)
            .transition(1, 0, 1, 1.0, 0.0)
            .transition(1, 1, 2, 1.0, 10.0)
            .transition(2, 0, 2, 1.0, 0.0)
            .transition(2, 1, 2, 1.0, 0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn corridor_values_and_policy() {
        let sol = value_iteration(&corridor(), 0.9, 1e-12, 10_000);
        // V(1) = 10, V(0) = 0.9·10 = 9, V(2) = 0.
        assert!((sol.v[1] - 10.0).abs() < 1e-8);
        assert!((sol.v[0] - 9.0).abs() < 1e-8);
        assert!(sol.v[2].abs() < 1e-8);
        assert_eq!(sol.policy[0], 1);
        assert_eq!(sol.policy[1], 1);
    }

    #[test]
    fn residual_below_tolerance() {
        let sol = value_iteration(&corridor(), 0.9, 1e-10, 10_000);
        assert!(sol.residual < 1e-10);
        assert!(sol.iterations < 10_000);
    }

    #[test]
    fn convergence_is_geometric() {
        // Banach: the residual sequence decays at least like γ^k.
        let mdp = corridor();
        let gamma = 0.8;
        let mut v = vec![0.0; 3];
        let mut next = vec![0.0; 3];
        let mut residuals = Vec::new();
        for _ in 0..30 {
            residuals.push(mdp.bellman_backup(gamma, &v, &mut next));
            std::mem::swap(&mut v, &mut next);
        }
        for w in residuals.windows(2) {
            if w[0] > 1e-12 {
                assert!(
                    w[1] <= gamma * w[0] + 1e-9,
                    "residual did not contract: {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn q_is_consistent_with_v() {
        let sol = value_iteration(&corridor(), 0.9, 1e-12, 10_000);
        for s in 0..3 {
            let max_q = sol.q[s].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((max_q - sol.v[s]).abs() < 1e-7, "state {s}");
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let sol = value_iteration(&corridor(), 0.99, 1e-15, 3);
        assert_eq!(sol.iterations, 3);
    }

    #[test]
    #[should_panic]
    fn gamma_one_rejected() {
        value_iteration(&corridor(), 1.0, 1e-9, 10);
    }
}
