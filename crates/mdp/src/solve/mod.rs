//! Solvers for finite MDPs.
//!
//! * [`value_iteration`] — the Banach fixed-point construction of the
//!   paper's Theorem III.1 and Appendix.
//! * [`policy_iteration`] — Howard's algorithm; agrees with value
//!   iteration and usually converges in a handful of sweeps.
//! * [`q_learning`] — model-free tabular learning against a sampled
//!   model; the stepping stone between the exact MDP solution and the
//!   paper's DQN.

pub mod policy_iteration;
pub mod q_learning;
pub mod value_iteration;

/// A solved MDP: optimal values, action values, and a greedy policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal state values `V*`.
    pub v: Vec<f64>,
    /// Optimal action values `Q*` (indexed `[state][action]`).
    pub q: Vec<Vec<f64>>,
    /// Greedy policy: `policy[s]` is the argmax action (Eq. 19).
    pub policy: Vec<usize>,
    /// Iterations (sweeps) used.
    pub iterations: usize,
    /// Final max-norm Bellman residual.
    pub residual: f64,
}

impl Solution {
    /// Constructs the greedy artifacts (`q`, `policy`) for `v` on `mdp`.
    #[allow(clippy::needless_range_loop)] // action index drives q_value
    pub(crate) fn from_values(
        mdp: &crate::mdp::TabularMdp,
        gamma: f64,
        v: Vec<f64>,
        iterations: usize,
        residual: f64,
    ) -> Self {
        let mut q = vec![vec![0.0; mdp.num_actions()]; mdp.num_states()];
        let mut policy = vec![0usize; mdp.num_states()];
        for s in 0..mdp.num_states() {
            let mut best = f64::NEG_INFINITY;
            for a in 0..mdp.num_actions() {
                let value = mdp.q_value(gamma, &v, s, a);
                q[s][a] = value;
                if value > best {
                    best = value;
                    policy[s] = a;
                }
            }
        }
        Solution {
            v,
            q,
            policy,
            iterations,
            residual,
        }
    }
}
