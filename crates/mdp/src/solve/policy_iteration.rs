//! Policy iteration (Howard's algorithm): alternate exact-ish policy
//! evaluation with greedy improvement until the policy is stable.

use crate::mdp::TabularMdp;
use crate::solve::Solution;

/// Solves `mdp` by policy iteration.
///
/// Policy evaluation runs iteratively to `eval_tolerance`; improvement is
/// the greedy step. Terminates when the policy stops changing or after
/// `max_improvements` rounds.
///
/// # Panics
///
/// Panics if `gamma` is outside `[0, 1)` or `eval_tolerance` is not
/// positive.
#[allow(clippy::needless_range_loop)] // state index drives q_value lookups
pub fn policy_iteration(
    mdp: &TabularMdp,
    gamma: f64,
    eval_tolerance: f64,
    max_improvements: usize,
) -> Solution {
    assert!(
        (0.0..1.0).contains(&gamma),
        "gamma must be in [0,1), got {gamma}"
    );
    assert!(eval_tolerance > 0.0, "tolerance must be positive");

    let mut policy = vec![0usize; mdp.num_states()];
    let mut v = vec![0.0; mdp.num_states()];
    let mut rounds = 0;

    for _ in 0..max_improvements {
        rounds += 1;
        // Policy evaluation.
        loop {
            let mut delta = 0.0f64;
            for s in 0..mdp.num_states() {
                let new = mdp.q_value(gamma, &v, s, policy[s]);
                delta = delta.max((new - v[s]).abs());
                v[s] = new;
            }
            if delta < eval_tolerance {
                break;
            }
        }
        // Greedy improvement.
        let mut stable = true;
        for s in 0..mdp.num_states() {
            let (best_a, _) = (0..mdp.num_actions())
                .map(|a| (a, mdp.q_value(gamma, &v, s, a)))
                .fold((0, f64::NEG_INFINITY), |acc, cand| {
                    if cand.1 > acc.1 {
                        cand
                    } else {
                        acc
                    }
                });
            if best_a != policy[s] {
                policy[s] = best_a;
                stable = false;
            }
        }
        if stable {
            break;
        }
    }
    let residual = {
        let mut out = vec![0.0; mdp.num_states()];
        mdp.bellman_backup(gamma, &v, &mut out)
    };
    Solution::from_values(mdp, gamma, v, rounds, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::solve::value_iteration::value_iteration;

    fn random_ish_mdp(states: usize, actions: usize, seed: u64) -> TabularMdp {
        // Deterministic pseudo-random MDP without pulling in rand here.
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut nextf = move || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((x >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        let mut b = MdpBuilder::new(states, actions);
        for s in 0..states {
            for a in 0..actions {
                // Two-target distribution.
                let t1 = (s + a + 1) % states;
                let t2 = (s * 7 + a * 3 + 2) % states;
                let p = 0.3 + 0.4 * (nextf() % 1.0).abs().min(1.0);
                let r1 = nextf() * 10.0 - 5.0;
                let r2 = nextf() * 10.0 - 5.0;
                if t1 == t2 {
                    b = b.transition(s, a, t1, 1.0, r1);
                } else {
                    b = b
                        .transition(s, a, t1, p, r1)
                        .transition(s, a, t2, 1.0 - p, r2);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn agrees_with_value_iteration() {
        for seed in 0..5u64 {
            let mdp = random_ish_mdp(8, 3, seed);
            let vi = value_iteration(&mdp, 0.9, 1e-12, 100_000);
            let pi = policy_iteration(&mdp, 0.9, 1e-12, 1_000);
            for s in 0..8 {
                assert!(
                    (vi.v[s] - pi.v[s]).abs() < 1e-6,
                    "seed {seed} state {s}: {} vs {}",
                    vi.v[s],
                    pi.v[s]
                );
            }
        }
    }

    #[test]
    fn policies_achieve_equal_value_even_when_tied() {
        let mdp = random_ish_mdp(6, 4, 99);
        let vi = value_iteration(&mdp, 0.85, 1e-12, 100_000);
        let pi = policy_iteration(&mdp, 0.85, 1e-12, 1_000);
        // Policies may differ on ties; their Q-values must match.
        for s in 0..6 {
            let qa = vi.q[s][pi.policy[s]];
            let qb = vi.q[s][vi.policy[s]];
            assert!((qa - qb).abs() < 1e-6);
        }
    }

    #[test]
    fn converges_in_few_rounds() {
        let mdp = random_ish_mdp(10, 3, 7);
        let pi = policy_iteration(&mdp, 0.9, 1e-12, 1_000);
        assert!(pi.iterations <= 20, "took {} rounds", pi.iterations);
    }
}
