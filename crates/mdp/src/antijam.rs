//! The anti-jamming MDP of paper §III.A (Eqs. 3–14).
//!
//! **States** (Eq. 3): `X = {1, …, ⌈K/m⌉−1, TJ, J}` where `n` counts
//! consecutive successful slots on the current channel, `TJ` means jammed
//! but surviving (jammer power lost the comparison), and `J` means jammed.
//!
//! **Actions** (Eq. 4): `{stay, hop} × {p₁ … p_M}` — frequency hopping
//! jointly with transmit power control.
//!
//! **Rewards** (Eq. 5): a loss `L_p` for the chosen power, plus `L_J` when
//! the next state is `J`, plus `L_H` when the action hops.
//!
//! **Transitions** (Eqs. 6–14): staying on a channel the jammer has not
//! found for `n` slots carries the sweep hazard `1/(⌈K/m⌉−n)`; hopping
//! resets the counter but can land on the jammer's current sweep position
//! with probability `(⌈K/m⌉−n−1)/((⌈K/m⌉−1)(⌈K/m⌉−n))`; from `TJ`/`J`
//! hopping always escapes (Eq. 14) while staying keeps the power duel
//! (Eqs. 12–13).

use crate::mdp::{MdpBuilder, TabularMdp};
use std::fmt;

/// How the jammer selects its power each slot (paper §II.C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JammerMode {
    /// High-performance mode: always the largest power level.
    #[default]
    MaxPower,
    /// Hidden mode: uniformly random power level.
    RandomPower,
}

/// Parameters of the anti-jamming MDP.
#[derive(Debug, Clone, PartialEq)]
pub struct AntijamParams {
    /// Sweep cycle `⌈K/m⌉`: slots the jammer needs to scan all channels.
    pub sweep_cycle: usize,
    /// Tx power levels; each value is both the power and its loss
    /// `L_{p_i}` (paper §IV.A.1 uses `L^T_{p_i} ∈ [6, 15]`).
    pub tx_powers: Vec<f64>,
    /// Jammer power levels (`L^J_{p_i} ∈ [11, 20]` in the paper).
    pub jx_powers: Vec<f64>,
    /// Loss of a frequency hop, `L_H`.
    pub l_h: f64,
    /// Loss of being successfully jammed, `L_J`.
    pub l_j: f64,
    /// Jammer power-selection mode.
    pub jammer_mode: JammerMode,
}

impl Default for AntijamParams {
    /// The paper's simulation setting: sweep cycle 4, ten Tx levels
    /// `6..=15`, ten Jx levels `11..=20`, `L_H = 50`, `L_J = 100`.
    fn default() -> Self {
        AntijamParams {
            sweep_cycle: 4,
            tx_powers: (6..=15).map(f64::from).collect(),
            jx_powers: (11..=20).map(f64::from).collect(),
            l_h: 50.0,
            l_j: 100.0,
            jammer_mode: JammerMode::MaxPower,
        }
    }
}

impl AntijamParams {
    /// Shifts the Tx power range to `[lower, lower + count − 1]` — the
    /// Fig. 6(d)/7(g,h)/8(g,h) sweep over the lower bound of `L_{p_i}`.
    #[must_use]
    pub fn with_tx_lower_bound(mut self, lower: i64) -> Self {
        let count = self.tx_powers.len() as i64;
        self.tx_powers = (lower..lower + count).map(|v| v as f64).collect();
        self
    }
}

/// A state of the anti-jamming MDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// `n` consecutive successful slots on the current channel
    /// (`1 ≤ n ≤ ⌈K/m⌉ − 1`).
    Safe(usize),
    /// Jammed unsuccessfully (`TJ`): the Tx power won the duel.
    JammedUnsuccessfully,
    /// Jammed (`J`): transmission lost.
    Jammed,
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            State::Safe(n) => write!(f, "n={n}"),
            State::JammedUnsuccessfully => write!(f, "TJ"),
            State::Jammed => write!(f, "J"),
        }
    }
}

/// An action of the anti-jamming MDP: hop or stay, with a power level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    /// `true` = hop to a new channel, `false` = stay.
    pub hop: bool,
    /// Index into [`AntijamParams::tx_powers`].
    pub power: usize,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, p{})", if self.hop { "h" } else { "s" }, self.power)
    }
}

/// The anti-jamming MDP: parameters plus the validated tabular form.
#[derive(Debug, Clone)]
pub struct AntijamMdp {
    params: AntijamParams,
    tabular: TabularMdp,
}

impl AntijamMdp {
    /// Builds the MDP from parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sweep_cycle < 2`, either power list is empty, or the
    /// losses are negative — such instances are outside the paper's model.
    pub fn new(params: AntijamParams) -> Self {
        assert!(params.sweep_cycle >= 2, "sweep cycle must be at least 2");
        assert!(
            !params.tx_powers.is_empty(),
            "need at least one Tx power level"
        );
        assert!(
            !params.jx_powers.is_empty(),
            "need at least one Jx power level"
        );
        assert!(
            params.l_h >= 0.0 && params.l_j >= 0.0,
            "losses must be nonnegative"
        );

        let tabular = build_tabular(&params);
        AntijamMdp { params, tabular }
    }

    /// The parameters this instance was built from.
    pub fn params(&self) -> &AntijamParams {
        &self.params
    }

    /// The validated tabular MDP (feed this to the solvers).
    pub fn tabular(&self) -> &TabularMdp {
        &self.tabular
    }

    /// Sweep cycle `⌈K/m⌉`.
    pub fn sweep_cycle(&self) -> usize {
        self.params.sweep_cycle
    }

    /// Number of distinct `n` states (`⌈K/m⌉ − 1`).
    pub fn num_safe_states(&self) -> usize {
        self.params.sweep_cycle - 1
    }

    /// Number of power levels `M`.
    pub fn num_powers(&self) -> usize {
        self.params.tx_powers.len()
    }

    /// Probability that Tx power level `i` survives a jamming attempt —
    /// the `P(p^T_i > τ)` of Eqs. (7)–(13), with the paper's convention
    /// that the transmission succeeds when `L^T ≥ L^J`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn win_probability(&self, i: usize) -> f64 {
        let tx = self.params.tx_powers[i];
        match self.params.jammer_mode {
            JammerMode::MaxPower => {
                let tau = self
                    .params
                    .jx_powers
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                if tx >= tau {
                    1.0
                } else {
                    0.0
                }
            }
            JammerMode::RandomPower => {
                let wins = self.params.jx_powers.iter().filter(|&&j| tx >= j).count();
                wins as f64 / self.params.jx_powers.len() as f64
            }
        }
    }

    /// Maps a [`State`] to its tabular index.
    ///
    /// # Panics
    ///
    /// Panics for `Safe(n)` with `n` outside `1..=⌈K/m⌉−1`.
    pub fn state_index(&self, state: State) -> usize {
        match state {
            State::Safe(n) => {
                assert!(
                    (1..=self.num_safe_states()).contains(&n),
                    "safe state n={n} out of range 1..={}",
                    self.num_safe_states()
                );
                n - 1
            }
            State::JammedUnsuccessfully => self.num_safe_states(),
            State::Jammed => self.num_safe_states() + 1,
        }
    }

    /// Inverse of [`AntijamMdp::state_index`].
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn state_of(&self, index: usize) -> State {
        let safe = self.num_safe_states();
        if index < safe {
            State::Safe(index + 1)
        } else if index == safe {
            State::JammedUnsuccessfully
        } else if index == safe + 1 {
            State::Jammed
        } else {
            panic!("state index {index} out of range");
        }
    }

    /// Maps an [`Action`] to its tabular index
    /// (`hop·M + power`, `M` = number of power levels).
    ///
    /// # Panics
    ///
    /// Panics if the power index is out of range.
    pub fn action_index(&self, action: Action) -> usize {
        assert!(action.power < self.num_powers(), "power index out of range");
        usize::from(action.hop) * self.num_powers() + action.power
    }

    /// Inverse of [`AntijamMdp::action_index`].
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn action_of(&self, index: usize) -> Action {
        assert!(
            index < 2 * self.num_powers(),
            "action index {index} out of range"
        );
        Action {
            hop: index >= self.num_powers(),
            power: index % self.num_powers(),
        }
    }

    /// Expected immediate reward `E[U(x, a)]` — Eq. (23)/(24) closed form,
    /// via the tabular expectation.
    pub fn expected_reward(&self, state: State, action: Action) -> f64 {
        self.tabular
            .expected_reward(self.state_index(state), self.action_index(action))
    }
}

/// Builds the tabular transition/reward structure per Eqs. (5)–(14).
fn build_tabular(params: &AntijamParams) -> TabularMdp {
    let n_cap = params.sweep_cycle; // ⌈K/m⌉, written N below.
    let safe = n_cap - 1;
    let num_states = safe + 2;
    let m = params.tx_powers.len();
    let num_actions = 2 * m;
    let tj = safe;
    let j = safe + 1;

    let win = |i: usize| -> f64 {
        let tx = params.tx_powers[i];
        match params.jammer_mode {
            JammerMode::MaxPower => {
                let tau = params
                    .jx_powers
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                if tx >= tau {
                    1.0
                } else {
                    0.0
                }
            }
            JammerMode::RandomPower => {
                params.jx_powers.iter().filter(|&&jx| tx >= jx).count() as f64
                    / params.jx_powers.len() as f64
            }
        }
    };

    let mut b = MdpBuilder::new(num_states, num_actions);
    for i in 0..m {
        let l_p = params.tx_powers[i];
        let p_win = win(i);
        let stay = i;
        let hop = m + i;

        // Safe states n = 1..=N−1 (Eqs. 6–11).
        for n in 1..=safe {
            let s = n - 1;
            let hazard = 1.0 / (n_cap - n) as f64; // 1/(⌈K/m⌉ − n)

            // (s, p_i): Eq. 6 survival, Eqs. 7–8 jam split.
            let survive = 1.0 - hazard;
            if n < safe {
                b = b.transition(s, stay, n, survive, -l_p); // to n+1
            } else if survive > 0.0 {
                // n = N−1: survival probability is exactly 0 by Eq. 6.
                unreachable!("survival mass must vanish at n = N-1");
            }
            b = b.transition(s, stay, tj, hazard * p_win, -l_p).transition(
                s,
                stay,
                j,
                hazard * (1.0 - p_win),
                -l_p - params.l_j,
            );

            // (h, p_i): Eqs. 9–11 — hopping can land on the sweep.
            let land_on_jammer = (n_cap - n - 1) as f64 / (((n_cap - 1) * (n_cap - n)) as f64);
            b = b
                .transition(s, hop, 0, 1.0 - land_on_jammer, -l_p - params.l_h)
                .transition(s, hop, tj, land_on_jammer * p_win, -l_p - params.l_h)
                .transition(
                    s,
                    hop,
                    j,
                    land_on_jammer * (1.0 - p_win),
                    -l_p - params.l_h - params.l_j,
                );
        }

        // TJ and J (Eqs. 12–14): the jammer has locked on.
        for &s in &[tj, j] {
            b = b
                .transition(s, stay, tj, p_win, -l_p)
                .transition(s, stay, j, 1.0 - p_win, -l_p - params.l_j)
                .transition(s, hop, 0, 1.0, -l_p - params.l_h);
        }
    }
    b.build().expect("anti-jamming MDP construction is total")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_mdp() -> AntijamMdp {
        AntijamMdp::new(AntijamParams::default())
    }

    #[test]
    fn state_space_matches_eq_3() {
        let mdp = default_mdp();
        // ⌈K/m⌉ = 4 → states {1, 2, 3, TJ, J}.
        assert_eq!(mdp.tabular().num_states(), 5);
        assert_eq!(mdp.num_safe_states(), 3);
        assert_eq!(mdp.state_of(0), State::Safe(1));
        assert_eq!(mdp.state_of(2), State::Safe(3));
        assert_eq!(mdp.state_of(3), State::JammedUnsuccessfully);
        assert_eq!(mdp.state_of(4), State::Jammed);
    }

    #[test]
    fn action_space_matches_eq_4() {
        let mdp = default_mdp();
        assert_eq!(mdp.tabular().num_actions(), 20);
        for idx in 0..20 {
            let a = mdp.action_of(idx);
            assert_eq!(mdp.action_index(a), idx);
        }
        assert!(!mdp.action_of(0).hop);
        assert!(mdp.action_of(10).hop);
    }

    #[test]
    fn state_index_roundtrip() {
        let mdp = default_mdp();
        for idx in 0..5 {
            assert_eq!(mdp.state_index(mdp.state_of(idx)), idx);
        }
    }

    #[test]
    fn transition_probabilities_match_eq_6_to_8() {
        let mdp = default_mdp();
        let t = mdp.tabular();
        // From n=1 staying: survive to n=2 with 1 − 1/(4−1) = 2/3.
        let s = mdp.state_index(State::Safe(1));
        let a = mdp.action_index(Action {
            hop: false,
            power: 0,
        });
        let transitions = t.transitions(s, a);
        let survive = transitions
            .iter()
            .find(|tr| tr.next == mdp.state_index(State::Safe(2)))
            .unwrap();
        assert!((survive.prob - 2.0 / 3.0).abs() < 1e-12);
        // Max-power jammer, weakest Tx power: always jammed on hit.
        let jammed = transitions
            .iter()
            .find(|tr| tr.next == mdp.state_index(State::Jammed))
            .unwrap();
        assert!((jammed.prob - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hop_landing_probability_matches_eq_9() {
        let mdp = default_mdp();
        let t = mdp.tabular();
        // From n=1 hopping: land on jammer with (4−1−1)/((4−1)(4−1)) = 2/9.
        let s = mdp.state_index(State::Safe(1));
        let a = mdp.action_index(Action {
            hop: true,
            power: 0,
        });
        let to_one: f64 = t
            .transitions(s, a)
            .iter()
            .filter(|tr| tr.next == mdp.state_index(State::Safe(1)))
            .map(|tr| tr.prob)
            .sum();
        assert!((to_one - (1.0 - 2.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn hop_from_jammed_always_escapes_eq_14() {
        let mdp = default_mdp();
        let t = mdp.tabular();
        for state in [State::JammedUnsuccessfully, State::Jammed] {
            let s = mdp.state_index(state);
            for p in 0..mdp.num_powers() {
                let a = mdp.action_index(Action {
                    hop: true,
                    power: p,
                });
                let transitions = t.transitions(s, a);
                assert_eq!(transitions.len(), 1);
                assert_eq!(transitions[0].next, mdp.state_index(State::Safe(1)));
                assert!((transitions[0].prob - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn win_probability_max_mode() {
        let mdp = default_mdp();
        // Tx max is 15, Jx max is 20: the Tx can never win.
        for i in 0..mdp.num_powers() {
            assert_eq!(mdp.win_probability(i), 0.0);
        }
        // Raise the Tx range so its top level matches the Jx max.
        let strong = AntijamMdp::new(AntijamParams::default().with_tx_lower_bound(11));
        assert_eq!(strong.win_probability(9), 1.0); // 20 ≥ 20
        assert_eq!(strong.win_probability(8), 0.0); // 19 < 20
    }

    #[test]
    fn win_probability_random_mode() {
        let params = AntijamParams {
            jammer_mode: JammerMode::RandomPower,
            ..AntijamParams::default()
        };
        let mdp = AntijamMdp::new(params);
        // Tx power 15 beats Jx powers 11..=15 → 5 of 10.
        assert!((mdp.win_probability(9) - 0.5).abs() < 1e-12);
        // Tx power 6 beats none.
        assert_eq!(mdp.win_probability(0), 0.0);
    }

    #[test]
    fn rewards_match_eq_5() {
        let mdp = default_mdp();
        let t = mdp.tabular();
        let s = mdp.state_index(State::Jammed);
        let p = 3;
        let l_p = mdp.params().tx_powers[p];
        // Stay from J with p_win = 0: goes to J with reward −L_p − L_J.
        let a = mdp.action_index(Action {
            hop: false,
            power: p,
        });
        let tr = &t.transitions(s, a)[0];
        assert_eq!(tr.next, mdp.state_index(State::Jammed));
        assert!((tr.reward - (-l_p - 100.0)).abs() < 1e-12);
        // Hop from J: reward −L_p − L_H.
        let a = mdp.action_index(Action {
            hop: true,
            power: p,
        });
        let tr = &t.transitions(s, a)[0];
        assert!((tr.reward - (-l_p - 50.0)).abs() < 1e-12);
    }

    #[test]
    fn expected_reward_matches_eq_23() {
        // E[U(n, (s, p))] = −L_p − L_J · P(lose)/(⌈K/m⌉ − n).
        let mdp = default_mdp();
        for n in 1..=3usize {
            for p in 0..10 {
                let expect = -mdp.params().tx_powers[p]
                    - 100.0 * (1.0 - mdp.win_probability(p)) / (4 - n) as f64;
                let got = mdp.expected_reward(
                    State::Safe(n),
                    Action {
                        hop: false,
                        power: p,
                    },
                );
                assert!(
                    (got - expect).abs() < 1e-9,
                    "n={n} p={p}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn expected_reward_matches_eq_24() {
        // E[U(n, (h, p))] = −L_p − L_H − L_J·P(lose)·(N−n−1)/((N−1)(N−n)).
        let mdp = default_mdp();
        for n in 1..=3usize {
            for p in 0..10 {
                let land = (4 - n - 1) as f64 / ((3 * (4 - n)) as f64);
                let expect = -mdp.params().tx_powers[p]
                    - 50.0
                    - 100.0 * (1.0 - mdp.win_probability(p)) * land;
                let got = mdp.expected_reward(
                    State::Safe(n),
                    Action {
                        hop: true,
                        power: p,
                    },
                );
                assert!((got - expect).abs() < 1e-9, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn larger_sweep_cycles_build() {
        for cycle in 2..=16 {
            let mdp = AntijamMdp::new(AntijamParams {
                sweep_cycle: cycle,
                ..AntijamParams::default()
            });
            assert_eq!(mdp.tabular().num_states(), cycle + 1);
        }
    }

    #[test]
    fn tx_lower_bound_shifts_range() {
        let p = AntijamParams::default().with_tx_lower_bound(12);
        assert_eq!(p.tx_powers.first().copied(), Some(12.0));
        assert_eq!(p.tx_powers.last().copied(), Some(21.0));
        assert_eq!(p.tx_powers.len(), 10);
    }

    #[test]
    #[should_panic]
    fn sweep_cycle_one_rejected() {
        AntijamMdp::new(AntijamParams {
            sweep_cycle: 1,
            ..AntijamParams::default()
        });
    }
}
