//! A validated tabular finite MDP.

use std::fmt;

/// Error from building an invalid MDP.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// A transition distribution does not sum to 1.
    BadDistribution {
        /// State index.
        state: usize,
        /// Action index.
        action: usize,
        /// Actual probability mass.
        mass: f64,
    },
    /// A transition references a state outside the MDP.
    BadTarget {
        /// State index.
        state: usize,
        /// Action index.
        action: usize,
        /// Offending target.
        target: usize,
    },
    /// A probability is negative or non-finite.
    BadProbability {
        /// State index.
        state: usize,
        /// Action index.
        action: usize,
        /// Offending probability.
        prob: f64,
    },
    /// The MDP has no states or no actions.
    Empty,
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::BadDistribution {
                state,
                action,
                mass,
            } => write!(
                f,
                "transition distribution for state {state}, action {action} sums to {mass}, not 1"
            ),
            MdpError::BadTarget {
                state,
                action,
                target,
            } => write!(
                f,
                "transition from state {state}, action {action} targets out-of-range state {target}"
            ),
            MdpError::BadProbability {
                state,
                action,
                prob,
            } => write!(
                f,
                "transition from state {state}, action {action} has invalid probability {prob}"
            ),
            MdpError::Empty => write!(f, "an mdp needs at least one state and one action"),
        }
    }
}

impl std::error::Error for MdpError {}

/// One transition: `(next_state, probability, reward)`.
///
/// Rewards are attached to transitions, matching the paper's
/// `U(x, a, x′)` formulation (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Destination state index.
    pub next: usize,
    /// Transition probability.
    pub prob: f64,
    /// Immediate reward `U(x, a, x′)`.
    pub reward: f64,
}

/// A finite MDP stored as explicit transition lists.
///
/// Construct via [`MdpBuilder`], which validates that every
/// `(state, action)` pair carries a proper probability distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct TabularMdp {
    num_states: usize,
    num_actions: usize,
    /// `transitions[s][a]` lists the outgoing transitions.
    transitions: Vec<Vec<Vec<Transition>>>,
}

impl TabularMdp {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Outgoing transitions of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn transitions(&self, state: usize, action: usize) -> &[Transition] {
        &self.transitions[state][action]
    }

    /// Expected immediate reward `E[U(x, a, ·)]`.
    pub fn expected_reward(&self, state: usize, action: usize) -> f64 {
        self.transitions[state][action]
            .iter()
            .map(|t| t.prob * t.reward)
            .sum()
    }

    /// One application of the Bellman optimality operator to `v`,
    /// writing into `out` and returning the max-norm change.
    ///
    /// This is the contraction mapping of the paper's Theorem III.1 /
    /// Appendix proof: repeated application converges to the unique `V*`.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths differ from the state count.
    pub fn bellman_backup(&self, gamma: f64, v: &[f64], out: &mut [f64]) -> f64 {
        assert_eq!(v.len(), self.num_states);
        assert_eq!(out.len(), self.num_states);
        let mut delta = 0.0f64;
        for s in 0..self.num_states {
            let best = (0..self.num_actions)
                .map(|a| self.q_value(gamma, v, s, a))
                .fold(f64::NEG_INFINITY, f64::max);
            delta = delta.max((best - v[s]).abs());
            out[s] = best;
        }
        delta
    }

    /// The action value `Q(s, a)` under the state values `v`.
    pub fn q_value(&self, gamma: f64, v: &[f64], s: usize, a: usize) -> f64 {
        self.transitions[s][a]
            .iter()
            .map(|t| t.prob * (t.reward + gamma * v[t.next]))
            .sum()
    }
}

/// Incremental builder for [`TabularMdp`].
///
/// # Example
///
/// ```
/// use ctjam_mdp::mdp::MdpBuilder;
///
/// // A two-state chain: action 0 stays (reward 0), action 1 flips
/// // (reward 1 when reaching state 1).
/// let mdp = MdpBuilder::new(2, 2)
///     .transition(0, 0, 0, 1.0, 0.0)
///     .transition(0, 1, 1, 1.0, 1.0)
///     .transition(1, 0, 1, 1.0, 0.0)
///     .transition(1, 1, 0, 1.0, 0.0)
///     .build()?;
/// assert_eq!(mdp.num_states(), 2);
/// # Ok::<(), ctjam_mdp::mdp::MdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    num_states: usize,
    num_actions: usize,
    transitions: Vec<Vec<Vec<Transition>>>,
}

impl MdpBuilder {
    /// Starts a builder for an MDP of the given size.
    pub fn new(num_states: usize, num_actions: usize) -> Self {
        MdpBuilder {
            num_states,
            num_actions,
            transitions: vec![vec![Vec::new(); num_actions]; num_states],
        }
    }

    /// Adds a transition `(state, action) → next` with probability `prob`
    /// and reward `reward`. Zero-probability entries are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range (a builder-usage bug,
    /// unlike the data errors reported by [`MdpBuilder::build`]).
    #[must_use]
    pub fn transition(
        mut self,
        state: usize,
        action: usize,
        next: usize,
        prob: f64,
        reward: f64,
    ) -> Self {
        assert!(state < self.num_states, "state {state} out of range");
        assert!(action < self.num_actions, "action {action} out of range");
        if prob != 0.0 {
            self.transitions[state][action].push(Transition { next, prob, reward });
        }
        self
    }

    /// Validates and produces the MDP.
    ///
    /// # Errors
    ///
    /// Returns an [`MdpError`] when any `(state, action)` distribution is
    /// missing mass, targets an unknown state, or carries an invalid
    /// probability.
    pub fn build(self) -> Result<TabularMdp, MdpError> {
        if self.num_states == 0 || self.num_actions == 0 {
            return Err(MdpError::Empty);
        }
        for (s, per_action) in self.transitions.iter().enumerate() {
            for (a, list) in per_action.iter().enumerate() {
                let mut mass = 0.0;
                for t in list {
                    if !(t.prob.is_finite() && t.prob >= 0.0) {
                        return Err(MdpError::BadProbability {
                            state: s,
                            action: a,
                            prob: t.prob,
                        });
                    }
                    if t.next >= self.num_states {
                        return Err(MdpError::BadTarget {
                            state: s,
                            action: a,
                            target: t.next,
                        });
                    }
                    mass += t.prob;
                }
                if (mass - 1.0).abs() > 1e-9 {
                    return Err(MdpError::BadDistribution {
                        state: s,
                        action: a,
                        mass,
                    });
                }
            }
        }
        Ok(TabularMdp {
            num_states: self.num_states,
            num_actions: self.num_actions,
            transitions: self.transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> TabularMdp {
        MdpBuilder::new(2, 2)
            .transition(0, 0, 0, 1.0, 0.0)
            .transition(0, 1, 1, 1.0, 1.0)
            .transition(1, 0, 1, 1.0, 0.0)
            .transition(1, 1, 0, 1.0, 0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_accepts_valid_mdp() {
        let mdp = two_state();
        assert_eq!(mdp.num_states(), 2);
        assert_eq!(mdp.num_actions(), 2);
        assert_eq!(mdp.transitions(0, 1).len(), 1);
    }

    #[test]
    fn builder_rejects_underfull_distribution() {
        let err = MdpBuilder::new(1, 1)
            .transition(0, 0, 0, 0.5, 0.0)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, MdpError::BadDistribution { mass, .. } if (mass - 0.5).abs() < 1e-12)
        );
    }

    #[test]
    fn builder_rejects_missing_distribution() {
        let err = MdpBuilder::new(2, 1)
            .transition(0, 0, 0, 1.0, 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, MdpError::BadDistribution { state: 1, .. }));
    }

    #[test]
    fn builder_rejects_bad_target() {
        let err = MdpBuilder::new(1, 1)
            .transition(0, 0, 5, 1.0, 0.0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            MdpError::BadTarget {
                state: 0,
                action: 0,
                target: 5
            }
        );
    }

    #[test]
    fn builder_rejects_negative_probability() {
        let err = MdpBuilder::new(1, 1)
            .transition(0, 0, 0, -0.2, 0.0)
            .transition(0, 0, 0, 1.2, 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, MdpError::BadProbability { .. }));
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(MdpBuilder::new(0, 3).build().unwrap_err(), MdpError::Empty);
        assert_eq!(MdpBuilder::new(3, 0).build().unwrap_err(), MdpError::Empty);
    }

    #[test]
    fn expected_reward() {
        let mdp = MdpBuilder::new(2, 1)
            .transition(0, 0, 0, 0.25, 4.0)
            .transition(0, 0, 1, 0.75, 0.0)
            .transition(1, 0, 1, 1.0, 0.0)
            .build()
            .unwrap();
        assert!((mdp.expected_reward(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bellman_backup_is_a_gamma_contraction() {
        // Banach/Theorem III.1: ‖T(v1) − T(v2)‖∞ ≤ γ‖v1 − v2‖∞.
        let mdp = two_state();
        let gamma = 0.9;
        let v1 = vec![3.0, -2.0];
        let v2 = vec![-1.0, 5.0];
        let mut t1 = vec![0.0; 2];
        let mut t2 = vec![0.0; 2];
        mdp.bellman_backup(gamma, &v1, &mut t1);
        mdp.bellman_backup(gamma, &v2, &mut t2);
        let before = v1
            .iter()
            .zip(&v2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let after = t1
            .iter()
            .zip(&t2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            after <= gamma * before + 1e-12,
            "{after} > {gamma} * {before}"
        );
    }

    #[test]
    fn q_value_matches_hand_computation() {
        let mdp = two_state();
        let v = vec![10.0, 20.0];
        // Q(0, 1) = 1 + 0.9 * 20 = 19.
        assert!((mdp.q_value(0.9, &v, 0, 1) - 19.0).abs() < 1e-12);
    }
}
