//! Threshold-policy analysis of the solved anti-jamming MDP.
//!
//! Verifies, on concrete solved instances, the paper's structural results:
//!
//! * **Lemma III.2** — `Q*(n, (stay, pᵢ))` decreases in `n`.
//! * **Lemma III.3** — `Q*(n, (hop, pᵢ))` increases in `n`.
//! * **Theorem III.4** — the optimal policy is a threshold in `n`.
//! * **Theorem III.5** — the threshold `n*` decreases in `L_J` and
//!   increases in `L_H` and in `⌈K/m⌉`.

use crate::antijam::{Action, AntijamMdp, AntijamParams, State};
use crate::solve::value_iteration::value_iteration;

/// Default solver settings used by the analysis helpers.
const GAMMA: f64 = 0.9;
const TOL: f64 = 1e-10;
const MAX_ITERS: usize = 100_000;

/// Extracts the hop threshold `n*` from a solved Q table: the smallest
/// `n` at which hopping (at its best power) beats staying (at its best
/// power). Returns `⌈K/m⌉` when staying is preferred everywhere
/// (the paper's convention in Theorem III.4).
pub fn threshold_of(mdp: &AntijamMdp, q: &[Vec<f64>]) -> usize {
    for n in 1..=mdp.num_safe_states() {
        let s = mdp.state_index(State::Safe(n));
        if best_hop(mdp, &q[s]) > best_stay(mdp, &q[s]) {
            return n;
        }
    }
    mdp.sweep_cycle()
}

/// Best stay-action value at a state row of the Q table.
pub fn best_stay(mdp: &AntijamMdp, q_row: &[f64]) -> f64 {
    (0..mdp.num_powers())
        .map(|p| {
            q_row[mdp.action_index(Action {
                hop: false,
                power: p,
            })]
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Best hop-action value at a state row of the Q table.
pub fn best_hop(mdp: &AntijamMdp, q_row: &[f64]) -> f64 {
    (0..mdp.num_powers())
        .map(|p| {
            q_row[mdp.action_index(Action {
                hop: true,
                power: p,
            })]
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Solves an instance and returns `(mdp, q, threshold)`.
pub fn solve_threshold(params: AntijamParams) -> (AntijamMdp, Vec<Vec<f64>>, usize) {
    let mdp = AntijamMdp::new(params);
    let sol = value_iteration(mdp.tabular(), GAMMA, TOL, MAX_ITERS);
    let threshold = threshold_of(&mdp, &sol.q);
    (mdp, sol.q, threshold)
}

/// Checks Lemma III.2 on a solved instance: for every power level,
/// `Q*(n, (stay, p))` is non-increasing in `n`. Returns the first
/// violation as `(power, n)` or `None` when the lemma holds.
pub fn check_lemma_iii2(mdp: &AntijamMdp, q: &[Vec<f64>]) -> Option<(usize, usize)> {
    for p in 0..mdp.num_powers() {
        let a = mdp.action_index(Action {
            hop: false,
            power: p,
        });
        for n in 2..=mdp.num_safe_states() {
            let prev = q[mdp.state_index(State::Safe(n - 1))][a];
            let cur = q[mdp.state_index(State::Safe(n))][a];
            if cur > prev + 1e-9 {
                return Some((p, n));
            }
        }
    }
    None
}

/// Checks Lemma III.3 on a solved instance: for every power level,
/// `Q*(n, (hop, p))` is non-decreasing in `n`. Returns the first
/// violation as `(power, n)` or `None` when the lemma holds.
pub fn check_lemma_iii3(mdp: &AntijamMdp, q: &[Vec<f64>]) -> Option<(usize, usize)> {
    for p in 0..mdp.num_powers() {
        let a = mdp.action_index(Action {
            hop: true,
            power: p,
        });
        for n in 2..=mdp.num_safe_states() {
            let prev = q[mdp.state_index(State::Safe(n - 1))][a];
            let cur = q[mdp.state_index(State::Safe(n))][a];
            if cur < prev - 1e-9 {
                return Some((p, n));
            }
        }
    }
    None
}

/// Checks Theorem III.4 on a solved instance: once hopping is preferred
/// at some `n`, it stays preferred for every larger `n`. Returns `true`
/// when the policy has the threshold structure.
pub fn check_threshold_structure(mdp: &AntijamMdp, q: &[Vec<f64>]) -> bool {
    let mut hopping = false;
    for n in 1..=mdp.num_safe_states() {
        let s = mdp.state_index(State::Safe(n));
        let prefer_hop = best_hop(mdp, &q[s]) > best_stay(mdp, &q[s]);
        if hopping && !prefer_hop {
            return false;
        }
        hopping = prefer_hop;
    }
    true
}

/// Theorem III.5 sweep: thresholds for a range of `L_J` values
/// (everything else at `base`). The paper predicts a non-increasing
/// sequence.
pub fn thresholds_vs_lj(base: &AntijamParams, lj_values: &[f64]) -> Vec<usize> {
    lj_values
        .iter()
        .map(|&l_j| {
            solve_threshold(AntijamParams {
                l_j,
                ..base.clone()
            })
            .2
        })
        .collect()
}

/// Theorem III.5 sweep over `L_H` (paper predicts non-decreasing).
pub fn thresholds_vs_lh(base: &AntijamParams, lh_values: &[f64]) -> Vec<usize> {
    lh_values
        .iter()
        .map(|&l_h| {
            solve_threshold(AntijamParams {
                l_h,
                ..base.clone()
            })
            .2
        })
        .collect()
}

/// Theorem III.5 sweep over `⌈K/m⌉` (paper predicts non-decreasing).
pub fn thresholds_vs_sweep_cycle(base: &AntijamParams, cycles: &[usize]) -> Vec<usize> {
    cycles
        .iter()
        .map(|&sweep_cycle| {
            solve_threshold(AntijamParams {
                sweep_cycle,
                ..base.clone()
            })
            .2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antijam::JammerMode;

    fn base() -> AntijamParams {
        AntijamParams {
            jammer_mode: JammerMode::RandomPower,
            ..AntijamParams::default()
        }
    }

    #[test]
    fn lemmas_hold_on_default_instances() {
        for mode in [JammerMode::MaxPower, JammerMode::RandomPower] {
            let params = AntijamParams {
                jammer_mode: mode,
                ..AntijamParams::default()
            };
            let (mdp, q, _) = solve_threshold(params);
            assert_eq!(check_lemma_iii2(&mdp, &q), None, "{mode:?}");
            assert_eq!(check_lemma_iii3(&mdp, &q), None, "{mode:?}");
        }
    }

    #[test]
    fn lemmas_hold_across_sweep_cycles() {
        for cycle in [2usize, 3, 4, 8, 16] {
            let (mdp, q, _) = solve_threshold(AntijamParams {
                sweep_cycle: cycle,
                ..base()
            });
            assert_eq!(check_lemma_iii2(&mdp, &q), None, "cycle {cycle}");
            assert_eq!(check_lemma_iii3(&mdp, &q), None, "cycle {cycle}");
        }
    }

    #[test]
    fn optimal_policy_is_threshold_everywhere_we_look() {
        for l_j in [10.0, 40.0, 70.0, 100.0, 200.0] {
            for l_h in [0.0, 25.0, 50.0, 100.0] {
                let (mdp, q, _) = solve_threshold(AntijamParams { l_j, l_h, ..base() });
                assert!(
                    check_threshold_structure(&mdp, &q),
                    "not a threshold policy at L_J={l_j}, L_H={l_h}"
                );
            }
        }
    }

    #[test]
    fn threshold_decreases_with_lj() {
        let ts = thresholds_vs_lj(&base(), &[10.0, 30.0, 60.0, 100.0, 300.0, 1000.0]);
        for w in ts.windows(2) {
            assert!(w[1] <= w[0], "threshold rose with L_J: {ts:?}");
        }
        // And the effect is real: very small L_J tolerates jamming, very
        // large L_J hops immediately.
        assert!(ts.first().unwrap() > ts.last().unwrap(), "{ts:?}");
    }

    #[test]
    fn threshold_increases_with_lh() {
        let ts = thresholds_vs_lh(&base(), &[0.0, 10.0, 50.0, 150.0, 400.0]);
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "threshold fell with L_H: {ts:?}");
        }
        assert!(ts.last().unwrap() > ts.first().unwrap(), "{ts:?}");
    }

    #[test]
    fn threshold_increases_with_sweep_cycle() {
        let ts = thresholds_vs_sweep_cycle(&base(), &[2, 4, 8, 16]);
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "threshold fell with sweep cycle: {ts:?}");
        }
    }

    #[test]
    fn extreme_cases_of_theorem_iii4() {
        // Huge L_H: never worth hopping → n* = ⌈K/m⌉ (the "stay" extreme).
        let (_, _, t) = solve_threshold(AntijamParams {
            l_h: 1.0e6,
            ..base()
        });
        assert_eq!(t, 4);
        // Zero L_H and huge L_J: hop immediately → n* = 1.
        let (_, _, t) = solve_threshold(AntijamParams {
            l_h: 0.0,
            l_j: 1.0e5,
            ..base()
        });
        assert_eq!(t, 1);
    }
}
