//! Markov decision processes for the CTJam suite.
//!
//! Implements the paper's §III model and analysis:
//!
//! * [`mdp`] — a validated tabular finite MDP ([`mdp::TabularMdp`]) with a
//!   builder.
//! * [`solve`] — value iteration, policy iteration, and tabular
//!   Q-learning. Value iteration is the Banach fixed-point construction
//!   behind the paper's Theorem III.1 (existence of optimal policies).
//! * [`antijam`] — the anti-jamming MDP of Eqs. (3)–(14): states
//!   `{1..⌈K/m⌉−1, TJ, J}`, actions `{stay, hop} × power levels`, the
//!   sweep-hazard transition kernel, and the loss-based reward.
//! * [`analysis`] — threshold-policy extraction and verification of
//!   Lemmas III.2–III.3 and Theorems III.4–III.5 on solved instances.
//!
//! # Example
//!
//! Solve the paper's default instance and inspect the threshold policy:
//!
//! ```
//! use ctjam_mdp::antijam::{AntijamMdp, AntijamParams};
//! use ctjam_mdp::analysis::threshold_of;
//! use ctjam_mdp::solve::value_iteration::value_iteration;
//!
//! let mdp = AntijamMdp::new(AntijamParams::default());
//! let solution = value_iteration(mdp.tabular(), 0.9, 1e-10, 10_000);
//! let threshold = threshold_of(&mdp, &solution.q);
//! assert!(threshold >= 1, "optimal policy must be a threshold policy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod antijam;
pub mod mdp;
pub mod solve;
pub mod stationary;
