//! Stationary analysis of the chain a fixed policy induces on the MDP.
//!
//! Once a policy is fixed, the anti-jamming MDP becomes a Markov chain;
//! its stationary distribution predicts long-run quantities like the
//! success rate of transmission *analytically* — a closed-form
//! cross-check for the 20 000-slot simulations (§IV.A.1) that the
//! integration tests exploit.

use crate::antijam::{AntijamMdp, State};
use crate::mdp::TabularMdp;

/// The row-stochastic transition matrix induced by `policy` on `mdp`
/// (`matrix[s][s′] = P(s′ | s, policy[s])`).
///
/// # Panics
///
/// Panics if `policy.len()` differs from the state count or any action
/// index is out of range.
pub fn induced_chain(mdp: &TabularMdp, policy: &[usize]) -> Vec<Vec<f64>> {
    assert_eq!(policy.len(), mdp.num_states(), "policy length mismatch");
    let n = mdp.num_states();
    let mut matrix = vec![vec![0.0; n]; n];
    for (s, &a) in policy.iter().enumerate() {
        assert!(a < mdp.num_actions(), "action {a} out of range");
        for t in mdp.transitions(s, a) {
            matrix[s][t.next] += t.prob;
        }
    }
    matrix
}

/// The stationary distribution of a row-stochastic matrix by power
/// iteration (the induced chains here are finite and aperiodic enough in
/// practice; `iterations` bounds the work).
///
/// # Panics
///
/// Panics if the matrix is empty or not square.
pub fn stationary_distribution(matrix: &[Vec<f64>], iterations: usize) -> Vec<f64> {
    let n = matrix.len();
    assert!(n > 0, "empty chain");
    assert!(
        matrix.iter().all(|row| row.len() == n),
        "matrix must be square"
    );
    let mut dist = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|v| *v = 0.0);
        for (s, &mass) in dist.iter().enumerate() {
            for (t, &p) in matrix[s].iter().enumerate() {
                next[t] += mass * p;
            }
        }
        // Damping stabilizes periodic corner cases.
        for (d, nx) in dist.iter_mut().zip(&next) {
            *d = 0.5 * *d + 0.5 * nx;
        }
        let total: f64 = dist.iter().sum();
        dist.iter_mut().for_each(|v| *v /= total);
    }
    dist
}

/// Long-run quantities of a fixed policy on the anti-jamming MDP.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyStationary {
    /// Stationary state distribution (indexed like the tabular MDP).
    pub distribution: Vec<f64>,
    /// Predicted success rate of transmission: in steady state, a slot
    /// succeeds unless the *next* state is `J`, so this is
    /// `1 − Σ_s π(s)·P(J | s, policy)`.
    pub success_rate: f64,
    /// Predicted adoption rate of frequency hopping.
    pub fh_adoption_rate: f64,
    /// Predicted mean Eq. (5) reward per slot.
    pub mean_reward: f64,
}

/// Computes the stationary prediction for `policy` on the anti-jamming
/// MDP.
///
/// # Panics
///
/// Panics on a mismatched policy (see [`induced_chain`]).
pub fn analyze_policy(mdp: &AntijamMdp, policy: &[usize]) -> PolicyStationary {
    let tabular = mdp.tabular();
    let chain = induced_chain(tabular, policy);
    let distribution = stationary_distribution(&chain, 10_000);

    let j = mdp.state_index(State::Jammed);
    let mut jam_flow = 0.0;
    let mut fh = 0.0;
    let mut reward = 0.0;
    for (s, &pi) in distribution.iter().enumerate() {
        let a = policy[s];
        if mdp.action_of(a).hop {
            fh += pi;
        }
        reward += pi * tabular.expected_reward(s, a);
        jam_flow += pi
            * tabular
                .transitions(s, a)
                .iter()
                .filter(|t| t.next == j)
                .map(|t| t.prob)
                .sum::<f64>();
    }
    PolicyStationary {
        distribution,
        success_rate: 1.0 - jam_flow,
        fh_adoption_rate: fh,
        mean_reward: reward,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antijam::{Action, AntijamParams, JammerMode};
    use crate::solve::value_iteration::value_iteration;

    fn default_mdp(mode: JammerMode) -> AntijamMdp {
        AntijamMdp::new(AntijamParams {
            jammer_mode: mode,
            ..AntijamParams::default()
        })
    }

    fn always_hop_policy(mdp: &AntijamMdp) -> Vec<usize> {
        let a = mdp.action_index(Action {
            hop: true,
            power: 0,
        });
        vec![a; mdp.tabular().num_states()]
    }

    #[test]
    fn stationary_distribution_sums_to_one_and_is_fixed() {
        let mdp = default_mdp(JammerMode::MaxPower);
        let policy = always_hop_policy(&mdp);
        let chain = induced_chain(mdp.tabular(), &policy);
        let pi = stationary_distribution(&chain, 10_000);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // π·P = π.
        for t in 0..pi.len() {
            let flow: f64 = (0..pi.len()).map(|s| pi[s] * chain[s][t]).sum();
            assert!(
                (flow - pi[t]).abs() < 1e-6,
                "state {t}: {flow} vs {}",
                pi[t]
            );
        }
    }

    #[test]
    fn always_hop_success_rate_matches_hand_calculation() {
        // From Safe(1) a hop is jammed w.p. 2/9 (max-power mode loses the
        // duel); from TJ/J a hop always escapes (Eq. 14). Stationary:
        // π(S1) = 9/11, π(J) = 2/11, ST = 1 − (9/11)(2/9) = 9/11.
        let mdp = default_mdp(JammerMode::MaxPower);
        let analysis = analyze_policy(&mdp, &always_hop_policy(&mdp));
        assert!(
            (analysis.success_rate - 9.0 / 11.0).abs() < 1e-6,
            "ST = {}",
            analysis.success_rate
        );
        assert!((analysis.fh_adoption_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_policy_beats_always_hop_in_mean_reward() {
        let mdp = default_mdp(JammerMode::RandomPower);
        let solution = value_iteration(mdp.tabular(), 0.9, 1e-10, 100_000);
        let optimal = analyze_policy(&mdp, &solution.policy);
        let naive = analyze_policy(&mdp, &always_hop_policy(&mdp));
        assert!(
            optimal.mean_reward > naive.mean_reward,
            "optimal {} vs always-hop {}",
            optimal.mean_reward,
            naive.mean_reward
        );
    }

    #[test]
    fn always_stay_gets_pinned() {
        // Staying forever in max-power mode: once jammed, stay jammed.
        let mdp = default_mdp(JammerMode::MaxPower);
        let a = mdp.action_index(Action {
            hop: false,
            power: 0,
        });
        let policy = vec![a; mdp.tabular().num_states()];
        let analysis = analyze_policy(&mdp, &policy);
        assert!(
            analysis.success_rate < 0.05,
            "pinned ST should be ~0: {}",
            analysis.success_rate
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_policy_rejected() {
        let mdp = default_mdp(JammerMode::MaxPower);
        analyze_policy(&mdp, &[0, 0]);
    }
}
