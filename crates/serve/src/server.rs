//! The sharded, multi-tenant policy-inference server.
//!
//! Thread layout:
//!
//! * an **accept** thread takes connections off a non-blocking
//!   `TcpListener` and spawns one **connection** thread each; at accept
//!   time the connection is assigned a unique id and pinned to one
//!   worker shard (`conn_id % workers`), thread-per-core style — a
//!   connection's requests always flow through the same
//!   `BatchQueue` (crate-private `batcher` module), which is what preserves
//!   per-connection reply order with many workers;
//! * connection threads decode framed requests
//!   ([`crate::protocol::Message`]) out of a growing byte buffer — one
//!   `read` syscall can drain many pipelined frames — resolve the
//!   frame's tenant id against the tenant registry (cached per
//!   connection: the width check never touches the model `RwLock` on
//!   the request path, since [`ReloadError::ShapeMismatch`] guarantees
//!   a tenant's input size is immutable), run admission control, and
//!   enqueue observations into their shard's bounded queue; immediate
//!   replies (`Pong`, errors) go out through the connection's shared
//!   write half;
//! * one **batch worker per shard** pulls size-or-deadline coalesced
//!   batches, groups each flush's rows by tenant, and runs one
//!   `Mlp::forward_batch` per tenant group — or the int8-quantized
//!   forward when [`ServerConfig::quantize_int8`] is on and that
//!   tenant's policy cleared its agreement gate — cloning each tenant's
//!   serving-model `Arc` **once per group**, so every response in a
//!   group is computed by exactly one policy version even while a
//!   hot-reload swaps the pointer (no torn reads). Replies are
//!   coalesced into one buffered write per connection, keyed by the
//!   accept-time connection id (an `O(1)` map lookup, with reply
//!   buffers reused across flushes);
//! * optional **watcher** threads (one per watched tenant) poll a
//!   checkpoint path and apply validated swaps via the same
//!   [`PolicyServer::reload_tenant_from`] path. The watcher keys on the
//!   file's `(mtime, len)` signature and commits it only after a
//!   **successful** reload, so a transiently failing read is retried
//!   on the next poll instead of being dropped until the next publish,
//!   and a same-tick republish that changes the length is still caught.
//!   (A republish with identical mtime *and* length is invisible to
//!   polling; the atomic tempfile+rename publish protocol makes that
//!   window one filesystem-timestamp granule.)
//!
//! Admission control is two-layered: the bounded queue refuses pushes
//! beyond `queue_capacity` with `ServerBusy` (hard backstop), and when
//! [`ServerConfig::max_queue_delay`] is set, a request whose estimated
//! queue delay — shard depth × an EWMA of per-request service cost —
//! exceeds the bound is shed with `Overloaded` before it is enqueued.
//! Shedding early keeps the latency of admitted requests bounded
//! instead of letting the whole queue slow down together.
//!
//! Connections may pipeline: any number of `Observe` frames can be in
//! flight at once, and replies carry the request id they answer.
//! `Observe` replies preserve per-connection request order (the shard
//! queue is FIFO, a connection never changes shards, and its worker
//! writes each flush in order), while `Pong` and error replies are
//! written immediately and may overtake queued `Action`s.
//!
//! Shutdown is graceful by construction: every shard queue is closed
//! (new work is refused with `ShuttingDown`), each worker drains its
//! queue, connection threads notice the flag at their next read
//! timeout, and `shutdown` joins them all before returning the final
//! metrics snapshot. No in-flight request is dropped, for any tenant.

use crate::batcher::{BatchQueue, PendingRequest, PushError};
use crate::metrics::{ServeMetrics, TenantMetrics};
use crate::protocol::{ErrorCode, Message, WireError, DEFAULT_TENANT};
use ctjam_dqn::checkpoint::CheckpointError;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_dqn::quant::{synthetic_observations, QuantizedPolicy};
use ctjam_nn::batch::Batch;
use ctjam_nn::mlp::BatchScratch;
use ctjam_nn::quant::QuantScratch;
use ctjam_telemetry::JsonValue;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime};

/// The batch worker's reply handle: the request id, the connection it
/// came from, the tenant that owns the observation, and the
/// connection's shared write half.
struct Reply {
    id: u64,
    conn: u64,
    tenant: Arc<Tenant>,
    writer: ReplyWriter,
}

/// Write half of one connection, shared between its reader thread
/// (immediate `Pong`/error replies) and its shard's batch worker
/// (`Action` replies). A mutex serializes whole frames; reads never
/// take it.
#[derive(Clone)]
struct ReplyWriter {
    stream: Arc<TcpStream>,
    guard: Arc<Mutex<()>>,
}

impl ReplyWriter {
    fn new(stream: Arc<TcpStream>) -> ReplyWriter {
        ReplyWriter {
            stream,
            guard: Arc::new(Mutex::new(())),
        }
    }

    /// Writes one frame; errors just mean the peer is gone.
    fn send(&self, msg: &Message) -> io::Result<()> {
        let _guard = self.guard.lock().expect("writer lock poisoned");
        msg.write_to(&mut (&*self.stream))
    }

    /// Writes pre-encoded frames in one syscall (the batch worker
    /// coalesces every reply a flush owes one connection).
    fn send_bytes(&self, frames: &[u8]) -> io::Result<()> {
        use io::Write;
        let _guard = self.guard.lock().expect("writer lock poisoned");
        (&*self.stream).write_all(frames)
    }
}

/// Tunables for one [`PolicyServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Flush a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush at most this long after the oldest queued request arrived.
    pub max_wait: Duration,
    /// Bound on queued requests **per worker shard**; pushes beyond it
    /// get `ServerBusy`.
    pub queue_capacity: usize,
    /// Read timeout on connections (shutdown-notice latency) and the
    /// checkpoint watchers' poll interval.
    pub poll_interval: Duration,
    /// Serve through the int8-quantized forward path when a tenant's
    /// policy clears the greedy-action-agreement gate
    /// ([`INT8_MIN_AGREEMENT`] on [`INT8_HOLDOUT_SIZE`] held-out
    /// synthetic observations). A policy that fails the gate is served
    /// in f64 and the rejection is counted in `quant_gate_failures`;
    /// the gate re-runs on every hot-reload, independently per tenant.
    /// Off by default — training and evaluation never see the
    /// quantized path.
    pub quantize_int8: bool,
    /// Batch workers (= shards). `0` resolves to
    /// `std::thread::available_parallelism()` at bind time. Worker
    /// count never changes which action an observation gets — only how
    /// requests are queued — so any value is behaviorally identical.
    pub workers: usize,
    /// Queue-delay SLO: shed a request with `Overloaded` when its
    /// shard's estimated queue delay (depth × EWMA service cost per
    /// request) already exceeds this bound. `None` (the default)
    /// disables shedding; the bounded queue's `ServerBusy` backstop
    /// always applies. No request is shed before a shard's first flush
    /// establishes a cost estimate.
    pub max_queue_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            poll_interval: Duration::from_millis(25),
            quantize_int8: false,
            workers: 0,
            max_queue_delay: None,
        }
    }
}

/// Greedy-action agreement an int8 policy must reach on the held-out
/// set before the server will use it (§ behavioral gate).
pub const INT8_MIN_AGREEMENT: f64 = 0.995;
/// Rows in the synthetic calibration set (plus corner vectors).
pub const INT8_CALIBRATION_SIZE: usize = 256;
/// Rows in the synthetic hold-out set the gate is measured on.
pub const INT8_HOLDOUT_SIZE: usize = 256;
const INT8_CALIBRATION_SEED: u64 = 0x5ca1ab1e;
const INT8_HOLDOUT_SEED: u64 = 0x0ddba11;

/// Reply-buffer cache bound per worker: above this many cached
/// connections, entries idle for [`REPLY_CACHE_KEEP`] flushes are
/// evicted (an evicted live connection is simply re-cached on its next
/// reply).
const REPLY_CACHE_LIMIT: usize = 1024;
/// Flushes a reply buffer survives without being touched once the
/// cache is over [`REPLY_CACHE_LIMIT`].
const REPLY_CACHE_KEEP: u64 = 64;

/// Why a checkpoint hot-reload was refused. In every case the tenant's
/// old policy keeps serving untouched.
#[derive(Debug)]
pub enum ReloadError {
    /// The file failed `ctjam_dqn::checkpoint` verification (I/O,
    /// magic, version, checksum, or malformed state).
    Checkpoint(CheckpointError),
    /// The new policy disagrees with the serving one on
    /// `(input_size, num_actions)` — clients would break mid-stream.
    ShapeMismatch {
        /// The serving policy's `(input_size, num_actions)`.
        expected: (usize, usize),
        /// The rejected checkpoint's `(input_size, num_actions)`.
        found: (usize, usize),
    },
    /// No tenant with the given id is registered.
    UnknownTenant(u32),
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            ReloadError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: serving (input={}, actions={}), checkpoint (input={}, actions={})",
                expected.0, expected.1, found.0, found.1
            ),
            ReloadError::UnknownTenant(id) => write!(f, "no tenant with id {id}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// Why a tenant could not be registered.
#[derive(Debug, PartialEq, Eq)]
pub enum TenantError {
    /// A tenant with this id already exists.
    Duplicate(u32),
    /// No tenant with this id exists.
    Unknown(u32),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::Duplicate(id) => write!(f, "tenant {id} already registered"),
            TenantError::Unknown(id) => write!(f, "no tenant with id {id}"),
        }
    }
}

impl std::error::Error for TenantError {}

/// What the batch workers serve one tenant with: the f64 policy
/// (always present — it validates reloads and is the fallback) plus,
/// when `quantize_int8` is on **and** the agreement gate passed, its
/// int8 twin. One `Arc<ServingModel>` swap per reload keeps the pair
/// consistent: a tenant group can never mix an old f64 policy with a
/// new quantization or vice versa.
struct ServingModel {
    policy: GreedyPolicy,
    quant: Option<QuantizedPolicy>,
}

/// One registered model: the swap point for hot-reloads plus the
/// tenant's own metrics. `input_size` is denormalized out of the model
/// so the per-request width check (and the connection-side cache of
/// it) never takes the model `RwLock` — [`ReloadError::ShapeMismatch`]
/// guarantees it can never change.
struct Tenant {
    id: u32,
    input_size: usize,
    model: RwLock<Arc<ServingModel>>,
    metrics: Mutex<TenantMetrics>,
}

impl Tenant {
    fn current_model(&self) -> Arc<ServingModel> {
        Arc::clone(&self.model.read().expect("model lock poisoned"))
    }

    fn metrics(&self) -> MutexGuard<'_, TenantMetrics> {
        self.metrics.lock().expect("tenant metrics lock poisoned")
    }
}

/// Quantizes `policy` behind the agreement gate (when asked to) and
/// records the admission or rejection in both the global and the
/// tenant's metrics. Quantization happens here — at checkpoint load —
/// never on the serving path.
fn admit_model(
    policy: GreedyPolicy,
    quantize: bool,
    global: &Mutex<ServeMetrics>,
    tenant: &Mutex<TenantMetrics>,
) -> ServingModel {
    let quant = if quantize {
        let calibration = synthetic_observations(
            policy.input_size(),
            INT8_CALIBRATION_SEED,
            INT8_CALIBRATION_SIZE,
        );
        let holdout =
            synthetic_observations(policy.input_size(), INT8_HOLDOUT_SEED, INT8_HOLDOUT_SIZE);
        let mut g = global.lock().expect("metrics lock poisoned");
        let mut t = tenant.lock().expect("tenant metrics lock poisoned");
        match QuantizedPolicy::quantize_gated(&policy, &calibration, &holdout, INT8_MIN_AGREEMENT) {
            Ok((q, _agreement)) => {
                g.quant_admissions.incr();
                t.quant_admissions.incr();
                Some(q)
            }
            Err(_) => {
                g.quant_gate_failures.incr();
                t.quant_gate_failures.incr();
                None
            }
        }
    } else {
        None
    };
    ServingModel { policy, quant }
}

/// One worker's slice of the server: its request queue and the EWMA of
/// per-request service cost (nanoseconds; `0` until the first flush)
/// that backs the queue-delay SLO estimate.
struct WorkerShard {
    queue: BatchQueue<Reply>,
    ewma_ns_per_req: AtomicU64,
}

struct Shared {
    tenants: RwLock<Vec<Arc<Tenant>>>,
    shards: Vec<WorkerShard>,
    shutdown: AtomicBool,
    metrics: Mutex<ServeMetrics>,
    config: ServerConfig,
    next_conn: AtomicU64,
}

impl Shared {
    fn metrics(&self) -> MutexGuard<'_, ServeMetrics> {
        self.metrics.lock().expect("metrics lock poisoned")
    }

    fn find_tenant(&self, id: u32) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("tenant list poisoned")
            .iter()
            .find(|t| t.id == id)
            .map(Arc::clone)
    }

    fn add_tenant(&self, id: u32, policy: GreedyPolicy) -> Result<Arc<Tenant>, TenantError> {
        let mut tenants = self.tenants.write().expect("tenant list poisoned");
        if tenants.iter().any(|t| t.id == id) {
            return Err(TenantError::Duplicate(id));
        }
        let metrics = Mutex::new(TenantMetrics::new());
        let model = admit_model(policy, self.config.quantize_int8, &self.metrics, &metrics);
        let tenant = Arc::new(Tenant {
            id,
            input_size: model.policy.input_size(),
            model: RwLock::new(Arc::new(model)),
            metrics,
        });
        tenants.push(Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Validate-then-swap for one tenant. The new policy is fully
    /// loaded, verified, and (when configured) re-quantized before the
    /// write lock is taken, so the swap itself is a pointer store and
    /// readers only ever see a complete model.
    fn reload_tenant(&self, tenant: &Tenant, path: &Path) -> Result<(), ReloadError> {
        let loaded = match GreedyPolicy::load_checkpoint(path) {
            Ok(p) => p,
            Err(e) => {
                self.metrics().reloads_rejected.incr();
                tenant.metrics().reloads_rejected.incr();
                return Err(ReloadError::Checkpoint(e));
            }
        };
        let current = tenant.current_model();
        let expected = (current.policy.input_size(), current.policy.num_actions());
        let found = (loaded.input_size(), loaded.num_actions());
        if expected != found {
            self.metrics().reloads_rejected.incr();
            tenant.metrics().reloads_rejected.incr();
            return Err(ReloadError::ShapeMismatch { expected, found });
        }
        let model = admit_model(
            loaded,
            self.config.quantize_int8,
            &self.metrics,
            &tenant.metrics,
        );
        *tenant.model.write().expect("model lock poisoned") = Arc::new(model);
        self.metrics().reloads_ok.incr();
        tenant.metrics().reloads_ok.incr();
        Ok(())
    }
}

/// A running policy-inference server. Dropping it shuts it down; call
/// [`PolicyServer::shutdown`] to also receive the final metrics.
pub struct PolicyServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl PolicyServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `policy` as the default tenant
    /// ([`crate::protocol::DEFAULT_TENANT`]) — exactly what v1 clients
    /// talk to. Spawns one batch worker per configured shard.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        policy: GreedyPolicy,
        config: ServerConfig,
    ) -> io::Result<PolicyServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let worker_count = if config.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shards = (0..worker_count)
            .map(|_| WorkerShard {
                queue: BatchQueue::new(config.queue_capacity),
                ewma_ns_per_req: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(Shared {
            tenants: RwLock::new(Vec::new()),
            shards,
            shutdown: AtomicBool::new(false),
            metrics: Mutex::new(ServeMetrics::new()),
            config,
            next_conn: AtomicU64::new(0),
        });
        shared
            .add_tenant(DEFAULT_TENANT, policy)
            .expect("empty registry cannot collide");
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            thread::spawn(move || accept_loop(&listener, &shared, &connections))
        };
        let workers = (0..worker_count)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || batch_worker(&shared, shard))
            })
            .collect();
        Ok(PolicyServer {
            shared,
            addr,
            accept: Some(accept),
            workers,
            watchers: Vec::new(),
            connections,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Batch workers actually running (after `workers: 0` resolution).
    pub fn worker_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Registers `policy` under tenant `id`, visible to v2 clients
    /// immediately. The tenant's int8 gate (when configured) runs here.
    ///
    /// # Errors
    ///
    /// [`TenantError::Duplicate`] when the id is taken.
    pub fn add_tenant(&self, id: u32, policy: GreedyPolicy) -> Result<(), TenantError> {
        self.shared.add_tenant(id, policy).map(|_| ())
    }

    /// Tenant ids currently registered, in registration order.
    pub fn tenant_ids(&self) -> Vec<u32> {
        self.shared
            .tenants
            .read()
            .expect("tenant list poisoned")
            .iter()
            .map(|t| t.id)
            .collect()
    }

    /// Validates the checkpoint at `path` and atomically swaps it into
    /// the default tenant. Connections are never dropped: in-flight
    /// batches finish on the policy they started with, later batches
    /// use the new one.
    ///
    /// # Errors
    ///
    /// [`ReloadError`] when the file is corrupt, unreadable, or shaped
    /// differently from the serving policy; the old policy keeps
    /// serving.
    pub fn reload_from(&self, path: &Path) -> Result<(), ReloadError> {
        self.reload_tenant_from(DEFAULT_TENANT, path)
    }

    /// [`PolicyServer::reload_from`] for an arbitrary tenant.
    ///
    /// # Errors
    ///
    /// [`ReloadError::UnknownTenant`] when no such tenant exists, else
    /// as [`PolicyServer::reload_from`].
    pub fn reload_tenant_from(&self, tenant: u32, path: &Path) -> Result<(), ReloadError> {
        let t = self
            .shared
            .find_tenant(tenant)
            .ok_or(ReloadError::UnknownTenant(tenant))?;
        self.shared.reload_tenant(&t, path)
    }

    /// Spawns a watcher thread for the default tenant: every
    /// `poll_interval` it stats `path`, and on a `(mtime, len)`
    /// signature change runs the same validate-then-swap as
    /// [`PolicyServer::reload_from`]. The signature is committed only
    /// on a **successful** reload, so rejected files are retried every
    /// poll until they load (or the publisher replaces them). Rejected
    /// files are counted in the metrics and the old policy keeps
    /// serving. Checkpoint writes are atomic (tempfile + rename), so a
    /// new signature always names a complete file.
    pub fn watch_checkpoint(&mut self, path: PathBuf) {
        self.watch_tenant_checkpoint(DEFAULT_TENANT, path)
            .expect("default tenant always exists");
    }

    /// [`PolicyServer::watch_checkpoint`] for an arbitrary tenant; one
    /// watcher thread per call.
    ///
    /// # Errors
    ///
    /// [`TenantError::Unknown`] when no such tenant exists.
    pub fn watch_tenant_checkpoint(
        &mut self,
        tenant: u32,
        path: PathBuf,
    ) -> Result<(), TenantError> {
        let t = self
            .shared
            .find_tenant(tenant)
            .ok_or(TenantError::Unknown(tenant))?;
        let shared = Arc::clone(&self.shared);
        self.watchers.push(thread::spawn(move || {
            let mut last_seen = file_signature(&path);
            while !shared.shutdown.load(Ordering::SeqCst) {
                thread::sleep(shared.config.poll_interval);
                let sig = file_signature(&path);
                if sig.is_some() && sig != last_seen && shared.reload_tenant(&t, &path).is_ok() {
                    // Commit only on success: a failed reload keeps the
                    // old signature, so the file is retried next poll.
                    last_seen = sig;
                }
            }
        }));
        Ok(())
    }

    /// Whether the default tenant is currently answering through the
    /// int8 path — i.e. `quantize_int8` was requested **and** its
    /// serving policy cleared the agreement gate. `false` means f64
    /// (either int8 was never requested, or the gate rejected this
    /// policy).
    pub fn int8_active(&self) -> bool {
        self.tenant_int8_active(DEFAULT_TENANT).unwrap_or(false)
    }

    /// [`PolicyServer::int8_active`] per tenant; `None` when no such
    /// tenant exists.
    pub fn tenant_int8_active(&self, tenant: u32) -> Option<bool> {
        self.shared
            .find_tenant(tenant)
            .map(|t| t.current_model().quant.is_some())
    }

    /// Snapshot of the server's metrics as JSON: the global counters
    /// and histograms, plus one entry per tenant under `"tenants"`.
    pub fn metrics_json(&self) -> JsonValue {
        let mut json = self.shared.metrics().to_json();
        let mut tenants = JsonValue::object();
        for t in self
            .shared
            .tenants
            .read()
            .expect("tenant list poisoned")
            .iter()
        {
            tenants.set(&t.id.to_string(), t.metrics().to_json());
        }
        json.set("tenants", tenants);
        json
    }

    /// Mean requests per flushed batch so far, across all workers (NaN
    /// before any flush).
    pub fn mean_batch_occupancy(&self) -> f64 {
        self.shared.metrics().mean_batch_occupancy()
    }

    /// Drains and stops the server: refuses new work, answers every
    /// queued request on every shard, joins all threads, and returns
    /// the final metrics snapshot.
    pub fn shutdown(mut self) -> JsonValue {
        self.stop();
        self.metrics_json()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for h in handles {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for h in self.watchers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for PolicyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The watcher's change key: `(mtime, len)`. Length catches a same-tick
/// republish that coarse filesystem timestamps would swallow, as long
/// as the two checkpoints differ in size.
fn file_signature(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics().connections.incr();
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = thread::spawn(move || connection_loop(stream, conn_id, &shared));
                connections
                    .lock()
                    .expect("connection list poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            // Transient accept failures (e.g. a peer resetting mid
            // handshake) must not kill the listener.
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Per-connection state the reader thread threads through `dispatch`:
/// the accept-time id (reply-coalescing key), the shard the connection
/// is pinned to, and the tenants it has resolved so far. The cache
/// means a steady-state request touches neither the tenant registry
/// lock nor the tenant's model lock — `Tenant::input_size` is
/// immutable.
struct ConnState {
    conn_id: u64,
    shard: usize,
    tenants: Vec<(u32, Arc<Tenant>)>,
}

impl ConnState {
    /// Resolves a tenant id, consulting the registry only on first
    /// sight. Unknown ids are not negatively cached: a tenant added
    /// after the miss is picked up on the next request.
    fn resolve(&mut self, shared: &Shared, id: u32) -> Option<Arc<Tenant>> {
        if let Some((_, t)) = self.tenants.iter().find(|(tid, _)| *tid == id) {
            return Some(Arc::clone(t));
        }
        let t = shared.find_tenant(id)?;
        self.tenants.push((id, Arc::clone(&t)));
        Some(t)
    }
}

fn connection_loop(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let stream = Arc::new(stream);
    let writer = ReplyWriter::new(Arc::clone(&stream));
    let mut conn = ConnState {
        conn_id,
        shard: (conn_id % shared.shards.len() as u64) as usize,
        tenants: Vec::new(),
    };
    // Frames are decoded out of this buffer, so a read timeout can
    // never lose the prefix of a half-arrived frame, and one syscall
    // drains as many pipelined frames as the kernel has buffered.
    let mut buf: Vec<u8> = Vec::new();
    let mut consumed = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match Message::decode(&buf[consumed..]) {
            Ok((msg, used)) => {
                consumed += used;
                if !dispatch(shared, &mut conn, &writer, msg) {
                    return;
                }
                continue;
            }
            Err(WireError::Truncated) => {
                // Incomplete frame: keep the bytes, read more below.
                buf.drain(..consumed);
                consumed = 0;
            }
            Err(_) => {
                // Hostile or corrupt bytes: count it and drop the
                // connection — resynchronizing an arbitrary stream is
                // not worth the attack surface.
                shared.metrics().wire_errors.incr();
                return;
            }
        }
        match (&*stream).read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    shared.metrics().wire_errors.incr(); // EOF mid-frame
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one decoded frame; `false` closes the connection.
fn dispatch(
    shared: &Arc<Shared>,
    conn: &mut ConnState,
    writer: &ReplyWriter,
    msg: Message,
) -> bool {
    match msg {
        Message::Ping { id } => {
            shared.metrics().pings.incr();
            writer.send(&Message::Pong { id }).is_ok()
        }
        Message::Observe {
            id,
            tenant,
            observation,
        } => {
            shared.metrics().requests.incr();
            handle_observe(shared, conn, writer, id, tenant, observation)
        }
        // A response kind arriving at the server is a protocol
        // violation by the peer.
        Message::Action { .. } | Message::Pong { .. } | Message::Error { .. } => {
            shared.metrics().wire_errors.incr();
            false
        }
    }
}

/// Admission control plus enqueue; the shard's batch worker writes the
/// `Action` reply. Rejections are written here, and `ShuttingDown`
/// also closes the connection.
fn handle_observe(
    shared: &Arc<Shared>,
    conn: &mut ConnState,
    writer: &ReplyWriter,
    id: u64,
    tenant_id: u32,
    observation: Vec<f64>,
) -> bool {
    let Some(tenant) = conn.resolve(shared, tenant_id) else {
        shared.metrics().unknown_tenant.incr();
        return writer
            .send(&Message::Error {
                id,
                code: ErrorCode::UnknownTenant,
            })
            .is_ok();
    };
    tenant.metrics().requests.incr();
    if observation.len() != tenant.input_size {
        shared.metrics().bad_observations.incr();
        tenant.metrics().bad_observations.incr();
        return writer
            .send(&Message::Error {
                id,
                code: ErrorCode::BadObservation,
            })
            .is_ok();
    }
    let shard = &shared.shards[conn.shard];
    if let Some(max_delay) = shared.config.max_queue_delay {
        let ewma = shard.ewma_ns_per_req.load(Ordering::Relaxed);
        // ewma == 0 means no flush has priced a request yet; admit.
        if ewma > 0 {
            let est_ns = shard.queue.depth() as u128 * u128::from(ewma);
            if est_ns > max_delay.as_nanos() {
                shared.metrics().slo_rejections.incr();
                tenant.metrics().slo_rejections.incr();
                return writer
                    .send(&Message::Error {
                        id,
                        code: ErrorCode::Overloaded,
                    })
                    .is_ok();
            }
        }
    }
    let pending = PendingRequest {
        observation,
        enqueued: Instant::now(),
        reply: Reply {
            id,
            conn: conn.conn_id,
            tenant,
            writer: writer.clone(),
        },
    };
    match shard.queue.push(pending) {
        Ok(()) => true,
        Err(PushError::Busy) => {
            shared.metrics().busy_rejections.incr();
            writer
                .send(&Message::Error {
                    id,
                    code: ErrorCode::ServerBusy,
                })
                .is_ok()
        }
        Err(PushError::Closed) => {
            let _ = writer.send(&Message::Error {
                id,
                code: ErrorCode::ShuttingDown,
            });
            false
        }
    }
}

/// One connection's coalesced replies for the current flush. Buffers
/// are reused across flushes (cleared, capacity retained) and the map
/// is keyed by the accept-time connection id — `O(1)` per request where
/// the old `Vec` scan was `O(batch)`.
struct ReplyBuf {
    writer: ReplyWriter,
    frames: Vec<u8>,
    last_flush: u64,
}

fn batch_worker(shared: &Arc<Shared>, shard_index: usize) {
    let shard = &shared.shards[shard_index];
    let mut pending: Vec<PendingRequest<Reply>> = Vec::new();
    let mut batch = Batch::default();
    let mut group_actions: Vec<usize> = Vec::new();
    let mut actions: Vec<u32> = Vec::new();
    let mut groups: Vec<(Arc<Tenant>, Vec<usize>)> = Vec::new();
    // f64 scratch per tenant, invalidated when the tenant's model Arc
    // changes (a reload may resize layers).
    let mut scratches: HashMap<u32, (Arc<ServingModel>, BatchScratch)> = HashMap::new();
    let mut quant_scratch = QuantScratch::default();
    let mut replies: HashMap<u64, ReplyBuf> = HashMap::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut flush_seq: u64 = 0;
    loop {
        let alive = shard.queue.next_batch(
            shared.config.max_batch,
            shared.config.max_wait,
            &mut pending,
        );
        if !pending.is_empty() {
            let flush_start = Instant::now();
            // Group this flush's rows by tenant: one forward per tenant
            // group, each answered by exactly one model version (the
            // Arc is cloned once per group), reload or not.
            groups.clear();
            for (row, p) in pending.iter().enumerate() {
                match groups
                    .iter_mut()
                    .find(|(t, _)| Arc::ptr_eq(t, &p.reply.tenant))
                {
                    Some((_, rows)) => rows.push(row),
                    None => groups.push((Arc::clone(&p.reply.tenant), vec![row])),
                }
            }
            actions.clear();
            actions.resize(pending.len(), 0);
            let mut int8_groups = 0u64;
            for (tenant, rows) in &groups {
                let model = tenant.current_model();
                batch.reset(model.policy.input_size());
                for &row in rows {
                    batch.push_row(&pending[row].observation);
                }
                match &model.quant {
                    Some(quant) => {
                        quant.act_greedy_batch(&batch, &mut quant_scratch, &mut group_actions);
                        int8_groups += 1;
                    }
                    None => {
                        let entry = scratches.entry(tenant.id).or_insert_with(|| {
                            let scratch = model.policy.scratch();
                            (Arc::clone(&model), scratch)
                        });
                        if !Arc::ptr_eq(&entry.0, &model) {
                            *entry = (Arc::clone(&model), model.policy.scratch());
                        }
                        model
                            .policy
                            .act_greedy_batch(&batch, &mut entry.1, &mut group_actions);
                    }
                }
                for (&row, &action) in rows.iter().zip(&group_actions) {
                    actions[row] = action as u32;
                }
                let now = Instant::now();
                let mut tm = tenant.metrics();
                tm.responses.add(rows.len() as u64);
                for &row in rows {
                    tm.latency_us
                        .record(now.duration_since(pending[row].enqueued).as_secs_f64() * 1e6);
                }
            }
            let now = Instant::now();
            {
                let mut m = shared.metrics();
                m.batches.incr();
                m.int8_batches.add(int8_groups);
                m.batch_size.record(pending.len() as f64);
                m.queue_depth.record(shard.queue.depth() as f64);
                m.responses.add(pending.len() as u64);
                for p in &pending {
                    m.latency_us
                        .record(now.duration_since(p.enqueued).as_secs_f64() * 1e6);
                }
            }
            // Price this flush for the SLO estimate: service cost per
            // request, EWMA-smoothed (α = 1/8). Socket writes are
            // excluded — a slow peer must not poison admission for the
            // whole shard.
            let service_ns = flush_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let cost = (service_ns / pending.len() as u64).max(1);
            let old = shard.ewma_ns_per_req.load(Ordering::Relaxed);
            let ewma = if old == 0 { cost } else { (7 * old + cost) / 8 };
            shard.ewma_ns_per_req.store(ewma, Ordering::Relaxed);
            // Coalesce this flush's replies in pending (arrival) order:
            // one buffered write per connection instead of one syscall
            // per request, preserving per-connection order even when a
            // connection interleaves tenants. A write failure just
            // means that connection died mid-flight; nothing to do.
            flush_seq += 1;
            touched.clear();
            for (p, &action) in pending.iter().zip(&actions) {
                let buf = replies.entry(p.reply.conn).or_insert_with(|| ReplyBuf {
                    writer: p.reply.writer.clone(),
                    frames: Vec::new(),
                    last_flush: 0,
                });
                if buf.last_flush != flush_seq {
                    buf.last_flush = flush_seq;
                    buf.frames.clear();
                    touched.push(p.reply.conn);
                }
                Message::Action {
                    id: p.reply.id,
                    action,
                }
                .encode_into(&mut buf.frames);
            }
            for conn in &touched {
                if let Some(buf) = replies.get(conn) {
                    let _ = buf.writer.send_bytes(&buf.frames);
                }
            }
            // Bound the buffer cache: connection ids are never reused,
            // so entries for closed connections would otherwise pin
            // their sockets forever.
            if replies.len() > REPLY_CACHE_LIMIT {
                replies.retain(|_, b| flush_seq - b.last_flush <= REPLY_CACHE_KEEP);
            }
        }
        if !alive {
            return;
        }
    }
}
