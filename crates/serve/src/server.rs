//! The multi-threaded policy-inference server.
//!
//! Thread layout:
//!
//! * an **accept** thread takes connections off a non-blocking
//!   `TcpListener` and spawns one **connection** thread each;
//! * connection threads decode framed requests
//!   ([`crate::protocol::Message`]) out of a growing byte buffer — one
//!   `read` syscall can drain many pipelined frames — and enqueue
//!   observations into the bounded internal batch queue;
//!   immediate replies (`Pong`, `ServerBusy`, `BadObservation`) go out
//!   through the connection's shared write half;
//! * one **batch worker** pulls size-or-deadline coalesced batches,
//!   runs a single `Mlp::forward_batch` — or the int8-quantized
//!   forward when [`ServerConfig::quantize_int8`] is on and the policy
//!   cleared its agreement gate — and writes every `Action` reply
//!   straight to its connection — no per-request channel hop — cloning
//!   the serving-model `Arc` **once per flush**, so every response in
//!   a batch is computed by exactly one policy version even while a
//!   hot-reload swaps the pointer (no torn reads);
//! * an optional **watcher** thread polls a checkpoint path and applies
//!   validated swaps via the same [`PolicyServer::reload_from`] path.
//!
//! Connections may pipeline: any number of `Observe` frames can be in
//! flight at once, and replies carry the request id they answer.
//! `Observe` replies preserve per-connection request order (the queue
//! is FIFO and the single worker writes each flush in order), while
//! `Pong` and error replies are written immediately and may overtake
//! queued `Action`s.
//!
//! Shutdown is graceful by construction: the queue is closed (new work
//! is refused with `ShuttingDown`), the worker drains every queued
//! request, connection threads notice the flag at their next read
//! timeout, and `shutdown` joins them all before returning the final
//! metrics snapshot.

use crate::batcher::{BatchQueue, PendingRequest, PushError};
use crate::metrics::ServeMetrics;
use crate::protocol::{ErrorCode, Message, WireError};
use ctjam_dqn::checkpoint::CheckpointError;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_dqn::quant::{synthetic_observations, QuantizedPolicy};
use ctjam_nn::batch::Batch;
use ctjam_nn::quant::QuantScratch;
use ctjam_telemetry::JsonValue;
use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime};

/// The batch worker's reply handle: the request id and the connection's
/// shared write half.
struct Reply {
    id: u64,
    writer: ReplyWriter,
}

/// Write half of one connection, shared between its reader thread
/// (immediate `Pong`/error replies) and the batch worker (`Action`
/// replies). A mutex serializes whole frames; reads never take it.
#[derive(Clone)]
struct ReplyWriter {
    stream: Arc<TcpStream>,
    guard: Arc<Mutex<()>>,
}

impl ReplyWriter {
    fn new(stream: Arc<TcpStream>) -> ReplyWriter {
        ReplyWriter {
            stream,
            guard: Arc::new(Mutex::new(())),
        }
    }

    /// Writes one frame; errors just mean the peer is gone.
    fn send(&self, msg: &Message) -> io::Result<()> {
        let _guard = self.guard.lock().expect("writer lock poisoned");
        msg.write_to(&mut (&*self.stream))
    }

    /// Writes pre-encoded frames in one syscall (the batch worker
    /// coalesces every reply a flush owes one connection).
    fn send_bytes(&self, frames: &[u8]) -> io::Result<()> {
        use io::Write;
        let _guard = self.guard.lock().expect("writer lock poisoned");
        (&*self.stream).write_all(frames)
    }

    fn same_connection(&self, other: &ReplyWriter) -> bool {
        Arc::ptr_eq(&self.stream, &other.stream)
    }
}

/// Tunables for one [`PolicyServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Flush a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush at most this long after the oldest queued request arrived.
    pub max_wait: Duration,
    /// Bound on queued requests; pushes beyond it get `ServerBusy`.
    pub queue_capacity: usize,
    /// Read timeout on connections (shutdown-notice latency) and the
    /// checkpoint watcher's poll interval.
    pub poll_interval: Duration,
    /// Serve through the int8-quantized forward path when the policy
    /// clears the greedy-action-agreement gate ([`INT8_MIN_AGREEMENT`]
    /// on [`INT8_HOLDOUT_SIZE`] held-out synthetic observations). A
    /// policy that fails the gate is served in f64 and the rejection is
    /// counted in `quant_gate_failures`; the gate re-runs on every
    /// hot-reload. Off by default — training and evaluation never see
    /// the quantized path.
    pub quantize_int8: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            poll_interval: Duration::from_millis(25),
            quantize_int8: false,
        }
    }
}

/// Greedy-action agreement an int8 policy must reach on the held-out
/// set before the server will use it (§ behavioral gate).
pub const INT8_MIN_AGREEMENT: f64 = 0.995;
/// Rows in the synthetic calibration set (plus corner vectors).
pub const INT8_CALIBRATION_SIZE: usize = 256;
/// Rows in the synthetic hold-out set the gate is measured on.
pub const INT8_HOLDOUT_SIZE: usize = 256;
const INT8_CALIBRATION_SEED: u64 = 0x5ca1ab1e;
const INT8_HOLDOUT_SEED: u64 = 0x0ddba11;

/// Why a checkpoint hot-reload was refused. In every case the old
/// policy keeps serving untouched.
#[derive(Debug)]
pub enum ReloadError {
    /// The file failed `ctjam_dqn::checkpoint` verification (I/O,
    /// magic, version, checksum, or malformed state).
    Checkpoint(CheckpointError),
    /// The new policy disagrees with the serving one on
    /// `(input_size, num_actions)` — clients would break mid-stream.
    ShapeMismatch {
        /// The serving policy's `(input_size, num_actions)`.
        expected: (usize, usize),
        /// The rejected checkpoint's `(input_size, num_actions)`.
        found: (usize, usize),
    },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            ReloadError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: serving (input={}, actions={}), checkpoint (input={}, actions={})",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for ReloadError {}

/// What the batch worker serves with: the f64 policy (always present —
/// it validates reloads and is the fallback) plus, when
/// `quantize_int8` is on **and** the agreement gate passed, its int8
/// twin. One `Arc<ServingModel>` swap per reload keeps the pair
/// consistent: a flush can never mix an old f64 policy with a new
/// quantization or vice versa.
struct ServingModel {
    policy: GreedyPolicy,
    quant: Option<QuantizedPolicy>,
}

/// Quantizes `policy` behind the agreement gate (when asked to) and
/// records the admission or rejection. Quantization happens here — at
/// checkpoint load — never on the serving path.
fn admit_model(
    policy: GreedyPolicy,
    quantize: bool,
    metrics: &Mutex<ServeMetrics>,
) -> ServingModel {
    let quant = if quantize {
        let calibration = synthetic_observations(
            policy.input_size(),
            INT8_CALIBRATION_SEED,
            INT8_CALIBRATION_SIZE,
        );
        let holdout =
            synthetic_observations(policy.input_size(), INT8_HOLDOUT_SEED, INT8_HOLDOUT_SIZE);
        let mut m = metrics.lock().expect("metrics lock poisoned");
        match QuantizedPolicy::quantize_gated(&policy, &calibration, &holdout, INT8_MIN_AGREEMENT) {
            Ok((q, _agreement)) => {
                m.quant_admissions.incr();
                Some(q)
            }
            Err(_) => {
                m.quant_gate_failures.incr();
                None
            }
        }
    } else {
        None
    };
    ServingModel { policy, quant }
}

struct Shared {
    model: RwLock<Arc<ServingModel>>,
    queue: BatchQueue<Reply>,
    shutdown: AtomicBool,
    metrics: Mutex<ServeMetrics>,
    config: ServerConfig,
}

impl Shared {
    fn current_model(&self) -> Arc<ServingModel> {
        Arc::clone(&self.model.read().expect("model lock poisoned"))
    }

    fn metrics(&self) -> std::sync::MutexGuard<'_, ServeMetrics> {
        self.metrics.lock().expect("metrics lock poisoned")
    }

    /// Validate-then-swap. The new policy is fully loaded, verified,
    /// and (when configured) re-quantized before the write lock is
    /// taken, so the swap itself is a pointer store and readers only
    /// ever see a complete model.
    fn reload_from(&self, path: &Path) -> Result<(), ReloadError> {
        let loaded = GreedyPolicy::load_checkpoint(path).map_err(|e| {
            self.metrics().reloads_rejected.incr();
            ReloadError::Checkpoint(e)
        })?;
        let current = self.current_model();
        let expected = (current.policy.input_size(), current.policy.num_actions());
        let found = (loaded.input_size(), loaded.num_actions());
        if expected != found {
            self.metrics().reloads_rejected.incr();
            return Err(ReloadError::ShapeMismatch { expected, found });
        }
        let model = admit_model(loaded, self.config.quantize_int8, &self.metrics);
        *self.model.write().expect("model lock poisoned") = Arc::new(model);
        self.metrics().reloads_ok.incr();
        Ok(())
    }
}

/// A running policy-inference server. Dropping it shuts it down; call
/// [`PolicyServer::shutdown`] to also receive the final metrics.
pub struct PolicyServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl PolicyServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `policy`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        policy: GreedyPolicy,
        config: ServerConfig,
    ) -> io::Result<PolicyServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = Mutex::new(ServeMetrics::new());
        let model = admit_model(policy, config.quantize_int8, &metrics);
        let shared = Arc::new(Shared {
            model: RwLock::new(Arc::new(model)),
            queue: BatchQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            metrics,
            config,
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            thread::spawn(move || accept_loop(&listener, &shared, &connections))
        };
        let worker = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || batch_worker(&shared))
        };
        Ok(PolicyServer {
            shared,
            addr,
            accept: Some(accept),
            worker: Some(worker),
            watcher: None,
            connections,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Validates the checkpoint at `path` and atomically swaps it in.
    /// Connections are never dropped: in-flight batches finish on the
    /// policy they started with, later batches use the new one.
    ///
    /// # Errors
    ///
    /// [`ReloadError`] when the file is corrupt, unreadable, or shaped
    /// differently from the serving policy; the old policy keeps
    /// serving.
    pub fn reload_from(&self, path: &Path) -> Result<(), ReloadError> {
        self.shared.reload_from(path)
    }

    /// Spawns the watcher thread: every `poll_interval` it stats
    /// `path`, and on a modification-time change runs the same
    /// validate-then-swap as [`PolicyServer::reload_from`]. Rejected
    /// files are counted in the metrics and the old policy keeps
    /// serving. Checkpoint writes are atomic (tempfile + rename), so a
    /// new modification time always names a complete file.
    pub fn watch_checkpoint(&mut self, path: PathBuf) {
        let shared = Arc::clone(&self.shared);
        self.watcher = Some(thread::spawn(move || {
            let mut last_seen = file_mtime(&path);
            while !shared.shutdown.load(Ordering::SeqCst) {
                thread::sleep(shared.config.poll_interval);
                let mtime = file_mtime(&path);
                if mtime.is_some() && mtime != last_seen {
                    last_seen = mtime;
                    let _ = shared.reload_from(&path);
                }
            }
        }));
    }

    /// Whether the server is currently answering through the int8
    /// path — i.e. `quantize_int8` was requested **and** the serving
    /// policy cleared the agreement gate. `false` means f64 (either
    /// int8 was never requested, or the gate rejected this policy).
    pub fn int8_active(&self) -> bool {
        self.shared.current_model().quant.is_some()
    }

    /// Snapshot of the server's metrics as JSON.
    pub fn metrics_json(&self) -> JsonValue {
        self.shared.metrics().to_json()
    }

    /// Mean requests per flushed batch so far (NaN before any flush).
    pub fn mean_batch_occupancy(&self) -> f64 {
        self.shared.metrics().mean_batch_occupancy()
    }

    /// Drains and stops the server: refuses new work, answers every
    /// queued request, joins all threads, and returns the final metrics
    /// snapshot.
    pub fn shutdown(mut self) -> JsonValue {
        self.stop();
        self.shared.metrics().to_json()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PolicyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn file_mtime(path: &Path) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics().connections.incr();
                let shared = Arc::clone(shared);
                let handle = thread::spawn(move || connection_loop(stream, &shared));
                connections
                    .lock()
                    .expect("connection list poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            // Transient accept failures (e.g. a peer resetting mid
            // handshake) must not kill the listener.
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let stream = Arc::new(stream);
    let writer = ReplyWriter::new(Arc::clone(&stream));
    // Frames are decoded out of this buffer, so a read timeout can
    // never lose the prefix of a half-arrived frame, and one syscall
    // drains as many pipelined frames as the kernel has buffered.
    let mut buf: Vec<u8> = Vec::new();
    let mut consumed = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match Message::decode(&buf[consumed..]) {
            Ok((msg, used)) => {
                consumed += used;
                if !dispatch(shared, &writer, msg) {
                    return;
                }
                continue;
            }
            Err(WireError::Truncated) => {
                // Incomplete frame: keep the bytes, read more below.
                buf.drain(..consumed);
                consumed = 0;
            }
            Err(_) => {
                // Hostile or corrupt bytes: count it and drop the
                // connection — resynchronizing an arbitrary stream is
                // not worth the attack surface.
                shared.metrics().wire_errors.incr();
                return;
            }
        }
        match (&*stream).read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    shared.metrics().wire_errors.incr(); // EOF mid-frame
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one decoded frame; `false` closes the connection.
fn dispatch(shared: &Arc<Shared>, writer: &ReplyWriter, msg: Message) -> bool {
    match msg {
        Message::Ping { id } => {
            shared.metrics().pings.incr();
            writer.send(&Message::Pong { id }).is_ok()
        }
        Message::Observe { id, observation } => {
            shared.metrics().requests.incr();
            handle_observe(shared, writer, id, observation)
        }
        // A response kind arriving at the server is a protocol
        // violation by the peer.
        Message::Action { .. } | Message::Pong { .. } | Message::Error { .. } => {
            shared.metrics().wire_errors.incr();
            false
        }
    }
}

/// Enqueues one observation; the batch worker writes the `Action`
/// reply. Rejections are written here, and `ShuttingDown` also closes
/// the connection.
fn handle_observe(
    shared: &Arc<Shared>,
    writer: &ReplyWriter,
    id: u64,
    observation: Vec<f64>,
) -> bool {
    let expected = shared.current_model().policy.input_size();
    if observation.len() != expected {
        shared.metrics().bad_observations.incr();
        return writer
            .send(&Message::Error {
                id,
                code: ErrorCode::BadObservation,
            })
            .is_ok();
    }
    let pending = PendingRequest {
        observation,
        enqueued: Instant::now(),
        reply: Reply {
            id,
            writer: writer.clone(),
        },
    };
    match shared.queue.push(pending) {
        Ok(()) => true,
        Err(PushError::Busy) => {
            shared.metrics().busy_rejections.incr();
            writer
                .send(&Message::Error {
                    id,
                    code: ErrorCode::ServerBusy,
                })
                .is_ok()
        }
        Err(PushError::Closed) => {
            let _ = writer.send(&Message::Error {
                id,
                code: ErrorCode::ShuttingDown,
            });
            false
        }
    }
}

fn batch_worker(shared: &Arc<Shared>) {
    let mut pending: Vec<PendingRequest<Reply>> = Vec::new();
    let mut batch = Batch::default();
    let mut actions: Vec<usize> = Vec::new();
    let mut replies: Vec<(ReplyWriter, Vec<u8>)> = Vec::new();
    let mut cached = shared.current_model();
    let mut scratch = cached.policy.scratch();
    let mut quant_scratch = QuantScratch::default();
    loop {
        let alive = shared.queue.next_batch(
            shared.config.max_batch,
            shared.config.max_wait,
            &mut pending,
        );
        if !pending.is_empty() {
            // One model per flush: every request in this batch is
            // answered by the same policy version (and the same
            // quantization of it), reload or not.
            let model = shared.current_model();
            if !Arc::ptr_eq(&model, &cached) {
                scratch = model.policy.scratch();
                cached = Arc::clone(&model);
            }
            batch.reset(model.policy.input_size());
            for p in &pending {
                batch.push_row(&p.observation);
            }
            let int8 = match &model.quant {
                Some(quant) => {
                    quant.act_greedy_batch(&batch, &mut quant_scratch, &mut actions);
                    true
                }
                None => {
                    model
                        .policy
                        .act_greedy_batch(&batch, &mut scratch, &mut actions);
                    false
                }
            };
            let now = Instant::now();
            {
                let mut m = shared.metrics();
                m.batches.incr();
                if int8 {
                    m.int8_batches.incr();
                }
                m.batch_size.record(pending.len() as f64);
                m.queue_depth.record(shared.queue.depth() as f64);
                m.responses.add(pending.len() as u64);
                for p in &pending {
                    m.latency_us
                        .record(now.duration_since(p.enqueued).as_secs_f64() * 1e6);
                }
            }
            // Coalesce this flush's replies: one buffered write per
            // connection instead of one syscall per request, preserving
            // per-connection order. A write failure just means that
            // connection died mid-flight; nothing to do.
            replies.clear();
            for (p, &action) in pending.iter().zip(&actions) {
                let msg = Message::Action {
                    id: p.reply.id,
                    action: action as u32,
                };
                match replies
                    .iter_mut()
                    .find(|(w, _)| w.same_connection(&p.reply.writer))
                {
                    Some((_, frames)) => msg.encode_into(frames),
                    None => {
                        let mut frames = Vec::new();
                        msg.encode_into(&mut frames);
                        replies.push((p.reply.writer.clone(), frames));
                    }
                }
            }
            for (writer, frames) in &replies {
                let _ = writer.send_bytes(frames);
            }
        }
        if !alive {
            return;
        }
    }
}
