//! Server observability built on `ctjam-telemetry`.
//!
//! One [`ServeMetrics`] lives behind a mutex in the server's shared
//! state; connection threads and the batch workers update it, and
//! [`ServeMetrics::to_json`] snapshots everything — counters plus the
//! batch-size / queue-depth / latency histograms with their
//! p50/p95/p99 summaries — into one `JsonValue` for export. In
//! addition every tenant carries its own [`TenantMetrics`] (requests,
//! responses, load-shed and reload accounting, a latency histogram);
//! the server's snapshot nests them under a `"tenants"` object keyed
//! by tenant id. Global counters aggregate across tenants, so a
//! single-tenant deployment reads exactly like it did pre-tenancy.

use ctjam_telemetry::export::histogram_json;
use ctjam_telemetry::stats::{Counter, Histogram};
use ctjam_telemetry::JsonValue;

/// Counters and distributions describing one server's lifetime.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: Counter,
    /// Observe requests read off the wire.
    pub requests: Counter,
    /// Greedy actions served.
    pub responses: Counter,
    /// Pings answered.
    pub pings: Counter,
    /// Observe requests refused with `ServerBusy`.
    pub busy_rejections: Counter,
    /// Observe requests shed by the queue-delay SLO (`Overloaded`).
    pub slo_rejections: Counter,
    /// Observe requests addressed to a tenant id with no model.
    pub unknown_tenant: Counter,
    /// Observe requests refused for a wrong observation width.
    pub bad_observations: Counter,
    /// Connections dropped for protocol violations.
    pub wire_errors: Counter,
    /// Checkpoint hot-reloads applied.
    pub reloads_ok: Counter,
    /// Checkpoint hot-reloads rejected (corrupt or incompatible).
    pub reloads_rejected: Counter,
    /// int8 policies admitted by the agreement gate (at bind or reload).
    pub quant_admissions: Counter,
    /// int8 quantizations rejected by the agreement gate (the server
    /// fell back to the f64 policy; serving was never interrupted).
    pub quant_gate_failures: Counter,
    /// Batches served through the int8 path.
    pub int8_batches: Counter,
    /// Batches flushed into `forward_batch`.
    pub batches: Counter,
    /// Requests per flushed batch (mean = batch occupancy).
    pub batch_size: Histogram,
    /// Queue depth observed after each flush.
    pub queue_depth: Histogram,
    /// Enqueue→reply latency per request, microseconds.
    pub latency_us: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Zeroed metrics. Histogram ranges cover a loopback deployment:
    /// batches up to 256 requests, queue depths to 1024, latencies to
    /// 50 ms at 50 µs resolution (percentile error is one bin width).
    pub fn new() -> Self {
        ServeMetrics {
            connections: Counter::new("connections"),
            requests: Counter::new("requests"),
            responses: Counter::new("responses"),
            pings: Counter::new("pings"),
            busy_rejections: Counter::new("busy_rejections"),
            slo_rejections: Counter::new("slo_rejections"),
            unknown_tenant: Counter::new("unknown_tenant"),
            bad_observations: Counter::new("bad_observations"),
            wire_errors: Counter::new("wire_errors"),
            reloads_ok: Counter::new("reloads_ok"),
            reloads_rejected: Counter::new("reloads_rejected"),
            quant_admissions: Counter::new("quant_admissions"),
            quant_gate_failures: Counter::new("quant_gate_failures"),
            int8_batches: Counter::new("int8_batches"),
            batches: Counter::new("batches"),
            batch_size: Histogram::new("batch_size", 0.0, 256.0, 256),
            queue_depth: Histogram::new("queue_depth", 0.0, 1024.0, 128),
            latency_us: Histogram::new("latency_us", 0.0, 50_000.0, 1000),
        }
    }

    /// Mean requests per flushed batch (NaN before the first flush).
    pub fn mean_batch_occupancy(&self) -> f64 {
        self.batch_size.mean()
    }

    /// Everything as one JSON object: a `counters` map plus one
    /// histogram object (buckets and p50/p95/p99) per distribution.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for c in [
            &self.connections,
            &self.requests,
            &self.responses,
            &self.pings,
            &self.busy_rejections,
            &self.slo_rejections,
            &self.unknown_tenant,
            &self.bad_observations,
            &self.wire_errors,
            &self.reloads_ok,
            &self.reloads_rejected,
            &self.quant_admissions,
            &self.quant_gate_failures,
            &self.int8_batches,
            &self.batches,
        ] {
            counters.set(c.name, c.value);
        }
        let mut obj = JsonValue::object();
        obj.set("counters", counters)
            .set("batch_size", histogram_json(&self.batch_size))
            .set("queue_depth", histogram_json(&self.queue_depth))
            .set("latency_us", histogram_json(&self.latency_us))
            .set("mean_batch_occupancy", self.mean_batch_occupancy());
        obj
    }
}

/// Per-tenant observability: one of these lives inside every tenant
/// entry, updated by connection threads (admission) and batch workers
/// (service). The server snapshot nests [`TenantMetrics::to_json`]
/// under `"tenants" → "<id>"`.
#[derive(Debug, Clone)]
pub struct TenantMetrics {
    /// Observe requests addressed to this tenant.
    pub requests: Counter,
    /// Greedy actions served for this tenant.
    pub responses: Counter,
    /// Requests shed by the queue-delay SLO.
    pub slo_rejections: Counter,
    /// Requests refused for a wrong observation width.
    pub bad_observations: Counter,
    /// Checkpoint hot-reloads applied to this tenant.
    pub reloads_ok: Counter,
    /// Checkpoint hot-reloads rejected for this tenant.
    pub reloads_rejected: Counter,
    /// int8 quantizations admitted by the gate for this tenant.
    pub quant_admissions: Counter,
    /// int8 quantizations rejected by the gate (served f64 instead).
    pub quant_gate_failures: Counter,
    /// Enqueue→reply latency per request, microseconds.
    pub latency_us: Histogram,
}

impl Default for TenantMetrics {
    fn default() -> Self {
        TenantMetrics::new()
    }
}

impl TenantMetrics {
    /// Zeroed per-tenant metrics (latency range as [`ServeMetrics`]).
    pub fn new() -> Self {
        TenantMetrics {
            requests: Counter::new("requests"),
            responses: Counter::new("responses"),
            slo_rejections: Counter::new("slo_rejections"),
            bad_observations: Counter::new("bad_observations"),
            reloads_ok: Counter::new("reloads_ok"),
            reloads_rejected: Counter::new("reloads_rejected"),
            quant_admissions: Counter::new("quant_admissions"),
            quant_gate_failures: Counter::new("quant_gate_failures"),
            latency_us: Histogram::new("latency_us", 0.0, 50_000.0, 1000),
        }
    }

    /// The tenant's counters and latency histogram as one JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for c in [
            &self.requests,
            &self.responses,
            &self.slo_rejections,
            &self.bad_observations,
            &self.reloads_ok,
            &self.reloads_rejected,
            &self.quant_admissions,
            &self.quant_gate_failures,
        ] {
            counters.set(c.name, c.value);
        }
        let mut obj = JsonValue::object();
        obj.set("counters", counters)
            .set("latency_us", histogram_json(&self.latency_us));
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_snapshot_carries_counters_and_latency() {
        let mut t = TenantMetrics::new();
        t.requests.add(5);
        t.responses.add(4);
        t.slo_rejections.incr();
        t.latency_us.record(120.0);
        let json = t.to_json();
        let counters = json.get("counters").expect("counters");
        assert_eq!(counters.get("requests"), Some(&JsonValue::Num(5.0)));
        assert_eq!(counters.get("slo_rejections"), Some(&JsonValue::Num(1.0)));
        assert!(json.get("latency_us").and_then(|l| l.get("p99")).is_some());
    }

    #[test]
    fn snapshot_carries_counters_and_percentiles() {
        let mut m = ServeMetrics::new();
        m.requests.add(10);
        m.responses.add(9);
        m.busy_rejections.incr();
        for size in [4.0, 8.0, 8.0] {
            m.batch_size.record(size);
            m.batches.incr();
        }
        for us in [100.0, 120.0, 5_000.0] {
            m.latency_us.record(us);
        }
        let json = m.to_json();
        let counters = json.get("counters").expect("counters");
        assert_eq!(counters.get("requests"), Some(&JsonValue::Num(10.0)));
        assert_eq!(counters.get("busy_rejections"), Some(&JsonValue::Num(1.0)));
        let latency = json.get("latency_us").expect("latency_us");
        assert!(latency.get("p50").is_some());
        assert!(latency.get("p99").is_some());
        let occupancy = m.mean_batch_occupancy();
        assert!((occupancy - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            json.get("mean_batch_occupancy"),
            Some(&JsonValue::Num(occupancy))
        );
    }
}
