//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic            b"CTJS"
//! 4       1     protocol version (1 or 2)
//! 5       1     message kind     (see the `KIND_*` constants)
//! 6       8     request id       u64 little-endian, echoed in replies
//! 14      4     payload length   u32 little-endian, ≤ MAX_PAYLOAD
//! 18      n     payload          kind-specific, little-endian
//! ```
//!
//! Payloads: a version-1 *observe* request carries `8·k` bytes of `f64`
//! features; a version-2 *observe* prefixes them with a `u32` tenant
//! (model) id, addressing one of the server's tenants. An *action*
//! response carries one `u32`; an *error* response carries one `u16`
//! [`ErrorCode`]; *ping*/*pong* are empty.
//!
//! **Version negotiation is per-frame and implicit.** Decoders accept
//! both versions; encoders emit the lowest version that can carry the
//! message — version 1 for everything except an `Observe` addressed to
//! a non-default tenant, which needs the v2 tenant prefix. A v1 frame
//! therefore means "the default tenant" ([`DEFAULT_TENANT`]), pre-v2
//! clients keep working byte-identically, and every reply the server
//! writes is readable by a v1 client.
//!
//! Decoding is total: any byte sequence — hostile, truncated, or
//! corrupted — produces a typed [`WireError`], never a panic, and an
//! oversized length prefix is rejected from the 18-byte header alone,
//! before any payload allocation or read (property-tested in
//! `tests/properties.rs`).

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every CTJam-serve frame.
pub const MAGIC: [u8; 4] = *b"CTJS";

/// Newest wire-protocol version this crate speaks (adds the tenant id
/// to `Observe`; frames of [`PROTO_V1`] are still accepted and decode
/// onto [`DEFAULT_TENANT`]).
pub const PROTO_VERSION: u8 = 2;

/// The original, tenant-unaware protocol version.
pub const PROTO_V1: u8 = 1;

/// The tenant a v1 `Observe` frame (no tenant id on the wire) is
/// routed to, and the one [`crate::server::PolicyServer::bind`] serves.
pub const DEFAULT_TENANT: u32 = 0;

/// Fixed frame-header size in bytes (magic + version + kind + id + length).
pub const HEADER_LEN: usize = 18;

/// Upper bound on a frame payload. A header announcing more is rejected
/// with [`WireError::FrameTooLarge`] *before* any allocation, so a
/// hostile length prefix cannot be used as an allocation bomb.
pub const MAX_PAYLOAD: u32 = 1 << 20;

const KIND_OBSERVE: u8 = 0x01;
const KIND_PING: u8 = 0x02;
const KIND_ACTION: u8 = 0x81;
const KIND_PONG: u8 = 0x82;
const KIND_ERROR: u8 = 0x8E;

/// Typed decode failure. Every way a byte stream can be wrong maps to
/// exactly one variant; none of them panic or allocate proportionally
/// to attacker-controlled lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    FrameTooLarge(u32),
    /// The input ended before the frame did.
    Truncated,
    /// The payload length or contents do not fit the message kind.
    BadPayload(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown message kind {k:#04x}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Application-level rejection codes carried by [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The server's request queue is full — back off and retry.
    ServerBusy,
    /// The observation width does not match the served policy.
    BadObservation,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The v2 tenant id names no registered model.
    UnknownTenant,
    /// Admission control shed the request: the estimated queue delay
    /// exceeds the server's `max_queue_delay` SLO — back off and retry.
    Overloaded,
}

impl ErrorCode {
    /// Wire representation.
    pub fn to_u16(self) -> u16 {
        match self {
            ErrorCode::ServerBusy => 1,
            ErrorCode::BadObservation => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::UnknownTenant => 4,
            ErrorCode::Overloaded => 5,
        }
    }

    /// Parse the wire representation.
    pub fn from_u16(code: u16) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::ServerBusy),
            2 => Some(ErrorCode::BadObservation),
            3 => Some(ErrorCode::ShuttingDown),
            4 => Some(ErrorCode::UnknownTenant),
            5 => Some(ErrorCode::Overloaded),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::ServerBusy => write!(f, "server busy"),
            ErrorCode::BadObservation => write!(f, "bad observation"),
            ErrorCode::ShuttingDown => write!(f, "server shutting down"),
            ErrorCode::UnknownTenant => write!(f, "unknown tenant"),
            ErrorCode::Overloaded => write!(f, "queue-delay SLO exceeded"),
        }
    }
}

/// One decoded protocol message (request or response).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: choose a greedy action for this observation.
    Observe {
        /// Request id, echoed in the reply.
        id: u64,
        /// Tenant (model) id the observation is addressed to.
        /// [`DEFAULT_TENANT`] encodes as a v1 frame (no id on the
        /// wire); anything else needs a v2 frame.
        tenant: u32,
        /// Observation features (`3 × I` values for the paper policy).
        observation: Vec<f64>,
    },
    /// Client → server: liveness probe.
    Ping {
        /// Request id, echoed in the reply.
        id: u64,
    },
    /// Server → client: the greedy action for request `id`.
    Action {
        /// Echoed request id.
        id: u64,
        /// Flat action index in `0..C×PL`.
        action: u32,
    },
    /// Server → client: reply to [`Message::Ping`].
    Pong {
        /// Echoed request id.
        id: u64,
    },
    /// Server → client: typed rejection of request `id`.
    Error {
        /// Echoed request id.
        id: u64,
        /// Why the request was rejected.
        code: ErrorCode,
    },
}

impl Message {
    /// The request id carried by any message variant.
    pub fn id(&self) -> u64 {
        match *self {
            Message::Observe { id, .. }
            | Message::Ping { id }
            | Message::Action { id, .. }
            | Message::Pong { id }
            | Message::Error { id, .. } => id,
        }
    }

    /// Whether this variant is a client→server request.
    pub fn is_request(&self) -> bool {
        matches!(self, Message::Observe { .. } | Message::Ping { .. })
    }

    fn kind(&self) -> u8 {
        match self {
            Message::Observe { .. } => KIND_OBSERVE,
            Message::Ping { .. } => KIND_PING,
            Message::Action { .. } => KIND_ACTION,
            Message::Pong { .. } => KIND_PONG,
            Message::Error { .. } => KIND_ERROR,
        }
    }

    /// Appends the framed encoding to `buf`, at the lowest protocol
    /// version that can carry the message: version 2 only for an
    /// `Observe` addressed to a non-default tenant (the tenant id needs
    /// the v2 payload prefix), version 1 for everything else — so
    /// default-tenant traffic and every server reply stay byte-readable
    /// by v1 peers.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let (version, payload_len): (u8, u32) = match self {
            Message::Observe {
                tenant,
                observation,
                ..
            } => {
                if *tenant == DEFAULT_TENANT {
                    (PROTO_V1, (observation.len() * 8) as u32)
                } else {
                    (PROTO_VERSION, (4 + observation.len() * 8) as u32)
                }
            }
            Message::Ping { .. } | Message::Pong { .. } => (PROTO_V1, 0),
            Message::Action { .. } => (PROTO_V1, 4),
            Message::Error { .. } => (PROTO_V1, 2),
        };
        buf.reserve(HEADER_LEN + payload_len as usize);
        buf.extend_from_slice(&MAGIC);
        buf.push(version);
        buf.push(self.kind());
        buf.extend_from_slice(&self.id().to_le_bytes());
        buf.extend_from_slice(&payload_len.to_le_bytes());
        match self {
            Message::Observe {
                tenant,
                observation,
                ..
            } => {
                if version == PROTO_VERSION {
                    buf.extend_from_slice(&tenant.to_le_bytes());
                }
                for v in observation {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Message::Ping { .. } | Message::Pong { .. } => {}
            Message::Action { action, .. } => buf.extend_from_slice(&action.to_le_bytes()),
            Message::Error { code, .. } => buf.extend_from_slice(&code.to_u16().to_le_bytes()),
        }
    }

    /// The framed encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decodes one frame from the front of `bytes`, returning the
    /// message and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`] on any malformed, truncated, or
    /// oversized input. Never panics, and never allocates before the
    /// length prefix has been validated against [`MAX_PAYLOAD`].
    pub fn decode(bytes: &[u8]) -> Result<(Message, usize), WireError> {
        let header = decode_header(bytes)?;
        let total = HEADER_LEN + header.payload_len as usize;
        if bytes.len() < total {
            return Err(WireError::Truncated);
        }
        let payload = &bytes[HEADER_LEN..total];
        let msg = decode_payload(&header, payload)?;
        Ok((msg, total))
    }

    /// Writes the framed encoding to `w` (buffered into one `write_all`
    /// so a frame is never interleaved with another writer's bytes on a
    /// shared stream).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Reads one frame from `r`. Returns `Ok(None)` on a clean EOF
    /// *before* the first byte of a frame; an EOF mid-frame is
    /// [`WireError::Truncated`].
    ///
    /// # Errors
    ///
    /// [`RecvError::Io`] for transport failures (including read
    /// timeouts, surfaced as `WouldBlock`/`TimedOut`),
    /// [`RecvError::Wire`] for protocol violations.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Option<Message>, RecvError> {
        let mut header = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            match r.read(&mut header[filled..]) {
                Ok(0) => {
                    return if filled == 0 {
                        Ok(None)
                    } else {
                        Err(RecvError::Wire(WireError::Truncated))
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // A read timeout mid-header would otherwise lose the
                // bytes already consumed; in practice the server only
                // sees timeouts while `filled == 0` (idle between
                // frames), and a client under a hostile peer drops the
                // connection on any Io error anyway.
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
        let parsed = decode_header(&header).map_err(RecvError::Wire)?;
        let mut payload = vec![0u8; parsed.payload_len as usize];
        r.read_exact(&mut payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                RecvError::Wire(WireError::Truncated)
            } else {
                RecvError::Io(e)
            }
        })?;
        decode_payload(&parsed, &payload)
            .map(Some)
            .map_err(RecvError::Wire)
    }
}

/// Transport-or-protocol failure while reading a frame from a stream.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying transport failed (including read timeouts).
    Io(io::Error),
    /// The peer sent bytes that violate the protocol.
    Wire(WireError),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

struct Header {
    version: u8,
    kind: u8,
    id: u64,
    payload_len: u32,
}

/// Validates the fixed 18-byte header prefix of `bytes`. The length
/// prefix is checked against [`MAX_PAYLOAD`] here, so callers reject
/// oversized frames before touching (or allocating for) any payload.
fn decode_header(bytes: &[u8]) -> Result<Header, WireError> {
    if bytes.len() >= 4 && bytes[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&bytes[..4]);
        return Err(WireError::BadMagic(m));
    }
    if bytes.len() < HEADER_LEN {
        // Too short to even hold a header; if the available prefix
        // already disagrees with the magic, say so.
        if !MAGIC.starts_with(&bytes[..bytes.len().min(4)]) {
            let mut m = [0u8; 4];
            m[..bytes.len().min(4)].copy_from_slice(&bytes[..bytes.len().min(4)]);
            return Err(WireError::BadMagic(m));
        }
        return Err(WireError::Truncated);
    }
    let version = bytes[4];
    if version != PROTO_V1 && version != PROTO_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = bytes[5];
    if !matches!(
        kind,
        KIND_OBSERVE | KIND_PING | KIND_ACTION | KIND_PONG | KIND_ERROR
    ) {
        return Err(WireError::BadKind(kind));
    }
    let id = u64::from_le_bytes(bytes[6..14].try_into().expect("8 header bytes"));
    let payload_len = u32::from_le_bytes(bytes[14..18].try_into().expect("4 header bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge(payload_len));
    }
    Ok(Header {
        version,
        kind,
        id,
        payload_len,
    })
}

fn decode_payload(header: &Header, payload: &[u8]) -> Result<Message, WireError> {
    let id = header.id;
    match header.kind {
        KIND_OBSERVE => {
            // v2 prefixes the features with a u32 tenant id; a v1 frame
            // is implicitly addressed to the default tenant.
            let (tenant, features) = if header.version == PROTO_VERSION {
                let Some((tenant_bytes, rest)) = payload.split_first_chunk::<4>() else {
                    return Err(WireError::BadPayload("v2 observe shorter than a tenant id"));
                };
                (u32::from_le_bytes(*tenant_bytes), rest)
            } else {
                (DEFAULT_TENANT, payload)
            };
            if !features.len().is_multiple_of(8) {
                return Err(WireError::BadPayload(
                    "observation bytes not a multiple of 8",
                ));
            }
            let observation = features
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            Ok(Message::Observe {
                id,
                tenant,
                observation,
            })
        }
        KIND_PING => {
            if !payload.is_empty() {
                return Err(WireError::BadPayload("ping carries no payload"));
            }
            Ok(Message::Ping { id })
        }
        KIND_ACTION => {
            let bytes: [u8; 4] = payload
                .try_into()
                .map_err(|_| WireError::BadPayload("action payload must be 4 bytes"))?;
            Ok(Message::Action {
                id,
                action: u32::from_le_bytes(bytes),
            })
        }
        KIND_PONG => {
            if !payload.is_empty() {
                return Err(WireError::BadPayload("pong carries no payload"));
            }
            Ok(Message::Pong { id })
        }
        KIND_ERROR => {
            let bytes: [u8; 2] = payload
                .try_into()
                .map_err(|_| WireError::BadPayload("error payload must be 2 bytes"))?;
            let code = ErrorCode::from_u16(u16::from_le_bytes(bytes))
                .ok_or(WireError::BadPayload("unknown error code"))?;
            Ok(Message::Error { id, code })
        }
        _ => unreachable!("decode_header validated the kind"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Observe {
                id: 7,
                tenant: DEFAULT_TENANT,
                observation: vec![0.0, -1.5, f64::NAN, 1e300],
            },
            Message::Observe {
                id: u64::MAX,
                tenant: DEFAULT_TENANT,
                observation: vec![],
            },
            Message::Observe {
                id: 11,
                tenant: 0xCAFE,
                observation: vec![2.0, -0.25],
            },
            Message::Observe {
                id: 12,
                tenant: u32::MAX,
                observation: vec![],
            },
            Message::Ping { id: 0 },
            Message::Action {
                id: 42,
                action: 159,
            },
            Message::Pong { id: 9 },
            Message::Error {
                id: 3,
                code: ErrorCode::ServerBusy,
            },
        ]
    }

    #[test]
    fn round_trips_bit_exactly() {
        for msg in samples() {
            let bytes = msg.encode();
            let (back, used) = Message::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            // NaN payloads compare unequal under PartialEq; compare the
            // re-encoding instead, which is bit-exact by construction.
            assert_eq!(back.encode(), bytes, "{msg:?}");
        }
    }

    #[test]
    fn streaming_round_trip_and_clean_eof() {
        let mut wire = Vec::new();
        for msg in samples() {
            msg.write_to(&mut wire).unwrap();
        }
        let mut cursor = io::Cursor::new(wire);
        for msg in samples() {
            let got = Message::read_from(&mut cursor).unwrap().unwrap();
            assert_eq!(got.encode(), msg.encode());
        }
        assert!(Message::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn golden_frame_layout() {
        // Replies stay v1 frames — a pre-v2 client can read them.
        let bytes = Message::Action {
            id: 0x0102030405060708,
            action: 0xA1B2,
        }
        .encode();
        assert_eq!(&bytes[..4], b"CTJS");
        assert_eq!(bytes[4], PROTO_V1);
        assert_eq!(bytes[5], KIND_ACTION);
        assert_eq!(&bytes[6..14], &0x0102030405060708u64.to_le_bytes());
        assert_eq!(&bytes[14..18], &4u32.to_le_bytes());
        assert_eq!(&bytes[18..], &0xA1B2u32.to_le_bytes());
    }

    #[test]
    fn golden_v1_vs_v2_observe_layout() {
        // Default tenant: byte-identical to the pre-tenancy v1 frame.
        let v1 = Message::Observe {
            id: 3,
            tenant: DEFAULT_TENANT,
            observation: vec![1.5],
        }
        .encode();
        assert_eq!(v1[4], PROTO_V1);
        assert_eq!(&v1[14..18], &8u32.to_le_bytes());
        assert_eq!(&v1[18..], &1.5f64.to_le_bytes());

        // Non-default tenant: v2 frame, payload = tenant id + features.
        let v2 = Message::Observe {
            id: 3,
            tenant: 0xDEADBEEF,
            observation: vec![1.5],
        }
        .encode();
        assert_eq!(v2[4], PROTO_VERSION);
        assert_eq!(&v2[14..18], &12u32.to_le_bytes());
        assert_eq!(&v2[18..22], &0xDEADBEEFu32.to_le_bytes());
        assert_eq!(&v2[22..], &1.5f64.to_le_bytes());
    }

    #[test]
    fn v2_observe_shorter_than_a_tenant_id_is_typed() {
        let mut bytes = Message::Observe {
            id: 1,
            tenant: 9,
            observation: vec![],
        }
        .encode();
        // Shrink the v2 payload below the 4-byte tenant prefix.
        bytes[14..18].copy_from_slice(&2u32.to_le_bytes());
        bytes.truncate(HEADER_LEN + 2);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadPayload(_))
        ));
    }

    #[test]
    fn typed_errors_for_each_header_violation() {
        let good = Message::Ping { id: 1 }.encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(Message::decode(&bad), Err(WireError::BadMagic(_))));

        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(Message::decode(&bad), Err(WireError::BadVersion(99)));

        let mut bad = good.clone();
        bad[5] = 0x7F;
        assert_eq!(Message::decode(&bad), Err(WireError::BadKind(0x7F)));

        for cut in 0..good.len() {
            assert_eq!(
                Message::decode(&good[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_payload() {
        let mut bytes = Message::Ping { id: 1 }.encode();
        bytes[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        // Only the header is present — rejection must come from the
        // length check, not from running out of payload bytes.
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::FrameTooLarge(MAX_PAYLOAD + 1))
        );
        let mut cursor = io::Cursor::new(bytes);
        assert!(matches!(
            Message::read_from(&mut cursor),
            Err(RecvError::Wire(WireError::FrameTooLarge(_)))
        ));
    }

    #[test]
    fn payload_shape_violations_are_typed() {
        let mut bytes = Message::Observe {
            id: 1,
            tenant: DEFAULT_TENANT,
            observation: vec![1.0],
        }
        .encode();
        bytes[14..18].copy_from_slice(&7u32.to_le_bytes());
        bytes.truncate(HEADER_LEN + 7);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadPayload(_))
        ));

        let mut bytes = Message::Error {
            id: 1,
            code: ErrorCode::ShuttingDown,
        }
        .encode();
        bytes[18..20].copy_from_slice(&999u16.to_le_bytes());
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::BadPayload("unknown error code"))
        );
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::ServerBusy,
            ErrorCode::BadObservation,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::from_u16(code.to_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
    }

    #[test]
    fn mid_frame_eof_is_truncated_not_io() {
        let bytes = Message::Observe {
            id: 5,
            tenant: 17,
            observation: vec![2.5, -2.5],
        }
        .encode();
        for cut in 1..bytes.len() {
            let mut cursor = io::Cursor::new(&bytes[..cut]);
            match Message::read_from(&mut cursor) {
                Err(RecvError::Wire(_)) => {}
                other => panic!("cut {cut}: expected wire error, got {other:?}"),
            }
        }
    }
}
