//! A small blocking client for the policy server.
//!
//! One [`PolicyClient`] wraps one TCP connection and issues one request
//! at a time: it assigns monotonically increasing request ids, checks
//! the echo on every reply, and surfaces server-side rejections
//! ([`crate::protocol::ErrorCode`]) as typed [`ClientError`]s. For
//! concurrency, open one client per thread — the load harness in
//! `crates/bench` and the chaos tests both do exactly that.

use crate::protocol::{ErrorCode, Message, RecvError, WireError, DEFAULT_TENANT};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection lost, reset, timeout).
    Io(io::Error),
    /// The server sent bytes violating the protocol.
    Wire(WireError),
    /// The server refused the request with a typed code.
    Rejected(ErrorCode),
    /// The server closed the connection before replying.
    Closed,
    /// The server answered with the wrong message kind or request id.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected(code) => write!(f, "request rejected: {code}"),
            ClientError::Closed => write!(f, "connection closed before the reply"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// One blocking connection to a [`crate::server::PolicyServer`].
///
/// Requests carry the client's tenant id
/// ([`crate::protocol::DEFAULT_TENANT`] unless changed via
/// [`PolicyClient::connect_tenant`] or [`PolicyClient::set_tenant`]).
/// A default-tenant client emits byte-identical v1 frames, so it can
/// talk to any server version.
#[derive(Debug)]
pub struct PolicyClient {
    stream: TcpStream,
    next_id: u64,
    tenant: u32,
}

impl PolicyClient {
    /// Connects to the server, addressing the default tenant.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<PolicyClient> {
        PolicyClient::connect_tenant(addr, DEFAULT_TENANT)
    }

    /// Connects to the server, addressing tenant `tenant` (the tenant
    /// id travels in every `Observe` frame; there is no handshake).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect_tenant<A: ToSocketAddrs>(addr: A, tenant: u32) -> io::Result<PolicyClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PolicyClient {
            stream,
            next_id: 0,
            tenant,
        })
    }

    /// The tenant id this client stamps on `Observe` requests.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Switches the tenant for subsequent requests. Takes effect on
    /// the next [`PolicyClient::act`] call — the connection is shared
    /// state on the server only per request, never per session.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
    }

    /// Connects with retries — the reconnect path after a server
    /// restart: up to `attempts` tries spaced `delay` apart.
    ///
    /// # Errors
    ///
    /// The last connect failure once every attempt is exhausted.
    pub fn connect_retry(
        addr: SocketAddr,
        attempts: usize,
        delay: Duration,
    ) -> io::Result<PolicyClient> {
        let mut last = io::Error::new(io::ErrorKind::TimedOut, "no connect attempts made");
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
            }
            match PolicyClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Requests the greedy action for `observation`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries the server's typed refusal
    /// (busy, overloaded, unknown tenant, bad observation width,
    /// shutting down); the other variants are transport or protocol
    /// failures.
    pub fn act(&mut self, observation: &[f64]) -> Result<u32, ClientError> {
        let id = self.fresh_id();
        let request = Message::Observe {
            id,
            tenant: self.tenant,
            observation: observation.to_vec(),
        };
        match self.round_trip(&request, id)? {
            Message::Action { action, .. } => Ok(action),
            _ => Err(ClientError::Unexpected("wanted an action")),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Same failure surface as [`PolicyClient::act`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        match self.round_trip(&Message::Ping { id }, id)? {
            Message::Pong { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("wanted a pong")),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn round_trip(&mut self, request: &Message, id: u64) -> Result<Message, ClientError> {
        request
            .write_to(&mut self.stream)
            .map_err(ClientError::Io)?;
        let reply = Message::read_from(&mut self.stream)?.ok_or(ClientError::Closed)?;
        if reply.id() != id {
            return Err(ClientError::Unexpected("request id mismatch"));
        }
        if let Message::Error { code, .. } = reply {
            return Err(ClientError::Rejected(code));
        }
        if reply.is_request() {
            return Err(ClientError::Unexpected("server sent a request kind"));
        }
        Ok(reply)
    }
}
