//! Standalone policy-inference server.
//!
//! ```text
//! policy_server <checkpoint.ckpt> [bind-addr]
//! ```
//!
//! Loads a sealed `ctjam_dqn::checkpoint` agent checkpoint, serves its
//! greedy policy on `bind-addr` (default `127.0.0.1:0` — an ephemeral
//! loopback port), prints `LISTENING <addr>` once ready, and runs until
//! stdin reaches EOF or a `quit` line arrives, then drains gracefully
//! and prints the final metrics. Orchestrators (the `serve_bench` load
//! harness, the chaos tests, `ci.sh`) parse the `LISTENING` line for
//! the resolved port and close stdin to stop the server.
//!
//! Environment knobs:
//!
//! * `CTJAM_SERVE_MAX_BATCH` — micro-batch flush size (default 16)
//! * `CTJAM_SERVE_MAX_WAIT_US` — micro-batch flush deadline (default 200)
//! * `CTJAM_SERVE_QUEUE_CAP` — bounded queue capacity per worker shard
//!   (default 1024)
//! * `CTJAM_SERVE_WORKERS` — batch workers / shards (default 0 =
//!   `available_parallelism`); a `WORKERS <n>` line before `LISTENING`
//!   reports the resolved count
//! * `CTJAM_SERVE_MAX_QUEUE_DELAY_US` — queue-delay SLO: shed requests
//!   with `Overloaded` when a shard's estimated queue delay exceeds
//!   this many microseconds (unset = no shedding)
//! * `CTJAM_SERVE_TENANTS` — extra tenants as
//!   `id=path.ckpt;id=path.ckpt` (the positional checkpoint is always
//!   tenant 0, which v1 clients address implicitly)
//! * `CTJAM_SERVE_WATCH` — if set, hot-reload every tenant's
//!   checkpoint path on modification
//! * `CTJAM_SERVE_INT8` — if set to anything but `0`, serve through
//!   the int8-quantized forward path when the policy clears its
//!   greedy-action-agreement gate (falls back to f64 otherwise; an
//!   `INT8 active|fallback` line before `LISTENING` reports the
//!   default tenant's verdict)

use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::server::{PolicyServer, ServerConfig};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `CTJAM_SERVE_TENANTS`: `id=path;id=path`, empty entries
/// ignored.
fn parse_tenants(spec: &str) -> Result<Vec<(u32, PathBuf)>, String> {
    let mut tenants = Vec::new();
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let (id, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("bad tenant entry {entry:?}: want id=path"))?;
        let id: u32 = id
            .trim()
            .parse()
            .map_err(|_| format!("bad tenant id {id:?}"))?;
        tenants.push((id, PathBuf::from(path.trim())));
    }
    Ok(tenants)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(checkpoint) = args.next().map(PathBuf::from) else {
        eprintln!("usage: policy_server <checkpoint.ckpt> [bind-addr]");
        return ExitCode::from(2);
    };
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:0".to_string());

    let policy = match GreedyPolicy::load_checkpoint(&checkpoint) {
        Ok(policy) => policy,
        Err(e) => {
            eprintln!("policy_server: cannot load {}: {e}", checkpoint.display());
            return ExitCode::FAILURE;
        }
    };
    let int8_requested = std::env::var("CTJAM_SERVE_INT8").is_ok_and(|v| v != "0");
    let max_queue_delay = std::env::var("CTJAM_SERVE_MAX_QUEUE_DELAY_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_micros);
    let config = ServerConfig {
        max_batch: env_u64("CTJAM_SERVE_MAX_BATCH", 16) as usize,
        max_wait: Duration::from_micros(env_u64("CTJAM_SERVE_MAX_WAIT_US", 200)),
        queue_capacity: env_u64("CTJAM_SERVE_QUEUE_CAP", 1024) as usize,
        quantize_int8: int8_requested,
        workers: env_u64("CTJAM_SERVE_WORKERS", 0) as usize,
        max_queue_delay,
        ..ServerConfig::default()
    };
    let tenants = match parse_tenants(&std::env::var("CTJAM_SERVE_TENANTS").unwrap_or_default()) {
        Ok(tenants) => tenants,
        Err(e) => {
            eprintln!("policy_server: CTJAM_SERVE_TENANTS: {e}");
            return ExitCode::from(2);
        }
    };
    let mut server = match PolicyServer::bind(addr.as_str(), policy, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("policy_server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (id, path) in &tenants {
        let tenant_policy = match GreedyPolicy::load_checkpoint(path) {
            Ok(policy) => policy,
            Err(e) => {
                eprintln!(
                    "policy_server: cannot load tenant {id} from {}: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = server.add_tenant(*id, tenant_policy) {
            eprintln!("policy_server: cannot register tenant {id}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if std::env::var("CTJAM_SERVE_WATCH").is_ok() {
        server.watch_checkpoint(checkpoint.clone());
        for (id, path) in &tenants {
            let _ = server.watch_tenant_checkpoint(*id, path.clone());
        }
    }

    let mut stdout = std::io::stdout().lock();
    let _ = writeln!(stdout, "WORKERS {}", server.worker_count());
    if int8_requested {
        // Report the gate's verdict before the readiness line so
        // orchestrators that read up to LISTENING still see it.
        let verdict = if server.int8_active() {
            "active"
        } else {
            "fallback"
        };
        let _ = writeln!(stdout, "INT8 {verdict}");
    }
    // The machine-readable readiness line orchestrators wait for.
    let _ = writeln!(stdout, "LISTENING {}", server.local_addr());
    let _ = stdout.flush();

    // Serve until the orchestrator closes stdin (or sends "quit").
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let occupancy = server.mean_batch_occupancy();
    let metrics = server.shutdown();
    let _ = writeln!(stdout, "MEAN_BATCH_OCCUPANCY {occupancy}");
    let _ = writeln!(stdout, "METRICS {}", metrics.to_string_compact());
    let _ = writeln!(stdout, "SHUTDOWN_OK");
    let _ = stdout.flush();
    ExitCode::SUCCESS
}
