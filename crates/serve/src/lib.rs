//! Micro-batching TCP inference server for the trained CTJam DQN
//! defender.
//!
//! The paper's deployment story (§III.C and the resource-constrained
//! nodes of the related work) has many transmitters consulting one
//! trained anti-jamming policy. This crate turns the in-process
//! [`ctjam_dqn::policy::GreedyPolicy`] into a network service:
//!
//! * [`protocol`] — the versioned, length-prefixed binary wire format
//!   (magic + version + request id + payload), total decoding with
//!   typed [`protocol::WireError`]s and an allocation-bomb-proof
//!   length cap; v2 adds a tenant id to `Observe` while every
//!   default-tenant frame stays byte-identical to v1;
//! * `batcher` (internal) — the bounded size-or-deadline micro-batch
//!   queue with explicit `ServerBusy` backpressure;
//! * [`server`] — [`server::PolicyServer`]: accept/connection threads,
//!   N sharded batch workers (connections pinned by
//!   `conn_id % workers`) flushing into `Mlp::forward_batch` grouped
//!   by tenant, multi-model tenancy with per-tenant checkpoint
//!   hot-reload (validate-then-swap, never dropping connections),
//!   queue-delay SLO admission control, and graceful
//!   drain-on-shutdown;
//! * [`client`] — a small blocking [`client::PolicyClient`] (tenant
//!   aware; default-tenant clients speak pure v1);
//! * [`metrics`] — global and per-tenant counters plus
//!   latency/batch-size/queue-depth histograms (with p50/p95/p99) via
//!   `ctjam-telemetry`.
//!
//! Served actions are **bit-exact** with `DqnAgent::act_greedy` on the
//! agent the checkpoint was saved from: the batched forward kernel is
//! bit-exact with the per-sample one, and the argmax tie/NaN rules are
//! shared with the agent (asserted end-to-end by the `serve_bench` load
//! harness in `crates/bench`).
//!
//! # Example
//!
//! ```
//! use ctjam_dqn::agent::DqnAgent;
//! use ctjam_dqn::config::DqnConfig;
//! use ctjam_dqn::policy::GreedyPolicy;
//! use ctjam_serve::client::PolicyClient;
//! use ctjam_serve::server::{PolicyServer, ServerConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = DqnConfig { history_len: 2, num_channels: 4, num_power_levels: 2,
//!                          hidden: (8, 8), ..DqnConfig::default() };
//! let agent = DqnAgent::new(config.clone(), &mut rng);
//! let server = PolicyServer::bind(
//!     "127.0.0.1:0",
//!     GreedyPolicy::from_agent(&agent),
//!     ServerConfig::default(),
//! ).unwrap();
//!
//! let mut client = PolicyClient::connect(server.local_addr()).unwrap();
//! let observation = vec![0.0; config.input_size()];
//! let action = client.act(&observation).unwrap();
//! assert_eq!(action as usize, agent.act_greedy(&observation));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod batcher;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
