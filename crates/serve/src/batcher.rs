//! The micro-batching request queue.
//!
//! Connection threads [`BatchQueue::push`] one [`PendingRequest`] per
//! observe request; a single batch-worker thread pulls coalesced batches
//! with [`BatchQueue::next_batch`], which flushes on a **size-or-deadline
//! trigger**: as soon as `max_batch` requests are queued, or `max_wait`
//! after the *oldest* queued request arrived, whichever comes first. The
//! queue is bounded — a push against a full queue fails immediately with
//! [`PushError::Busy`] so backpressure reaches the client as a typed
//! `ServerBusy` response instead of unbounded buffering.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One in-flight observe request: the decoded observation and the
/// reply handle the batch worker answers through. The queue is generic
/// over the handle so the server can thread its connection writer
/// through without the queue knowing anything about sockets.
pub(crate) struct PendingRequest<R> {
    /// Decoded observation features.
    pub observation: Vec<f64>,
    /// When the request entered the queue (latency accounting and the
    /// deadline trigger).
    pub enqueued: Instant,
    /// Where the batch worker delivers the chosen action.
    pub reply: R,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity — surface `ServerBusy` to the client.
    Busy,
    /// The queue is draining for shutdown — surface `ShuttingDown`.
    Closed,
}

struct Inner<R> {
    pending: VecDeque<PendingRequest<R>>,
    closed: bool,
}

/// Bounded multi-producer, single-consumer batching queue.
pub(crate) struct BatchQueue<R> {
    inner: Mutex<Inner<R>>,
    wakeup: Condvar,
    capacity: usize,
}

impl<R> BatchQueue<R> {
    /// A queue refusing pushes beyond `capacity` pending requests.
    pub fn new(capacity: usize) -> Self {
        BatchQueue {
            inner: Mutex::new(Inner {
                pending: VecDeque::new(),
                closed: false,
            }),
            wakeup: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues one request, waking the batch worker.
    pub fn push(&self, request: PendingRequest<R>) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("batch queue poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.pending.len() >= self.capacity {
            return Err(PushError::Busy);
        }
        inner.pending.push_back(request);
        drop(inner);
        self.wakeup.notify_one();
        Ok(())
    }

    /// Marks the queue closed: further pushes fail with
    /// [`PushError::Closed`], and once the worker has drained what is
    /// already queued, [`BatchQueue::next_batch`] returns `false`.
    pub fn close(&self) {
        self.inner.lock().expect("batch queue poisoned").closed = true;
        self.wakeup.notify_all();
    }

    /// Current number of queued requests.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("batch queue poisoned")
            .pending
            .len()
    }

    /// Blocks until a batch is ready, then moves up to `max_batch`
    /// requests into `out` (cleared first). A batch becomes ready when
    /// `max_batch` requests are queued, or `max_wait` has elapsed since
    /// the oldest queued request arrived, or the queue is closed (the
    /// drain path flushes immediately). Returns `false` — with `out`
    /// empty — only when the queue is closed *and* fully drained.
    pub fn next_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
        out: &mut Vec<PendingRequest<R>>,
    ) -> bool {
        let max_batch = max_batch.max(1);
        out.clear();
        let mut inner = self.inner.lock().expect("batch queue poisoned");
        loop {
            if inner.pending.is_empty() {
                if inner.closed {
                    return false;
                }
                inner = self.wakeup.wait(inner).expect("batch queue poisoned");
                continue;
            }
            // The deadline anchors to the *oldest* request so a burst
            // that queued while the worker was busy flushes at once.
            let deadline = inner.pending.front().expect("nonempty").enqueued + max_wait;
            while inner.pending.len() < max_batch && !inner.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = self
                    .wakeup
                    .wait_timeout(inner, deadline - now)
                    .expect("batch queue poisoned");
                inner = guard;
                if timeout.timed_out() {
                    break;
                }
                if inner.pending.is_empty() {
                    break; // woken by close() after a racing drain
                }
            }
            if inner.pending.is_empty() {
                continue;
            }
            let take = inner.pending.len().min(max_batch);
            out.extend(inner.pending.drain(..take));
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;
    use std::thread;

    fn request(
        tag: f64,
    ) -> (
        PendingRequest<std::sync::mpsc::Sender<u32>>,
        std::sync::mpsc::Receiver<u32>,
    ) {
        let (tx, rx) = channel();
        (
            PendingRequest {
                observation: vec![tag],
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn flushes_immediately_at_max_batch() {
        let q = BatchQueue::new(8);
        for i in 0..3 {
            q.push(request(i as f64).0).unwrap();
        }
        let mut out = Vec::new();
        // max_wait far in the future: only the size trigger can flush
        // this fast, and it must hand over exactly max_batch in order.
        let start = Instant::now();
        assert!(q.next_batch(3, Duration::from_secs(60), &mut out));
        assert!(start.elapsed() < Duration::from_secs(5));
        let tags: Vec<f64> = out.iter().map(|p| p.observation[0]).collect();
        assert_eq!(tags, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn flushes_a_partial_batch_at_the_deadline() {
        let q = BatchQueue::new(8);
        q.push(request(7.0).0).unwrap();
        let mut out = Vec::new();
        let start = Instant::now();
        assert!(q.next_batch(64, Duration::from_millis(20), &mut out));
        assert_eq!(out.len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline flush took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn oversized_backlog_drains_in_max_batch_chunks() {
        let q = BatchQueue::new(16);
        for i in 0..10 {
            q.push(request(i as f64).0).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.next_batch(4, Duration::from_millis(1), &mut out));
        assert_eq!(out.len(), 4);
        assert!(q.next_batch(4, Duration::from_millis(1), &mut out));
        assert_eq!(out.len(), 4);
        assert!(q.next_batch(4, Duration::from_millis(1), &mut out));
        assert_eq!(out.len(), 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let q = BatchQueue::new(2);
        q.push(request(0.0).0).unwrap();
        q.push(request(1.0).0).unwrap();
        assert_eq!(q.push(request(2.0).0).unwrap_err(), PushError::Busy);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BatchQueue::new(8);
        q.push(request(0.0).0).unwrap();
        q.push(request(1.0).0).unwrap();
        q.close();
        assert_eq!(q.push(request(2.0).0).unwrap_err(), PushError::Closed);
        let mut out = Vec::new();
        // Closed: the pending requests flush without waiting out the
        // deadline, then the queue reports drained.
        assert!(q.next_batch(64, Duration::from_secs(60), &mut out));
        assert_eq!(out.len(), 2);
        assert!(!q.next_batch(64, Duration::from_secs(60), &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn close_wakes_an_idle_worker() {
        let q = Arc::new(BatchQueue::<std::sync::mpsc::Sender<u32>>::new(4));
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                q.next_batch(4, Duration::from_secs(60), &mut out)
            })
        };
        thread::sleep(Duration::from_millis(50));
        q.close();
        assert!(!worker.join().expect("worker panicked"));
    }

    #[test]
    fn wakeups_before_the_deadline_do_not_flush_early() {
        // Every push notifies the condvar, so a worker waiting out the
        // deadline is woken repeatedly with the size trigger still
        // unmet — exactly the shape of a spurious wakeup. It must go
        // back to waiting and flush once, at the deadline, with
        // everything that arrived.
        let q = Arc::new(BatchQueue::<std::sync::mpsc::Sender<u32>>::new(8));
        let max_wait = Duration::from_millis(150);
        q.push(request(0.0).0).unwrap();
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                let start = Instant::now();
                assert!(q.next_batch(8, max_wait, &mut out));
                (start.elapsed(), out.len())
            })
        };
        for i in 1..3 {
            thread::sleep(Duration::from_millis(30));
            q.push(request(i as f64).0).unwrap();
        }
        let (elapsed, got) = worker.join().expect("worker panicked");
        assert_eq!(got, 3, "early flush: woke with the size trigger unmet");
        assert!(
            elapsed >= Duration::from_millis(100),
            "flushed {elapsed:?} after the wait began, before the deadline"
        );
    }

    #[test]
    fn close_racing_a_deadline_wait_flushes_immediately() {
        // A worker parked in the deadline wait (one request queued,
        // deadline far off) must hand that request over as soon as
        // close() lands — the drain path cannot wait out max_wait.
        let q = Arc::new(BatchQueue::<std::sync::mpsc::Sender<u32>>::new(8));
        q.push(request(9.0).0).unwrap();
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                let alive = q.next_batch(8, Duration::from_secs(60), &mut out);
                (alive, out.len())
            })
        };
        thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        q.close();
        let (alive, got) = worker.join().expect("worker panicked");
        assert!(alive, "the queued request must flush before the end");
        assert_eq!(got, 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "close() left the worker waiting out the deadline"
        );
        let mut out = Vec::new();
        assert!(!q.next_batch(8, Duration::from_secs(60), &mut out));
    }

    #[test]
    fn producer_and_consumer_hand_off_under_contention() {
        let q = Arc::new(BatchQueue::<std::sync::mpsc::Sender<u32>>::new(64));
        let total = 200;
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                let mut seen = 0usize;
                while q.next_batch(7, Duration::from_micros(200), &mut out) {
                    for p in &out {
                        let _ = p.reply.send(p.observation[0] as u32);
                    }
                    seen += out.len();
                }
                seen
            })
        };
        let mut receivers = Vec::new();
        for i in 0..total {
            loop {
                let (req, rx) = request(i as f64);
                match q.push(req) {
                    Ok(()) => {
                        receivers.push((i, rx));
                        break;
                    }
                    Err(PushError::Busy) => thread::sleep(Duration::from_micros(100)),
                    Err(PushError::Closed) => panic!("queue closed early"),
                }
            }
        }
        for (i, rx) in receivers {
            assert_eq!(rx.recv().expect("reply"), i as u32);
        }
        q.close();
        assert_eq!(consumer.join().expect("consumer panicked"), total);
    }
}
