//! End-to-end server tests over real loopback sockets: bit-exactness
//! against the in-process agent, typed rejections, hostile-byte
//! resilience, and graceful shutdown accounting.

mod common;

use common::{observations, small_config, temp_file, trained_agent};
use ctjam_dqn::checkpoint;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::client::{ClientError, PolicyClient};
use ctjam_serve::protocol::{ErrorCode, Message, MAX_PAYLOAD};
use ctjam_serve::server::{PolicyServer, ServerConfig};
use ctjam_telemetry::JsonValue;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn served_actions_are_bit_exact_across_concurrent_clients() {
    let config = small_config();
    let agent = Arc::new(trained_agent(&config, 41));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let agent = Arc::clone(&agent);
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect(addr).expect("connect");
            client.ping().expect("ping");
            for obs in observations(&config, 50, t) {
                let served = client.act(&obs).expect("act");
                assert_eq!(served as usize, agent.act_greedy(&obs));
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread panicked");
    }
    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("requests"), Some(&JsonValue::Num(200.0)));
    assert_eq!(counters.get("responses"), Some(&JsonValue::Num(200.0)));
    assert_eq!(counters.get("pings"), Some(&JsonValue::Num(4.0)));
}

/// The sharding contract: worker count changes scheduling, never
/// behavior. Every served action stays bit-exact against the
/// in-process agent at 1, 2, and 4 workers.
#[test]
fn served_actions_are_bit_exact_at_any_worker_count() {
    let config = small_config();
    let agent = Arc::new(trained_agent(&config, 47));
    for workers in [1usize, 2, 4] {
        let server = PolicyServer::bind(
            "127.0.0.1:0",
            GreedyPolicy::from_agent(&agent),
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        assert_eq!(server.worker_count(), workers);
        let addr = server.local_addr();
        let mut clients = Vec::new();
        for t in 0..4u64 {
            let agent = Arc::clone(&agent);
            let config = config.clone();
            clients.push(thread::spawn(move || {
                let mut client = PolicyClient::connect(addr).expect("connect");
                for obs in observations(&config, 30, 300 + t) {
                    assert_eq!(
                        client.act(&obs).expect("act") as usize,
                        agent.act_greedy(&obs),
                        "divergence at {workers} workers"
                    );
                }
            }));
        }
        for c in clients {
            c.join().expect("client thread panicked");
        }
        let metrics = server.shutdown();
        let counters = metrics.get("counters").expect("counters");
        assert_eq!(counters.get("responses"), Some(&JsonValue::Num(120.0)));
        // The default tenant's slice of the same traffic.
        let tenant = metrics
            .get("tenants")
            .and_then(|t| t.get("0"))
            .expect("default tenant metrics");
        let tcounters = tenant.get("counters").expect("tenant counters");
        assert_eq!(tcounters.get("responses"), Some(&JsonValue::Num(120.0)));
    }
}

/// Wire-level pipelining across a mid-stream hot-reload: one
/// connection writes a burst of Observe frames, checkpoints flip
/// underneath, and the replies must come back in exactly the request
/// order with every action explained by one of the two policies.
#[test]
fn pipelined_replies_stay_ordered_across_a_reload() {
    let config = small_config();
    let agent_a = trained_agent(&config, 48);
    let agent_b = trained_agent(&config, 49);
    let path_a = temp_file("pipeline_a");
    let path_b = temp_file("pipeline_b");
    checkpoint::save_agent(&agent_a, &path_a).expect("save a");
    checkpoint::save_agent(&agent_b, &path_b).expect("save b");

    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent_a),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let total = 200usize;
    let obs = observations(&config, total, 6);
    let mut burst = Vec::new();
    for (i, o) in obs.iter().enumerate() {
        Message::Observe {
            id: i as u64,
            tenant: 0,
            observation: o.clone(),
        }
        .encode_into(&mut burst);
    }

    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
    raw.set_nodelay(true).expect("nodelay");
    raw.write_all(&burst).expect("write burst");

    // Interleave reads with reloads on this thread: after every few
    // replies, swap the checkpoint under the still-draining burst.
    let mut stream_for_read = raw;
    let mut next_expected = 0u64;
    while next_expected < total as u64 {
        let reply = Message::read_from(&mut stream_for_read)
            .expect("read reply")
            .expect("connection closed mid-burst");
        match reply {
            Message::Action { id, action } => {
                assert_eq!(id, next_expected, "reply out of order");
                let o = &obs[id as usize];
                let from_a = agent_a.act_greedy(o);
                let from_b = agent_b.act_greedy(o);
                let served = action as usize;
                assert!(
                    served == from_a || served == from_b,
                    "action {served} from neither policy (a={from_a}, b={from_b})"
                );
                next_expected += 1;
            }
            other => panic!("unexpected reply kind: {other:?}"),
        }
        if next_expected.is_multiple_of(16) {
            let path = if (next_expected / 16).is_multiple_of(2) {
                &path_b
            } else {
                &path_a
            };
            server.reload_from(path).expect("reload mid-burst");
        }
    }
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
    server.shutdown();
}

/// Deterministic queue-delay SLO shed: prime the cost estimate with
/// one flushed pair, park a third request against a far deadline, and
/// the fourth must be refused with `Overloaded` — then the drain still
/// answers the parked request (nothing admitted is ever dropped).
#[test]
fn queue_delay_slo_sheds_with_overloaded() {
    let config = small_config();
    let agent = trained_agent(&config, 50);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig {
            workers: 1,
            max_batch: 2,
            // Far deadline: a lone queued request stays parked, so the
            // fourth request deterministically sees depth > 0.
            max_wait: Duration::from_secs(10),
            max_queue_delay: Some(Duration::ZERO),
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let obs = observations(&config, 4, 7);
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_nodelay(true).expect("nodelay");

    // Requests 0 and 1 fill a batch (ewma still 0 → both admitted),
    // flush, and prime the cost estimate.
    let mut prime = Vec::new();
    for id in 0..2u64 {
        Message::Observe {
            id,
            tenant: 0,
            observation: obs[id as usize].clone(),
        }
        .encode_into(&mut prime);
    }
    raw.write_all(&prime).expect("write prime");
    for id in 0..2u64 {
        match Message::read_from(&mut raw).expect("read").expect("open") {
            Message::Action { id: got, action } => {
                assert_eq!(got, id);
                assert_eq!(action as usize, agent.act_greedy(&obs[id as usize]));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    // Request 2 parks (depth 0 at admission). Request 3 sees depth 1
    // with a priced queue and a zero budget: shed.
    let mut tail = Vec::new();
    for id in 2..4u64 {
        Message::Observe {
            id,
            tenant: 0,
            observation: obs[id as usize].clone(),
        }
        .encode_into(&mut tail);
    }
    raw.write_all(&tail).expect("write tail");
    match Message::read_from(&mut raw).expect("read").expect("open") {
        Message::Error { id, code } => {
            assert_eq!(id, 3, "the parked request must not be the one shed");
            assert_eq!(code, ErrorCode::Overloaded);
        }
        other => panic!("expected Overloaded for id 3, got {other:?}"),
    }

    // Shutdown drains the parked request before the socket closes.
    let reader =
        thread::spawn(
            move || match Message::read_from(&mut raw).expect("read").expect("open") {
                Message::Action { id, .. } => assert_eq!(id, 2),
                other => panic!("expected drained action for id 2, got {other:?}"),
            },
        );
    let metrics = server.shutdown();
    reader.join().expect("reader panicked");
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("slo_rejections"), Some(&JsonValue::Num(1.0)));
    assert_eq!(counters.get("responses"), Some(&JsonValue::Num(3.0)));
    let tenant = metrics
        .get("tenants")
        .and_then(|t| t.get("0"))
        .expect("default tenant metrics");
    let tcounters = tenant.get("counters").expect("tenant counters");
    assert_eq!(tcounters.get("slo_rejections"), Some(&JsonValue::Num(1.0)));
}

#[test]
fn wrong_observation_width_is_a_typed_rejection_and_connection_survives() {
    let config = small_config();
    let agent = trained_agent(&config, 42);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");

    let narrow = vec![0.0; config.input_size() - 1];
    match client.act(&narrow) {
        Err(ClientError::Rejected(ErrorCode::BadObservation)) => {}
        other => panic!("expected BadObservation, got {other:?}"),
    }
    // The rejection is per-request: the same connection keeps working.
    let good = vec![0.0; config.input_size()];
    assert_eq!(
        client.act(&good).expect("act") as usize,
        agent.act_greedy(&good)
    );
}

#[test]
fn full_queue_surfaces_server_busy() {
    let config = small_config();
    let agent = trained_agent(&config, 43);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig {
            queue_capacity: 0, // every push is refused: deterministic busy
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    match client.act(&vec![0.0; config.input_size()]) {
        Err(ClientError::Rejected(ErrorCode::ServerBusy)) => {}
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("busy_rejections"), Some(&JsonValue::Num(1.0)));
}

#[test]
fn hostile_bytes_drop_the_connection_but_not_the_server() {
    let config = small_config();
    let agent = trained_agent(&config, 44);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Garbage magic, then an oversized length prefix on a valid header:
    // both must be swallowed as typed wire errors server-side.
    for hostile in [
        b"XXXXXXXXXXXXXXXXXXXXXXXX".to_vec(),
        {
            let mut bytes = Message::Ping { id: 1 }.encode();
            bytes[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
            bytes
        },
        // A response kind arriving at the server.
        Message::Action { id: 9, action: 3 }.encode(),
    ] {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&hostile).expect("write hostile bytes");
        // Give the server a moment to read and drop us.
        thread::sleep(Duration::from_millis(100));
    }

    // A well-behaved client is still served, bit-exactly.
    let mut client = PolicyClient::connect(addr).expect("connect after attack");
    let obs = vec![0.5; config.input_size()];
    assert_eq!(
        client.act(&obs).expect("act") as usize,
        agent.act_greedy(&obs)
    );
    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("counters");
    match counters.get("wire_errors") {
        Some(&JsonValue::Num(n)) => assert!(n >= 3.0, "wire_errors = {n}"),
        other => panic!("missing wire_errors counter: {other:?}"),
    }
}

#[test]
fn batching_coalesces_concurrent_requests() {
    let config = small_config();
    let agent = Arc::new(trained_agent(&config, 45));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig {
            max_batch: 8,
            // A long deadline forces the size trigger to do the work
            // once all 8 clients have a request in flight.
            max_wait: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..8u64 {
        let agent = Arc::clone(&agent);
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect(addr).expect("connect");
            for obs in observations(&config, 40, 100 + t) {
                assert_eq!(
                    client.act(&obs).expect("act") as usize,
                    agent.act_greedy(&obs)
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread panicked");
    }
    // 8 synchronous clients against a 5 ms deadline: flushes must carry
    // more than one request on average.
    let occupancy = server.mean_batch_occupancy();
    assert!(occupancy > 1.5, "mean batch occupancy {occupancy}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_whats_in_flight() {
    let config = small_config();
    let agent = Arc::new(trained_agent(&config, 46));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig {
            // A long deadline keeps requests queued long enough for the
            // shutdown to race them.
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let agent = Arc::clone(&agent);
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect(addr).expect("connect");
            for obs in observations(&config, 20, 200 + t) {
                match client.act(&obs) {
                    // Every answered request must still be bit-exact.
                    Ok(served) => assert_eq!(served as usize, agent.act_greedy(&obs)),
                    // Racing the shutdown: typed refusal or a closed
                    // socket are both acceptable — panics are not.
                    Err(ClientError::Rejected(ErrorCode::ShuttingDown))
                    | Err(ClientError::Closed)
                    | Err(ClientError::Io(_)) => return,
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            }
        }));
    }
    thread::sleep(Duration::from_millis(30));
    let metrics = server.shutdown();
    for w in workers {
        w.join().expect("client thread panicked");
    }
    // Drain guarantee: every action handed to the batcher was answered.
    let counters = metrics.get("counters").expect("counters");
    let responses = match counters.get("responses") {
        Some(&JsonValue::Num(n)) => n,
        other => panic!("missing responses counter: {other:?}"),
    };
    let latency = metrics.get("latency_us").expect("latency_us");
    assert_eq!(latency.get("count"), Some(&JsonValue::Num(responses)));
}
