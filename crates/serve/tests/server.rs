//! End-to-end server tests over real loopback sockets: bit-exactness
//! against the in-process agent, typed rejections, hostile-byte
//! resilience, and graceful shutdown accounting.

mod common;

use common::{observations, small_config, trained_agent};
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::client::{ClientError, PolicyClient};
use ctjam_serve::protocol::{ErrorCode, Message, MAX_PAYLOAD};
use ctjam_serve::server::{PolicyServer, ServerConfig};
use ctjam_telemetry::JsonValue;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn served_actions_are_bit_exact_across_concurrent_clients() {
    let config = small_config();
    let agent = Arc::new(trained_agent(&config, 41));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let agent = Arc::clone(&agent);
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect(addr).expect("connect");
            client.ping().expect("ping");
            for obs in observations(&config, 50, t) {
                let served = client.act(&obs).expect("act");
                assert_eq!(served as usize, agent.act_greedy(&obs));
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread panicked");
    }
    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("requests"), Some(&JsonValue::Num(200.0)));
    assert_eq!(counters.get("responses"), Some(&JsonValue::Num(200.0)));
    assert_eq!(counters.get("pings"), Some(&JsonValue::Num(4.0)));
}

#[test]
fn wrong_observation_width_is_a_typed_rejection_and_connection_survives() {
    let config = small_config();
    let agent = trained_agent(&config, 42);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");

    let narrow = vec![0.0; config.input_size() - 1];
    match client.act(&narrow) {
        Err(ClientError::Rejected(ErrorCode::BadObservation)) => {}
        other => panic!("expected BadObservation, got {other:?}"),
    }
    // The rejection is per-request: the same connection keeps working.
    let good = vec![0.0; config.input_size()];
    assert_eq!(
        client.act(&good).expect("act") as usize,
        agent.act_greedy(&good)
    );
}

#[test]
fn full_queue_surfaces_server_busy() {
    let config = small_config();
    let agent = trained_agent(&config, 43);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig {
            queue_capacity: 0, // every push is refused: deterministic busy
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    match client.act(&vec![0.0; config.input_size()]) {
        Err(ClientError::Rejected(ErrorCode::ServerBusy)) => {}
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("busy_rejections"), Some(&JsonValue::Num(1.0)));
}

#[test]
fn hostile_bytes_drop_the_connection_but_not_the_server() {
    let config = small_config();
    let agent = trained_agent(&config, 44);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Garbage magic, then an oversized length prefix on a valid header:
    // both must be swallowed as typed wire errors server-side.
    for hostile in [
        b"XXXXXXXXXXXXXXXXXXXXXXXX".to_vec(),
        {
            let mut bytes = Message::Ping { id: 1 }.encode();
            bytes[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
            bytes
        },
        // A response kind arriving at the server.
        Message::Action { id: 9, action: 3 }.encode(),
    ] {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&hostile).expect("write hostile bytes");
        // Give the server a moment to read and drop us.
        thread::sleep(Duration::from_millis(100));
    }

    // A well-behaved client is still served, bit-exactly.
    let mut client = PolicyClient::connect(addr).expect("connect after attack");
    let obs = vec![0.5; config.input_size()];
    assert_eq!(
        client.act(&obs).expect("act") as usize,
        agent.act_greedy(&obs)
    );
    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("counters");
    match counters.get("wire_errors") {
        Some(&JsonValue::Num(n)) => assert!(n >= 3.0, "wire_errors = {n}"),
        other => panic!("missing wire_errors counter: {other:?}"),
    }
}

#[test]
fn batching_coalesces_concurrent_requests() {
    let config = small_config();
    let agent = Arc::new(trained_agent(&config, 45));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig {
            max_batch: 8,
            // A long deadline forces the size trigger to do the work
            // once all 8 clients have a request in flight.
            max_wait: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..8u64 {
        let agent = Arc::clone(&agent);
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect(addr).expect("connect");
            for obs in observations(&config, 40, 100 + t) {
                assert_eq!(
                    client.act(&obs).expect("act") as usize,
                    agent.act_greedy(&obs)
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread panicked");
    }
    // 8 synchronous clients against a 5 ms deadline: flushes must carry
    // more than one request on average.
    let occupancy = server.mean_batch_occupancy();
    assert!(occupancy > 1.5, "mean batch occupancy {occupancy}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_whats_in_flight() {
    let config = small_config();
    let agent = Arc::new(trained_agent(&config, 46));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig {
            // A long deadline keeps requests queued long enough for the
            // shutdown to race them.
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let agent = Arc::clone(&agent);
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect(addr).expect("connect");
            for obs in observations(&config, 20, 200 + t) {
                match client.act(&obs) {
                    // Every answered request must still be bit-exact.
                    Ok(served) => assert_eq!(served as usize, agent.act_greedy(&obs)),
                    // Racing the shutdown: typed refusal or a closed
                    // socket are both acceptable — panics are not.
                    Err(ClientError::Rejected(ErrorCode::ShuttingDown))
                    | Err(ClientError::Closed)
                    | Err(ClientError::Io(_)) => return,
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            }
        }));
    }
    thread::sleep(Duration::from_millis(30));
    let metrics = server.shutdown();
    for w in workers {
        w.join().expect("client thread panicked");
    }
    // Drain guarantee: every action handed to the batcher was answered.
    let counters = metrics.get("counters").expect("counters");
    let responses = match counters.get("responses") {
        Some(&JsonValue::Num(n)) => n,
        other => panic!("missing responses counter: {other:?}"),
    };
    let latency = metrics.get("latency_us").expect("latency_us");
    assert_eq!(latency.get("count"), Some(&JsonValue::Num(responses)));
}
