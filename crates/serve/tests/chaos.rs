//! Chaos tests against the real `policy_server` binary: SIGKILL the
//! server mid-load, restart it from the same checkpoint, and require
//! every client to reconnect and resume — zero panics, every answer
//! bit-exact, no torn checkpoint reads.

mod common;

use common::{observations, small_config, temp_file, trained_agent};
use ctjam_dqn::checkpoint;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::client::{ClientError, PolicyClient};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A running `policy_server` child process plus its resolved address.
struct ServerProcess {
    child: Child,
    addr: SocketAddr,
}

/// Reads stdout lines up to and including `LISTENING <addr>`; the
/// binary may report `WORKERS`/`INT8` diagnostics first.
fn read_until_listening(lines: &mut impl Iterator<Item = std::io::Result<String>>) -> SocketAddr {
    loop {
        let line = lines
            .next()
            .expect("readiness line")
            .expect("readable stdout");
        if let Some(addr) = line.strip_prefix("LISTENING ") {
            return addr.parse().expect("parsable address");
        }
        assert!(
            line.starts_with("WORKERS ") || line.starts_with("INT8 "),
            "unexpected readiness line: {line}"
        );
    }
}

impl ServerProcess {
    /// Spawns the binary on an ephemeral loopback port and waits for
    /// its `LISTENING <addr>` readiness line.
    fn spawn(checkpoint: &std::path::Path) -> ServerProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_policy_server"))
            .arg(checkpoint)
            .arg("127.0.0.1:0")
            .stdin(Stdio::piped()) // held open: EOF means shutdown
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn policy_server");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = read_until_listening(&mut lines);
        // Keep draining stdout so the child never blocks on a full pipe.
        thread::spawn(move || for _ in lines {});
        ServerProcess { child, addr }
    }

    /// SIGKILL — no drain, no goodbye, exactly what a crash looks like.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }
}

#[test]
fn kill9_midload_then_restart_clients_reconnect_bit_exact() {
    let config = small_config();
    let agent = trained_agent(&config, 60);
    let ckpt = temp_file("chaos");
    checkpoint::save_agent(&agent, &ckpt).expect("save checkpoint");
    // The oracle reads the same checkpoint the servers serve — also
    // proving the file survives the SIGKILL un-torn.
    let oracle = Arc::new(GreedyPolicy::load_checkpoint(&ckpt).expect("load oracle"));

    let first = ServerProcess::spawn(&ckpt);
    let addr = Arc::new(Mutex::new(first.addr));
    let stop = Arc::new(AtomicBool::new(false));

    let mut clients = Vec::new();
    for t in 0..4u64 {
        let addr = Arc::clone(&addr);
        let stop = Arc::clone(&stop);
        let oracle = Arc::clone(&oracle);
        let config = config.clone();
        clients.push(thread::spawn(move || {
            let obs = observations(&config, 16, t);
            let mut successes_after_failure = 0u64;
            let mut saw_failure = false;
            while !stop.load(Ordering::Relaxed) {
                // (Re)connect to wherever the server currently lives.
                let target = *addr.lock().expect("addr lock");
                let mut client =
                    match PolicyClient::connect_retry(target, 5, Duration::from_millis(20)) {
                        Ok(c) => c,
                        Err(_) => {
                            saw_failure = true;
                            continue; // server down — keep retrying
                        }
                    };
                for o in obs.iter().cycle() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match client.act(o) {
                        Ok(served) => {
                            assert_eq!(
                                served as usize,
                                oracle.act_greedy(o),
                                "answer diverged from the checkpoint policy"
                            );
                            if saw_failure {
                                successes_after_failure += 1;
                            }
                        }
                        Err(ClientError::Io(_)) | Err(ClientError::Closed) => {
                            saw_failure = true;
                            break; // reconnect
                        }
                        Err(other) => panic!("unexpected client failure: {other}"),
                    }
                }
            }
            (saw_failure, successes_after_failure)
        }));
    }

    // Let the load build, then crash the server out from under it.
    thread::sleep(Duration::from_millis(300));
    first.kill9();
    thread::sleep(Duration::from_millis(200));

    // Restart from the same checkpoint (new ephemeral port) and point
    // the clients at it.
    let second = ServerProcess::spawn(&ckpt);
    *addr.lock().expect("addr lock") = second.addr;

    // Every client must get answers flowing again.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut probe = loop {
        match PolicyClient::connect_retry(second.addr, 10, Duration::from_millis(50)) {
            Ok(c) => break c,
            Err(e) => assert!(
                Instant::now() < deadline,
                "restarted server unreachable: {e}"
            ),
        }
    };
    probe.ping().expect("restarted server answers");
    thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);

    let mut reconnected = 0;
    for c in clients {
        // `join` erroring here would mean a client panicked — the one
        // outcome this test exists to forbid.
        let (saw_failure, successes) = c.join().expect("client thread panicked");
        assert!(saw_failure, "client never observed the crash");
        if successes > 0 {
            reconnected += 1;
        }
    }
    assert_eq!(reconnected, 4, "not every client resumed after restart");
    second.kill9();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn stdin_eof_shuts_the_binary_down_gracefully() {
    let config = small_config();
    let agent = trained_agent(&config, 61);
    let ckpt = temp_file("graceful_bin");
    checkpoint::save_agent(&agent, &ckpt).expect("save checkpoint");

    let mut child = Command::new(env!("CARGO_BIN_EXE_policy_server"))
        .arg(&ckpt)
        .arg("127.0.0.1:0")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn policy_server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = read_until_listening(&mut lines);

    let mut client = PolicyClient::connect(addr).expect("connect");
    let obs = vec![0.25; config.input_size()];
    assert_eq!(
        client.act(&obs).expect("act") as usize,
        agent.act_greedy(&obs)
    );

    drop(child.stdin.take()); // EOF → graceful shutdown
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    let status = child.wait().expect("reap");
    assert!(status.success(), "exit status {status:?}");
    assert!(
        rest.iter().any(|l| l.starts_with("METRICS ")),
        "no metrics line in {rest:?}"
    );
    assert!(
        rest.iter().any(|l| l == "SHUTDOWN_OK"),
        "no SHUTDOWN_OK in {rest:?}"
    );
    std::fs::remove_file(&ckpt).ok();
}

/// Graceful drain through the binary with two workers and two tenants
/// under live load: every in-flight request is either answered
/// bit-exactly by its own tenant's policy or refused with a typed
/// shutdown signal — never dropped silently — and the process exits
/// cleanly with its final metrics.
#[test]
fn multi_tenant_drain_under_load_drops_nothing() {
    let config = small_config();
    let agent_a = Arc::new(trained_agent(&config, 62));
    let agent_b = Arc::new(trained_agent(&config, 63));
    let ckpt_a = temp_file("drain_a");
    let ckpt_b = temp_file("drain_b");
    checkpoint::save_agent(&agent_a, &ckpt_a).expect("save a");
    checkpoint::save_agent(&agent_b, &ckpt_b).expect("save b");

    let mut child = Command::new(env!("CARGO_BIN_EXE_policy_server"))
        .arg(&ckpt_a)
        .arg("127.0.0.1:0")
        .env("CTJAM_SERVE_WORKERS", "2")
        .env("CTJAM_SERVE_TENANTS", format!("7={}", ckpt_b.display()))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn policy_server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = read_until_listening(&mut lines);

    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..4u64 {
        let (agent, tenant) = if t % 2 == 0 {
            (Arc::clone(&agent_a), 0u32)
        } else {
            (Arc::clone(&agent_b), 7u32)
        };
        let stop = Arc::clone(&stop);
        let config = config.clone();
        clients.push(thread::spawn(move || {
            let mut client = PolicyClient::connect_tenant(addr, tenant).expect("connect");
            let obs = observations(&config, 16, 600 + t);
            let mut answered = 0u64;
            for o in obs.iter().cycle() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match client.act(o) {
                    Ok(served) => {
                        assert_eq!(
                            served as usize,
                            agent.act_greedy(o),
                            "tenant {tenant} answer diverged during drain"
                        );
                        answered += 1;
                    }
                    // The drain races us: typed refusal or a closed
                    // socket end the run; silent wrong answers and
                    // panics are the failures this test exists for.
                    Err(ClientError::Rejected(_))
                    | Err(ClientError::Closed)
                    | Err(ClientError::Io(_)) => break,
                    Err(other) => panic!("unexpected client failure: {other}"),
                }
            }
            answered
        }));
    }

    // Load flows, then the orchestrator closes stdin mid-flight.
    thread::sleep(Duration::from_millis(300));
    drop(child.stdin.take());
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    let status = child.wait().expect("reap");
    stop.store(true, Ordering::Relaxed);
    let mut total = 0u64;
    for c in clients {
        total += c.join().expect("client thread panicked");
    }
    assert!(total > 0, "no requests answered before the drain");
    assert!(status.success(), "exit status {status:?}");
    assert!(
        rest.iter().any(|l| l == "SHUTDOWN_OK"),
        "no SHUTDOWN_OK in {rest:?}"
    );
    // The final snapshot carries both tenants' accounting.
    let metrics = rest
        .iter()
        .find(|l| l.starts_with("METRICS "))
        .expect("metrics line");
    assert!(
        metrics.contains("\"tenants\"") && metrics.contains("\"7\""),
        "final metrics miss tenant accounting: {metrics}"
    );
    std::fs::remove_file(&ckpt_a).ok();
    std::fs::remove_file(&ckpt_b).ok();
}
