//! Property-based tests for the wire protocol: decoding is *total* —
//! arbitrary, truncated, or mutated byte streams produce typed
//! [`WireError`]s, never panics — and well-formed frames round-trip
//! bit-exactly.

use ctjam_serve::protocol::{ErrorCode, Message, WireError, HEADER_LEN, MAX_PAYLOAD};
use proptest::prelude::*;

/// Builds one of each message kind from fuzzed fields. `action`
/// doubles as the fuzzed tenant id, so Observe frames cover both the
/// v1 (default tenant) and v2 (explicit tenant) encodings.
fn build_message(kind: u8, id: u64, action: u32, payload: &[f64]) -> Message {
    match kind % 5 {
        0 => Message::Observe {
            id,
            tenant: action,
            observation: payload.to_vec(),
        },
        1 => Message::Ping { id },
        2 => Message::Action { id, action },
        3 => Message::Pong { id },
        _ => Message::Error {
            id,
            code: ErrorCode::from_u16((action % 5) as u16 + 1).expect("codes 1..=5 exist"),
        },
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Total decoding: any outcome is fine, panicking is not.
        let _ = Message::decode(&bytes);
        let mut cursor = std::io::Cursor::new(&bytes);
        let _ = Message::read_from(&mut cursor);
    }

    #[test]
    fn well_formed_frames_round_trip(
        kind in any::<u8>(),
        id in any::<u64>(),
        action in any::<u32>(),
        payload in prop::collection::vec(any::<f64>(), 0..24),
    ) {
        let msg = build_message(kind, id, action, &payload);
        let bytes = msg.encode();
        let (back, used) = Message::decode(&bytes).expect("valid frame");
        prop_assert_eq!(used, bytes.len());
        // f64 NaNs break PartialEq; the re-encoding is the bit-exact oracle.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error(
        kind in any::<u8>(),
        id in any::<u64>(),
        action in any::<u32>(),
        payload in prop::collection::vec(any::<f64>(), 0..12),
        cut_seed in any::<u64>(),
    ) {
        let bytes = build_message(kind, id, action, &payload).encode();
        let cut = (cut_seed as usize) % bytes.len();
        match Message::decode(&bytes[..cut]) {
            Err(_) => {}
            Ok((msg, used)) => {
                // A shorter *valid* prefix can only happen if the frame
                // was self-delimiting earlier — impossible for a single
                // frame, so any Ok here is a bug.
                panic!("truncated to {cut}/{} yet decoded {msg:?} ({used} bytes)", bytes.len());
            }
        }
    }

    #[test]
    fn single_byte_mutations_never_panic(
        kind in any::<u8>(),
        id in any::<u64>(),
        action in any::<u32>(),
        payload in prop::collection::vec(any::<f64>(), 0..12),
        at_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = build_message(kind, id, action, &payload).encode();
        let at = (at_seed as usize) % bytes.len();
        bytes[at] ^= xor;
        // Mutations may still decode (e.g. a flipped payload bit) or
        // fail typed — either way, no panic, and a successful decode
        // must consume exactly the frame it claims.
        if let Ok((_, used)) = Message::decode(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(used >= HEADER_LEN);
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_not_allocated(
        id in any::<u64>(),
        above in 1u32..=u32::MAX - MAX_PAYLOAD,
    ) {
        // Craft a header announcing a payload beyond the cap, with no
        // payload bytes behind it. The typed rejection must come from
        // the header check alone — reaching for payload bytes would
        // yield Truncated instead, and a pre-validation allocation of
        // `above` bytes would OOM long before this loop finished.
        let mut bytes = Message::Ping { id }.encode();
        let huge = MAX_PAYLOAD + above;
        bytes[14..18].copy_from_slice(&huge.to_le_bytes());
        prop_assert_eq!(
            Message::decode(&bytes),
            Err(WireError::FrameTooLarge(huge))
        );
        let mut cursor = std::io::Cursor::new(&bytes);
        prop_assert!(matches!(
            Message::read_from(&mut cursor),
            Err(ctjam_serve::protocol::RecvError::Wire(WireError::FrameTooLarge(h))) if h == huge
        ));
    }

    #[test]
    fn concatenated_frames_parse_in_sequence(
        kinds in prop::collection::vec(any::<u8>(), 1..6),
        id in any::<u64>(),
        action in any::<u32>(),
        payload in prop::collection::vec(any::<f64>(), 0..8),
    ) {
        let msgs: Vec<Message> = kinds
            .iter()
            .map(|&k| build_message(k, id, action, &payload))
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            m.encode_into(&mut wire);
        }
        let mut offset = 0;
        for m in &msgs {
            let (back, used) = Message::decode(&wire[offset..]).expect("frame in sequence");
            prop_assert_eq!(back.encode(), m.encode());
            offset += used;
        }
        prop_assert_eq!(offset, wire.len());
    }
}
