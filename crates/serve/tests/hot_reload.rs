//! Hot-reload semantics: corrupt or incompatible checkpoints are
//! rejected while the old policy keeps serving; a validated swap never
//! drops a connection; and under concurrent reloads every answer is
//! consistent with exactly one of the two policies (no torn reads).

mod common;

use common::{observations, small_config, temp_file, trained_agent};
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::checkpoint::{self, CheckpointError};
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::client::PolicyClient;
use ctjam_serve::server::{PolicyServer, ReloadError, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime};

/// Like `common::trained_agent` but with a chosen number of replay
/// transitions — fewer transitions make a *shorter* checkpoint, which
/// the `(mtime, len)` watcher-signature tests rely on.
fn agent_with_replay(config: &DqnConfig, seed: u64, transitions: usize) -> DqnAgent {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    for i in 0..transitions {
        let mut state = vec![0.0; config.input_size()];
        state[i % config.input_size()] = ((i as f64) + seed as f64).sin();
        let next = state.clone();
        agent.observe(state, i % config.num_actions(), -1.0, next, &mut rng);
    }
    agent
}

/// Forces `path`'s mtime to `when` (needs write access to the file).
fn force_mtime(path: &std::path::Path, when: SystemTime) {
    std::fs::File::options()
        .write(true)
        .open(path)
        .expect("open for retime")
        .set_modified(when)
        .expect("set mtime");
}

fn mtime(path: &std::path::Path) -> SystemTime {
    std::fs::metadata(path)
        .expect("stat")
        .modified()
        .expect("mtime")
}

#[test]
fn shape_mismatch_is_rejected_and_old_policy_keeps_serving() {
    let config = small_config();
    let agent = trained_agent(&config, 50);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");

    // A checkpoint with twice the channels: num_actions differs.
    let wide_config = DqnConfig {
        num_channels: config.num_channels * 2,
        ..config.clone()
    };
    let wide_agent = trained_agent(&wide_config, 51);
    let path = temp_file("shape_mismatch");
    checkpoint::save_agent(&wide_agent, &path).expect("save");

    match server.reload_from(&path) {
        Err(ReloadError::ShapeMismatch { expected, found }) => {
            assert_eq!(expected.1, config.num_actions());
            assert_eq!(found.1, wide_config.num_actions());
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();

    // Still the original policy, bit-exactly.
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    for obs in observations(&config, 10, 0) {
        assert_eq!(
            client.act(&obs).expect("act") as usize,
            agent.act_greedy(&obs)
        );
    }
    server.shutdown();
}

#[test]
fn corrupted_checksum_is_rejected_and_old_policy_keeps_serving() {
    let config = small_config();
    let agent = trained_agent(&config, 52);
    let other_agent = trained_agent(&config, 53);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");

    let path = temp_file("corrupt");
    checkpoint::save_agent(&other_agent, &path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted checkpoint");

    match server.reload_from(&path) {
        Err(ReloadError::Checkpoint(CheckpointError::ChecksumMismatch)) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();

    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    for obs in observations(&config, 10, 1) {
        assert_eq!(
            client.act(&obs).expect("act") as usize,
            agent.act_greedy(&obs)
        );
    }
    server.shutdown();
}

#[test]
fn reload_under_load_answers_from_exactly_one_policy() {
    let config = small_config();
    let agent_a = trained_agent(&config, 54);
    let agent_b = trained_agent(&config, 55);
    let path_a = temp_file("policy_a");
    let path_b = temp_file("policy_b");
    checkpoint::save_agent(&agent_a, &path_a).expect("save a");
    checkpoint::save_agent(&agent_b, &path_b).expect("save b");

    // Observations where the two policies disagree — only those give
    // the torn-read check any power.
    let disagreeing: Vec<Vec<f64>> = observations(&config, 400, 2)
        .into_iter()
        .filter(|o| agent_a.act_greedy(o) != agent_b.act_greedy(o))
        .take(40)
        .collect();
    assert!(
        disagreeing.len() >= 8,
        "seeds 54/55 agree almost everywhere; pick new seeds"
    );

    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent_a),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let agent_a = Arc::new(agent_a);
    let agent_b = Arc::new(agent_b);
    let disagreeing = Arc::new(disagreeing);
    let mut workers = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        let agent_a = Arc::clone(&agent_a);
        let agent_b = Arc::clone(&agent_b);
        let obs = Arc::clone(&disagreeing);
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect(addr).expect("connect");
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for o in obs.iter() {
                    let served = client.act(o).expect("act under reload") as usize;
                    let from_a = agent_a.act_greedy(o);
                    let from_b = agent_b.act_greedy(o);
                    assert!(
                        served == from_a || served == from_b,
                        "torn answer {served}; policy A says {from_a}, policy B says {from_b}"
                    );
                    answered += 1;
                }
            }
            answered
        }));
    }

    // Flip between the two checkpoints as fast as the validation allows.
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut flips = 0u32;
    while Instant::now() < deadline {
        let path = if flips.is_multiple_of(2) {
            &path_b
        } else {
            &path_a
        };
        server.reload_from(path).expect("valid reload");
        flips += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    for w in workers {
        total += w.join().expect("client thread panicked");
    }
    assert!(flips >= 2, "reload loop never flipped");
    assert!(total > 0, "clients never got an answer in");
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
    server.shutdown();
}

#[test]
fn watcher_swaps_policies_without_dropping_the_connection() {
    let config = small_config();
    let agent_a = trained_agent(&config, 56);
    let agent_b = trained_agent(&config, 57);
    let obs: Vec<f64> = observations(&config, 200, 3)
        .into_iter()
        .find(|o| agent_a.act_greedy(o) != agent_b.act_greedy(o))
        .expect("seeds 56/57 disagree somewhere");

    let path = temp_file("watched");
    checkpoint::save_agent(&agent_a, &path).expect("save a");
    let mut server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::load_checkpoint(&path).expect("load"),
        ServerConfig {
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server.watch_checkpoint(path.clone());

    // ONE connection across the swap: it must observe the new policy
    // without ever reconnecting.
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    assert_eq!(
        client.act(&obs).expect("act before swap") as usize,
        agent_a.act_greedy(&obs)
    );

    // Atomic overwrite (tempfile + rename inside save_agent); make the
    // mtime unmistakably newer for coarse-grained filesystems.
    thread::sleep(Duration::from_millis(20));
    checkpoint::save_agent(&agent_b, &path).expect("save b");

    let expected = agent_b.act_greedy(&obs);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = client.act(&obs).expect("act across swap") as usize;
        if served == expected {
            break;
        }
        assert_eq!(
            served,
            agent_a.act_greedy(&obs),
            "answer from neither policy"
        );
        assert!(
            Instant::now() < deadline,
            "watcher never applied the new checkpoint"
        );
        thread::sleep(Duration::from_millis(10));
    }
    std::fs::remove_file(&path).ok();
    server.shutdown();
}

/// Regression: the watcher must commit its change signature only after
/// a *successful* reload. The old code updated `last_seen` first, so a
/// transiently failing file was never retried until its mtime moved
/// again — here the repaired checkpoint is pinned to the failing
/// write's exact mtime, which the old watcher would ignore forever.
#[test]
fn watcher_retries_a_failed_reload_next_poll() {
    let config = small_config();
    let agent_a = trained_agent(&config, 58);
    let agent_b = trained_agent(&config, 59);
    let obs: Vec<f64> = observations(&config, 200, 4)
        .into_iter()
        .find(|o| agent_a.act_greedy(o) != agent_b.act_greedy(o))
        .expect("seeds 58/59 disagree somewhere");

    let path = temp_file("retry");
    checkpoint::save_agent(&agent_a, &path).expect("save a");
    let mut server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::load_checkpoint(&path).expect("load"),
        ServerConfig {
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server.watch_checkpoint(path.clone());
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    assert_eq!(
        client.act(&obs).expect("act before failure") as usize,
        agent_a.act_greedy(&obs)
    );

    // A bad publish: the watcher sees a new signature, tries to
    // reload, and is rejected. Give it a few polls to hit the file.
    thread::sleep(Duration::from_millis(20));
    std::fs::write(&path, b"this is not a checkpoint").expect("write garbage");
    thread::sleep(Duration::from_millis(60));
    assert_eq!(
        client.act(&obs).expect("act after failed reload") as usize,
        agent_a.act_greedy(&obs),
        "a rejected reload must leave the old policy serving"
    );
    let failed_mtime = mtime(&path);

    // Repair the file, pinning the failing write's exact mtime: the
    // replacement is retimed *before* the rename (which preserves
    // mtime), so the watcher can only ever observe the pinned
    // signature. With mtime-only tracking committed before the
    // reload, this repair is invisible; the (mtime, len) signature
    // committed only on success picks it up on the next poll.
    let side = temp_file("retry_side");
    checkpoint::save_agent(&agent_b, &side).expect("save b");
    force_mtime(&side, failed_mtime);
    std::fs::rename(&side, &path).expect("publish repair");

    let expected = agent_b.act_greedy(&obs);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = client.act(&obs).expect("act across retry") as usize;
        if served == expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watcher never retried the failed reload"
        );
        thread::sleep(Duration::from_millis(10));
    }
    std::fs::remove_file(&path).ok();
    server.shutdown();
}

/// Regression: a republish landing in the same filesystem-timestamp
/// granule as the previous one must still be applied when the file
/// length changes — the watcher keys on `(mtime, len)`, not mtime
/// alone. The two checkpoints differ in replay fill, so their lengths
/// differ while their shapes (and thus reload validity) match.
#[test]
fn watcher_catches_a_same_mtime_republish() {
    let config = small_config();
    let agent_short = agent_with_replay(&config, 60, 8);
    let agent_long = agent_with_replay(&config, 61, 64);
    let obs: Vec<f64> = observations(&config, 200, 5)
        .into_iter()
        .find(|o| agent_short.act_greedy(o) != agent_long.act_greedy(o))
        .expect("seeds 60/61 disagree somewhere");

    let path = temp_file("same_mtime");
    checkpoint::save_agent(&agent_short, &path).expect("save short");
    let first_len = std::fs::metadata(&path).expect("stat").len();
    let first_mtime = mtime(&path);

    // A slow poll gives the republish below time to land inside the
    // watcher's very first sleep, so the only signature it ever
    // compares against is the pinned-mtime one.
    let mut server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::load_checkpoint(&path).expect("load"),
        ServerConfig {
            poll_interval: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server.watch_checkpoint(path.clone());

    // Let the watcher take its baseline signature (it does so at
    // spawn, well within the first 100 ms sleep), then republish and
    // pin the mtime back to the first publish's — the worst case a
    // coarse-timestamp filesystem can produce for two back-to-back
    // publishes.
    thread::sleep(Duration::from_millis(30));
    checkpoint::save_agent(&agent_long, &path).expect("save long");
    force_mtime(&path, first_mtime);
    let second_len = std::fs::metadata(&path).expect("stat").len();
    assert_ne!(
        first_len, second_len,
        "fixture lost its power: both checkpoints have the same length"
    );
    assert_eq!(mtime(&path), first_mtime, "mtime pin did not take");

    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    let expected = agent_long.act_greedy(&obs);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = client.act(&obs).expect("act across republish") as usize;
        if served == expected {
            break;
        }
        assert_eq!(
            served,
            agent_short.act_greedy(&obs),
            "answer from neither policy"
        );
        assert!(
            Instant::now() < deadline,
            "watcher swallowed the same-mtime republish"
        );
        thread::sleep(Duration::from_millis(20));
    }
    std::fs::remove_file(&path).ok();
    server.shutdown();
}
