//! Shared fixtures for the serve integration tests: seeded small
//! agents, deterministic observation streams, and unique temp paths.

#![allow(dead_code)] // each test binary uses a different subset

use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A config small enough that a forward pass is microseconds.
pub fn small_config() -> DqnConfig {
    DqnConfig {
        history_len: 3,
        num_channels: 4,
        num_power_levels: 2,
        hidden: (16, 12),
        replay_capacity: 256,
        batch_size: 8,
        warmup: 16,
        ..DqnConfig::default()
    }
}

/// A seeded agent with a few training transitions applied, so its
/// weights (and greedy actions) vary with the seed.
pub fn trained_agent(config: &DqnConfig, seed: u64) -> DqnAgent {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    for i in 0..64 {
        let mut state = vec![0.0; config.input_size()];
        state[i % config.input_size()] = ((i as f64) + seed as f64).sin();
        let next = state.clone();
        agent.observe(state, i % config.num_actions(), -1.0, next, &mut rng);
    }
    agent
}

/// A deterministic observation stream: `n` vectors of the config's
/// input width, varying with `salt`.
pub fn observations(config: &DqnConfig, n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..config.input_size())
                .map(|j| ((i as u64 * 37 + j as u64 * 11 + salt * 101) as f64).sin())
                .collect()
        })
        .collect()
}

/// A temp path unique to this process and call site.
pub fn temp_file(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ctjam_serve_{tag}_{}_{n}.ckpt", std::process::id()))
}
