//! Multi-tenant serving: v1 and v2 clients sharing one server, tenant
//! isolation under hot-reload, typed unknown-tenant rejections, and
//! the drain guarantee holding across every tenant at once.

mod common;

use common::{observations, small_config, temp_file, trained_agent};
use ctjam_dqn::checkpoint;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::client::{ClientError, PolicyClient};
use ctjam_serve::protocol::{ErrorCode, DEFAULT_TENANT};
use ctjam_serve::server::{PolicyServer, ReloadError, ServerConfig, TenantError};
use ctjam_telemetry::JsonValue;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const TENANT_B: u32 = 7;

/// Two tenants, four clients (two v1 implicit-default, two v2
/// explicit), all pipelining concurrently across 2 workers: every
/// reply must be bit-exact against *that tenant's* agent.
#[test]
fn v1_and_v2_clients_are_bit_exact_concurrently() {
    let config = small_config();
    let agent_a = Arc::new(trained_agent(&config, 70));
    let agent_b = Arc::new(trained_agent(&config, 71));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent_a),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server
        .add_tenant(TENANT_B, GreedyPolicy::from_agent(&agent_b))
        .expect("add tenant");
    assert_eq!(server.tenant_ids(), vec![DEFAULT_TENANT, TENANT_B]);
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let agent = if t % 2 == 0 {
            Arc::clone(&agent_a)
        } else {
            Arc::clone(&agent_b)
        };
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = if t % 2 == 0 {
                // v1 path: no tenant on the wire at all.
                PolicyClient::connect(addr).expect("connect v1")
            } else {
                PolicyClient::connect_tenant(addr, TENANT_B).expect("connect v2")
            };
            for obs in observations(&config, 40, 400 + t) {
                assert_eq!(
                    client.act(&obs).expect("act") as usize,
                    agent.act_greedy(&obs),
                    "tenant isolation broken for client {t}"
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread panicked");
    }

    let metrics = server.shutdown();
    let tenants = metrics.get("tenants").expect("tenants object");
    for id in ["0", "7"] {
        let counters = tenants
            .get(id)
            .and_then(|t| t.get("counters"))
            .unwrap_or_else(|| panic!("tenant {id} metrics missing"));
        assert_eq!(counters.get("requests"), Some(&JsonValue::Num(80.0)));
        assert_eq!(counters.get("responses"), Some(&JsonValue::Num(80.0)));
    }
}

/// An unknown tenant id is a per-request typed rejection, not a
/// connection error — and a tenant registered *after* the miss is
/// picked up by the same connection (no negative caching).
#[test]
fn unknown_tenant_is_typed_and_late_registration_is_seen() {
    let config = small_config();
    let agent_a = trained_agent(&config, 72);
    let agent_b = trained_agent(&config, 73);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent_a),
        ServerConfig::default(),
    )
    .expect("bind");

    let mut client = PolicyClient::connect_tenant(server.local_addr(), TENANT_B).expect("connect");
    let obs = &observations(&config, 1, 8)[0];
    match client.act(obs) {
        Err(ClientError::Rejected(ErrorCode::UnknownTenant)) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }

    // Same connection, same tenant id — now registered.
    server
        .add_tenant(TENANT_B, GreedyPolicy::from_agent(&agent_b))
        .expect("add tenant");
    assert_eq!(
        client.act(obs).expect("act after registration") as usize,
        agent_b.act_greedy(obs)
    );

    // And the default tenant still answers on the same connection.
    client.set_tenant(DEFAULT_TENANT);
    assert_eq!(
        client.act(obs).expect("act as default") as usize,
        agent_a.act_greedy(obs)
    );

    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("unknown_tenant"), Some(&JsonValue::Num(1.0)));
}

#[test]
fn duplicate_tenant_ids_are_refused() {
    let config = small_config();
    let agent = trained_agent(&config, 74);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    assert_eq!(
        server.add_tenant(DEFAULT_TENANT, GreedyPolicy::from_agent(&agent)),
        Err(TenantError::Duplicate(DEFAULT_TENANT))
    );
    server.shutdown();
}

/// Reloading one tenant must not disturb another: tenant B hot-swaps
/// to a new policy while tenant 0 keeps serving its original one,
/// both observed over live connections. Shape validation is also
/// per-tenant.
#[test]
fn tenant_reloads_are_isolated() {
    let config = small_config();
    let agent_a = trained_agent(&config, 75);
    let agent_b = trained_agent(&config, 76);
    let agent_b2 = trained_agent(&config, 77);
    let obs: Vec<f64> = observations(&config, 200, 9)
        .into_iter()
        .find(|o| {
            agent_b.act_greedy(o) != agent_b2.act_greedy(o)
                && agent_a.act_greedy(o) != agent_b2.act_greedy(o)
        })
        .expect("seeds 75/76/77 disagree somewhere");

    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent_a),
        ServerConfig::default(),
    )
    .expect("bind");
    server
        .add_tenant(TENANT_B, GreedyPolicy::from_agent(&agent_b))
        .expect("add tenant");
    let addr = server.local_addr();

    let mut client_a = PolicyClient::connect(addr).expect("connect a");
    let mut client_b = PolicyClient::connect_tenant(addr, TENANT_B).expect("connect b");
    assert_eq!(
        client_b.act(&obs).expect("act b before swap") as usize,
        agent_b.act_greedy(&obs)
    );

    let path = temp_file("tenant_b2");
    checkpoint::save_agent(&agent_b2, &path).expect("save b2");
    server
        .reload_tenant_from(TENANT_B, &path)
        .expect("reload b");

    // B swapped, same connection; A untouched, same connection.
    assert_eq!(
        client_b.act(&obs).expect("act b after swap") as usize,
        agent_b2.act_greedy(&obs)
    );
    assert_eq!(
        client_a.act(&obs).expect("act a after b's swap") as usize,
        agent_a.act_greedy(&obs)
    );

    // Unknown tenant ids are typed.
    match server.reload_tenant_from(99, &path) {
        Err(ReloadError::UnknownTenant(99)) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }

    // Shape validation stays per-tenant: a wider checkpoint is
    // refused for B even though it never matched A either.
    let wide = DqnConfig {
        num_channels: config.num_channels * 2,
        ..config.clone()
    };
    let wide_path = temp_file("tenant_wide");
    checkpoint::save_agent(&trained_agent(&wide, 78), &wide_path).expect("save wide");
    match server.reload_tenant_from(TENANT_B, &wide_path) {
        Err(ReloadError::ShapeMismatch { .. }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    assert_eq!(
        client_b.act(&obs).expect("act b after rejected swap") as usize,
        agent_b2.act_greedy(&obs)
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wide_path).ok();
    let metrics = server.shutdown();
    let tenant_b = metrics
        .get("tenants")
        .and_then(|t| t.get("7"))
        .expect("tenant 7 metrics");
    let counters = tenant_b.get("counters").expect("tenant counters");
    assert_eq!(counters.get("reloads_ok"), Some(&JsonValue::Num(1.0)));
    assert_eq!(counters.get("reloads_rejected"), Some(&JsonValue::Num(1.0)));
}

/// Per-tenant checkpoint watchers act independently: publishing a new
/// checkpoint for tenant B swaps B and leaves the default tenant's
/// policy alone.
#[test]
fn per_tenant_watcher_swaps_only_its_tenant() {
    let config = small_config();
    let agent_a = trained_agent(&config, 80);
    let agent_b = trained_agent(&config, 81);
    let agent_b2 = trained_agent(&config, 82);
    let obs: Vec<f64> = observations(&config, 200, 10)
        .into_iter()
        .find(|o| agent_b.act_greedy(o) != agent_b2.act_greedy(o))
        .expect("seeds 81/82 disagree somewhere");

    let path_b = temp_file("watched_b");
    checkpoint::save_agent(&agent_b, &path_b).expect("save b");
    let mut server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent_a),
        ServerConfig {
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server
        .add_tenant(
            TENANT_B,
            GreedyPolicy::load_checkpoint(&path_b).expect("load"),
        )
        .expect("add tenant");
    server
        .watch_tenant_checkpoint(TENANT_B, path_b.clone())
        .expect("watch b");
    assert_eq!(
        server.watch_tenant_checkpoint(99, path_b.clone()),
        Err(TenantError::Unknown(99))
    );

    let mut client_b =
        PolicyClient::connect_tenant(server.local_addr(), TENANT_B).expect("connect");
    assert_eq!(
        client_b.act(&obs).expect("act before swap") as usize,
        agent_b.act_greedy(&obs)
    );

    thread::sleep(Duration::from_millis(20));
    checkpoint::save_agent(&agent_b2, &path_b).expect("publish b2");

    let expected = agent_b2.act_greedy(&obs);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = client_b.act(&obs).expect("act across swap") as usize;
        if served == expected {
            break;
        }
        assert!(Instant::now() < deadline, "tenant watcher never swapped");
        thread::sleep(Duration::from_millis(10));
    }
    // The default tenant never moved.
    let mut client_a = PolicyClient::connect(server.local_addr()).expect("connect a");
    assert_eq!(
        client_a.act(&obs).expect("act a") as usize,
        agent_a.act_greedy(&obs)
    );
    std::fs::remove_file(&path_b).ok();
    server.shutdown();
}

/// The drain guarantee spans tenants: shutdown races a burst of
/// pipelined requests for both tenants, and every admitted request is
/// answered — globally and per tenant, responses == recorded
/// latencies.
#[test]
fn graceful_drain_answers_every_tenant() {
    let config = small_config();
    let agent_a = Arc::new(trained_agent(&config, 83));
    let agent_b = Arc::new(trained_agent(&config, 84));
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent_a),
        ServerConfig {
            workers: 2,
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server
        .add_tenant(TENANT_B, GreedyPolicy::from_agent(&agent_b))
        .expect("add tenant");
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let (agent, tenant) = if t % 2 == 0 {
            (Arc::clone(&agent_a), DEFAULT_TENANT)
        } else {
            (Arc::clone(&agent_b), TENANT_B)
        };
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = PolicyClient::connect_tenant(addr, tenant).expect("connect");
            for obs in observations(&config, 20, 500 + t) {
                match client.act(&obs) {
                    Ok(served) => assert_eq!(served as usize, agent.act_greedy(&obs)),
                    Err(ClientError::Rejected(ErrorCode::ShuttingDown))
                    | Err(ClientError::Closed)
                    | Err(ClientError::Io(_)) => return,
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            }
        }));
    }
    thread::sleep(Duration::from_millis(30));
    let metrics = server.shutdown();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    let num = |v: Option<&JsonValue>| match v {
        Some(&JsonValue::Num(n)) => n,
        other => panic!("expected a number, got {other:?}"),
    };
    let counters = metrics.get("counters").expect("counters");
    let responses = num(counters.get("responses"));
    let latency = metrics.get("latency_us").expect("latency_us");
    assert_eq!(latency.get("count"), Some(&JsonValue::Num(responses)));
    let tenants = metrics.get("tenants").expect("tenants");
    let mut tenant_responses = 0.0;
    for id in ["0", "7"] {
        let t = tenants.get(id).expect("tenant entry");
        let r = num(t.get("counters").expect("tenant counters").get("responses"));
        let c = num(t.get("latency_us").expect("tenant latency").get("count"));
        assert_eq!(r, c, "tenant {id} dropped an admitted request");
        tenant_responses += r;
    }
    assert_eq!(
        tenant_responses, responses,
        "tenant responses do not sum to the global count"
    );
}
