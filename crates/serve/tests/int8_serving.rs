//! The int8 serving mode end-to-end: a gated quantized policy answers
//! real loopback traffic with ≥ 99.5% greedy-action agreement against
//! the f64 oracle, the metrics report the admission and the int8
//! batches, hot-reloads re-run the gate, and the default configuration
//! never touches the quantized path.

mod common;

use common::{observations, small_config, temp_file, trained_agent};
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::checkpoint;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::client::PolicyClient;
use ctjam_serve::server::{PolicyServer, ServerConfig, INT8_MIN_AGREEMENT};
use ctjam_telemetry::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An agent trained on strictly graded per-action rewards, so its
/// greedy policy has decisive Q-margins everywhere — the regime the
/// int8 agreement gate is designed for (see `ctjam-dqn`'s
/// `quant_gate` test for the rationale).
fn decisive_agent(seed: u64) -> DqnAgent {
    let config = small_config();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    for i in 0..800 {
        let state: Vec<f64> = (0..config.input_size())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let next: Vec<f64> = (0..config.input_size())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let action = i % config.num_actions();
        let reward = 1.0 - 0.4 * action as f64;
        agent.observe(state, action, reward, next, &mut rng);
    }
    agent
}

fn counter(metrics: &JsonValue, name: &str) -> f64 {
    match metrics.get("counters").and_then(|c| c.get(name)) {
        Some(&JsonValue::Num(n)) => n,
        other => panic!("missing counter {name}: {other:?}"),
    }
}

#[test]
fn int8_mode_serves_with_wire_level_agreement_above_the_gate() {
    let config = small_config();
    let agent = decisive_agent(60);
    let policy = GreedyPolicy::from_agent(&agent);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        policy,
        ServerConfig {
            quantize_int8: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    assert!(
        server.int8_active(),
        "a decisively trained policy must clear the agreement gate"
    );

    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    let obs_set = observations(&config, 400, 7);
    let mut agree = 0usize;
    for obs in &obs_set {
        let served = client.act(obs).expect("act") as usize;
        assert!(served < config.num_actions(), "action out of range");
        if served == agent.act_greedy(obs) {
            agree += 1;
        }
    }
    let agreement = agree as f64 / obs_set.len() as f64;
    assert!(
        agreement >= INT8_MIN_AGREEMENT,
        "wire-level agreement {agreement} below the {INT8_MIN_AGREEMENT} gate"
    );

    let metrics = server.shutdown();
    assert_eq!(counter(&metrics, "quant_admissions"), 1.0);
    assert_eq!(counter(&metrics, "quant_gate_failures"), 0.0);
    let batches = counter(&metrics, "batches");
    assert!(batches >= 1.0);
    // Every flush went through the int8 path, none through f64.
    assert_eq!(counter(&metrics, "int8_batches"), batches);
}

#[test]
fn hot_reload_requantizes_behind_the_gate() {
    let first = decisive_agent(61);
    let second = decisive_agent(62);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&first),
        ServerConfig {
            quantize_int8: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    assert!(server.int8_active());

    let path = temp_file("int8_reload");
    checkpoint::save_agent(&second, &path).expect("save");
    server.reload_from(&path).expect("reload");
    std::fs::remove_file(&path).ok();
    assert!(
        server.int8_active(),
        "reloaded policy must re-clear the gate"
    );

    // The reloaded quantization serves the *new* policy's actions.
    let config = small_config();
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    let obs_set = observations(&config, 200, 8);
    let mut agree = 0usize;
    for obs in &obs_set {
        if client.act(obs).expect("act") as usize == second.act_greedy(obs) {
            agree += 1;
        }
    }
    let agreement = agree as f64 / obs_set.len() as f64;
    assert!(
        agreement >= INT8_MIN_AGREEMENT,
        "post-reload agreement {agreement}"
    );

    let metrics = server.shutdown();
    assert_eq!(counter(&metrics, "quant_admissions"), 2.0);
    assert_eq!(counter(&metrics, "reloads_ok"), 1.0);
}

#[test]
fn default_config_never_touches_the_quantized_path() {
    let config = small_config();
    let agent = trained_agent(&config, 63);
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&agent),
        ServerConfig::default(),
    )
    .expect("bind");
    assert!(!server.int8_active(), "int8 must be opt-in");

    // f64 serving stays bit-exact against the in-process agent.
    let mut client = PolicyClient::connect(server.local_addr()).expect("connect");
    for obs in observations(&config, 50, 9) {
        assert_eq!(
            client.act(&obs).expect("act") as usize,
            agent.act_greedy(&obs)
        );
    }
    let metrics = server.shutdown();
    assert_eq!(counter(&metrics, "quant_admissions"), 0.0);
    assert_eq!(counter(&metrics, "quant_gate_failures"), 0.0);
    assert_eq!(counter(&metrics, "int8_batches"), 0.0);
}

#[test]
fn shape_guard_rejects_reload_before_requantization() {
    // A shape-mismatched reload must be refused without consuming a
    // quantization admission (the gate only runs on accepted policies).
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(&decisive_agent(64)),
        ServerConfig {
            quantize_int8: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let wide = DqnConfig {
        num_channels: small_config().num_channels * 2,
        ..small_config()
    };
    let wide_agent = trained_agent(&wide, 65);
    let path = temp_file("int8_shape_guard");
    checkpoint::save_agent(&wide_agent, &path).expect("save");
    assert!(server.reload_from(&path).is_err());
    std::fs::remove_file(&path).ok();

    assert!(server.int8_active(), "original admission survives");
    let metrics = server.shutdown();
    assert_eq!(counter(&metrics, "quant_admissions"), 1.0);
    assert_eq!(counter(&metrics, "reloads_rejected"), 1.0);
}
