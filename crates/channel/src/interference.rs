//! How different jamming-signal families couple into a ZigBee receiver.
//!
//! The paper's Fig. 2(b) experiment ranks jammers EmuBee > ZigBee > Wi-Fi.
//! Three mechanisms produce that ordering, and this module models each:
//!
//! 1. **Transmit power.** EmuBee rides a Wi-Fi front end (up to 100 mW /
//!    20 dBm); a conventional ZigBee jammer is energy-constrained
//!    (≈ 1 mW / 0 dBm).
//! 2. **Spectral overlap.** A 20 MHz Wi-Fi waveform spreads its power over
//!    10× the ZigBee bandwidth, so only ~1/10 lands in the victim channel;
//!    ZigBee-shaped signals (real or emulated) concentrate everything
//!    in-channel.
//! 3. **DSSS processing gain.** The despreader correlates 32 chips per
//!    symbol. Uncorrelated interference (plain Wi-Fi OFDM) is averaged
//!    down by the full spreading factor — 10·log₁₀(32) ≈ 15 dB — while a
//!    chip-faithful waveform (ZigBee or EmuBee) *is* valid chip energy and
//!    bypasses the gain entirely. This is why the paper finds plain Wi-Fi
//!    the weakest jammer despite its 20 dB power advantage.

use crate::units::db_to_linear;

/// DSSS processing gain of the 802.15.4 despreader against uncorrelated
/// interference, in dB: the 32-chip correlation averages uncorrelated
/// energy down by the spreading factor, 10·log₁₀(32) ≈ 15 dB.
pub const DSSS_PROCESSING_GAIN_DB: f64 = 15.05;

/// The family a jamming signal belongs to, which determines how the
/// victim's receiver experiences it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterferenceKind {
    /// A Wi-Fi-emulated ZigBee waveform: Wi-Fi power, ZigBee shape.
    EmuBee,
    /// A genuine ZigBee waveform from a ZigBee radio.
    ZigBee,
    /// A plain Wi-Fi OFDM burst: noise-like to the despreader.
    WifiOfdm,
    /// Wideband Gaussian noise.
    Noise,
}

impl InterferenceKind {
    /// Fraction of the jammer's transmit power that lands inside the
    /// victim's 2 MHz channel.
    pub fn in_channel_fraction(self) -> f64 {
        match self {
            // ZigBee-shaped waveforms put all power in the 2 MHz channel.
            InterferenceKind::EmuBee | InterferenceKind::ZigBee => 1.0,
            // A 20 MHz waveform overlaps a 2 MHz channel with 1/10 of its
            // power (uniform spectral density approximation).
            InterferenceKind::WifiOfdm | InterferenceKind::Noise => {
                ctjam_phy::zigbee::CHANNEL_BANDWIDTH_HZ / ctjam_phy::wifi::CHANNEL_BANDWIDTH_HZ
            }
        }
    }

    /// Whether the despreader's processing gain suppresses this signal.
    ///
    /// Chip-faithful waveforms correlate with the PN sequences and defeat
    /// the gain; noise-like waveforms are suppressed by it.
    pub fn defeats_processing_gain(self) -> bool {
        matches!(self, InterferenceKind::EmuBee | InterferenceKind::ZigBee)
    }

    /// Multiplies an in-channel interference power (linear, mW) into the
    /// *effective* power seen at the despreader's decision point.
    pub fn effective_power_mw(self, in_channel_mw: f64) -> f64 {
        if self.defeats_processing_gain() {
            in_channel_mw
        } else {
            in_channel_mw / db_to_linear(DSSS_PROCESSING_GAIN_DB)
        }
    }

    /// Whether the victim radio can *detect* this signal as a jammer.
    ///
    /// EmuBee decodes as valid chips but never forms a valid frame, so
    /// intrusion detection that looks for malformed ZigBee packets or
    /// energy bursts misses it (the paper's stealthiness property).
    /// A ZigBee jammer emits attributable ZigBee packets; plain Wi-Fi and
    /// noise show up as anomalous wideband energy.
    pub fn is_stealthy(self) -> bool {
        matches!(self, InterferenceKind::EmuBee)
    }

    /// Typical transmit power in dBm for the radio class that emits this
    /// kind of signal (paper §II.B: Wi-Fi up to 100 mW, ZigBee ≈ 1 mW).
    pub fn typical_tx_dbm(self) -> f64 {
        match self {
            InterferenceKind::EmuBee | InterferenceKind::WifiOfdm | InterferenceKind::Noise => 20.0,
            InterferenceKind::ZigBee => 0.0,
        }
    }

    /// Number of consecutive ZigBee channels one transmission can cover.
    pub fn channels_covered(self) -> usize {
        match self {
            InterferenceKind::EmuBee | InterferenceKind::WifiOfdm | InterferenceKind::Noise => {
                ctjam_phy::wifi::ZIGBEE_CHANNELS_COVERED
            }
            InterferenceKind::ZigBee => 1,
        }
    }
}

/// A single interference source impinging on the victim receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Signal family.
    pub kind: InterferenceKind,
    /// Power arriving at the victim antenna, in dBm (after path loss).
    pub received_dbm: f64,
}

impl Interferer {
    /// Effective interference power at the despreader decision point, in
    /// milliwatts.
    pub fn effective_mw(&self) -> f64 {
        let in_channel =
            crate::units::dbm_to_mw(self.received_dbm) * self.kind.in_channel_fraction();
        self.kind.effective_power_mw(in_channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper_for_equal_distance() {
        // Same path loss for everyone: EmuBee > ZigBee > WiFi in effective
        // power (EmuBee has Wi-Fi power AND defeats the processing gain).
        let loss_db = 60.0;
        let effective = |kind: InterferenceKind| {
            Interferer {
                kind,
                received_dbm: kind.typical_tx_dbm() - loss_db,
            }
            .effective_mw()
        };
        let emubee = effective(InterferenceKind::EmuBee);
        let zigbee = effective(InterferenceKind::ZigBee);
        let wifi = effective(InterferenceKind::WifiOfdm);
        assert!(
            emubee > zigbee,
            "EmuBee {emubee} should beat ZigBee {zigbee}"
        );
        assert!(zigbee > wifi, "ZigBee {zigbee} should beat WiFi {wifi}");
    }

    #[test]
    fn emubee_is_20db_stronger_than_zigbee_jammer() {
        // Same shape, Wi-Fi front end: the 100 mW vs 1 mW gap is 20 dB.
        let e = InterferenceKind::EmuBee.typical_tx_dbm();
        let z = InterferenceKind::ZigBee.typical_tx_dbm();
        assert_eq!(e - z, 20.0);
    }

    #[test]
    fn wifi_suppressed_by_bandwidth_and_gain() {
        let wifi = Interferer {
            kind: InterferenceKind::WifiOfdm,
            received_dbm: 0.0,
        };
        // 1 mW received → 0.1 mW in channel → /32 processing gain.
        let expected = 0.1 / db_to_linear(DSSS_PROCESSING_GAIN_DB);
        assert!((wifi.effective_mw() - expected).abs() < 1e-9);
    }

    #[test]
    fn only_emubee_is_stealthy() {
        assert!(InterferenceKind::EmuBee.is_stealthy());
        assert!(!InterferenceKind::ZigBee.is_stealthy());
        assert!(!InterferenceKind::WifiOfdm.is_stealthy());
        assert!(!InterferenceKind::Noise.is_stealthy());
    }

    #[test]
    fn wideband_kinds_cover_four_channels() {
        assert_eq!(InterferenceKind::EmuBee.channels_covered(), 4);
        assert_eq!(InterferenceKind::ZigBee.channels_covered(), 1);
    }

    #[test]
    fn processing_gain_is_the_spreading_factor() {
        assert!((db_to_linear(DSSS_PROCESSING_GAIN_DB) - 32.0).abs() < 0.4);
    }
}
