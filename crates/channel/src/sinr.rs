//! Signal-to-interference-plus-noise ratio.

use crate::interference::Interferer;
use crate::noise::NoiseFloor;
use crate::units::{dbm_to_mw, linear_to_db};

/// Computes the SINR (linear ratio) at the despreader decision point.
///
/// Interference powers add linearly; each interferer is weighted by its
/// kind's in-channel fraction and processing-gain suppression before the
/// sum (see [`crate::interference`]).
///
/// ```
/// use ctjam_channel::sinr::sinr_linear;
/// use ctjam_channel::noise::NoiseFloor;
///
/// // Without interference the SINR equals SNR.
/// let snr = sinr_linear(-70.0, &[], &NoiseFloor::zigbee());
/// assert!(snr > 1.0e3);
/// ```
pub fn sinr_linear(signal_dbm: f64, interferers: &[Interferer], noise: &NoiseFloor) -> f64 {
    let signal_mw = dbm_to_mw(signal_dbm);
    let interference_mw: f64 = interferers.iter().map(Interferer::effective_mw).sum();
    signal_mw / (interference_mw + noise.power_mw())
}

/// [`sinr_linear`] expressed in dB.
pub fn sinr_db(signal_dbm: f64, interferers: &[Interferer], noise: &NoiseFloor) -> f64 {
    linear_to_db(sinr_linear(signal_dbm, interferers, noise))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceKind;

    #[test]
    fn interference_lowers_sinr() {
        let noise = NoiseFloor::zigbee();
        let clean = sinr_linear(-70.0, &[], &noise);
        let jammed = sinr_linear(
            -70.0,
            &[Interferer {
                kind: InterferenceKind::EmuBee,
                received_dbm: -65.0,
            }],
            &noise,
        );
        assert!(jammed < clean);
        // A 5 dB-stronger chip-faithful jammer pushes SINR below -4 dB.
        assert!(linear_to_db(jammed) < -4.0);
    }

    #[test]
    fn interferers_accumulate() {
        let noise = NoiseFloor::zigbee();
        let one = [Interferer {
            kind: InterferenceKind::ZigBee,
            received_dbm: -75.0,
        }];
        let two = [one[0], one[0]];
        assert!(sinr_linear(-70.0, &two, &noise) < sinr_linear(-70.0, &one, &noise));
    }

    #[test]
    fn db_and_linear_agree() {
        let noise = NoiseFloor::zigbee();
        let interferers = [Interferer {
            kind: InterferenceKind::WifiOfdm,
            received_dbm: -60.0,
        }];
        let lin = sinr_linear(-72.0, &interferers, &noise);
        let db = sinr_db(-72.0, &interferers, &noise);
        assert!((linear_to_db(lin) - db).abs() < 1e-12);
    }
}
