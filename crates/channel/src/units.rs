//! Decibel and power-unit conversions.
//!
//! All channel math happens in dB/dBm where quantities multiply, and in
//! linear milliwatts where they add (interference powers sum linearly).

/// Converts a power in milliwatts to dBm.
///
/// # Panics
///
/// Panics if `mw` is not strictly positive.
///
/// ```
/// use ctjam_channel::units::mw_to_dbm;
/// assert_eq!(mw_to_dbm(1.0), 0.0);
/// assert_eq!(mw_to_dbm(100.0), 20.0);
/// ```
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(
        mw > 0.0,
        "power must be positive to express in dBm, got {mw}"
    );
    10.0 * mw.log10()
}

/// Converts a power in dBm to milliwatts.
///
/// ```
/// use ctjam_channel::units::dbm_to_mw;
/// assert_eq!(dbm_to_mw(0.0), 1.0);
/// assert!((dbm_to_mw(20.0) - 100.0).abs() < 1e-9);
/// ```
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a dB ratio to a linear ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear ratio to dB.
///
/// # Panics
///
/// Panics if `ratio` is not strictly positive.
pub fn linear_to_db(ratio: f64) -> f64 {
    assert!(
        ratio > 0.0,
        "ratio must be positive to express in dB, got {ratio}"
    );
    10.0 * ratio.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_roundtrip() {
        for dbm in [-90.0, -30.0, 0.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn db_roundtrip() {
        for db in [-40.0, -3.0, 0.0, 9.0, 30.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn three_db_doubles() {
        assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_power_has_no_dbm() {
        mw_to_dbm(0.0);
    }
}
