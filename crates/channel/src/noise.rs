//! Thermal noise floor.
//!
//! `N = −174 dBm/Hz + 10·log₁₀(BW) + NF` — the receiver-side noise power
//! against which SINR is computed.

/// Thermal noise power spectral density at 290 K, in dBm/Hz.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -174.0;

/// A receiver noise model.
///
/// ```
/// use ctjam_channel::noise::NoiseFloor;
///
/// // A 2 MHz ZigBee receiver with a 10 dB noise figure:
/// let nf = NoiseFloor::new(2.0e6, 10.0);
/// assert!((nf.power_dbm() - (-101.0)).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseFloor {
    bandwidth_hz: f64,
    noise_figure_db: f64,
}

impl NoiseFloor {
    /// Creates a noise floor for a receiver bandwidth and noise figure.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_hz <= 0`.
    pub fn new(bandwidth_hz: f64, noise_figure_db: f64) -> Self {
        assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
        NoiseFloor {
            bandwidth_hz,
            noise_figure_db,
        }
    }

    /// A typical ZigBee receiver: 2 MHz bandwidth, 10 dB noise figure.
    pub fn zigbee() -> Self {
        NoiseFloor::new(ctjam_phy::zigbee::CHANNEL_BANDWIDTH_HZ, 10.0)
    }

    /// Receiver bandwidth in Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }

    /// Total noise power in dBm.
    pub fn power_dbm(&self) -> f64 {
        THERMAL_NOISE_DBM_PER_HZ + 10.0 * self.bandwidth_hz.log10() + self.noise_figure_db
    }

    /// Total noise power in milliwatts.
    pub fn power_mw(&self) -> f64 {
        crate::units::dbm_to_mw(self.power_dbm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigbee_floor_is_about_minus_101_dbm() {
        let floor = NoiseFloor::zigbee().power_dbm();
        assert!((floor - (-101.0)).abs() < 0.2, "floor = {floor}");
    }

    #[test]
    fn wider_bandwidth_is_noisier() {
        let narrow = NoiseFloor::new(2.0e6, 10.0);
        let wide = NoiseFloor::new(20.0e6, 10.0);
        assert!((wide.power_dbm() - narrow.power_dbm() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn milliwatt_conversion_consistent() {
        let nf = NoiseFloor::zigbee();
        assert!((crate::units::mw_to_dbm(nf.power_mw()) - nf.power_dbm()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        NoiseFloor::new(0.0, 10.0);
    }
}
