//! Packet error rate and throughput derived from bit error rate.

use crate::ber::oqpsk_dsss_ber;

/// Packet error rate for a packet of `payload_bytes` of PSDU plus the
/// 6-byte PHY overhead, assuming independent bit errors.
///
/// `PER = 1 − (1 − BER)^(8·bytes)`.
///
/// ```
/// use ctjam_channel::per::packet_error_rate;
///
/// assert_eq!(packet_error_rate(0.0, 100), 0.0);
/// assert!(packet_error_rate(1e-3, 100) > packet_error_rate(1e-3, 10));
/// ```
pub fn packet_error_rate(ber: f64, payload_bytes: usize) -> f64 {
    let bits = 8.0 * (payload_bytes + crate::per::PHY_OVERHEAD_BYTES) as f64;
    1.0 - (1.0 - ber.clamp(0.0, 1.0)).powf(bits)
}

/// PHY overhead: 4-byte preamble + SFD + PHR.
pub const PHY_OVERHEAD_BYTES: usize = 6;

/// Packet error rate straight from a linear SINR.
pub fn per_from_sinr(sinr_linear: f64, payload_bytes: usize) -> f64 {
    packet_error_rate(oqpsk_dsss_ber(sinr_linear), payload_bytes)
}

/// Effective goodput in bits/second over a 250 kb/s ZigBee link:
/// `(1 − PER) · payload_fraction · bitrate`.
pub fn goodput_bps(per: f64, payload_bytes: usize) -> f64 {
    let payload_fraction = payload_bytes as f64 / (payload_bytes + PHY_OVERHEAD_BYTES) as f64;
    (1.0 - per.clamp(0.0, 1.0)) * payload_fraction * ctjam_phy::zigbee::BIT_RATE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::db_to_linear;

    #[test]
    fn per_bounds() {
        assert_eq!(packet_error_rate(0.0, 50), 0.0);
        assert_eq!(packet_error_rate(1.0, 50), 1.0);
        let p = packet_error_rate(1e-4, 50);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn per_monotone_in_ber_and_length() {
        assert!(packet_error_rate(1e-3, 50) > packet_error_rate(1e-4, 50));
        assert!(packet_error_rate(1e-3, 120) > packet_error_rate(1e-3, 20));
    }

    #[test]
    fn per_from_sinr_waterfall() {
        assert!(per_from_sinr(db_to_linear(5.0), 100) < 1e-4);
        assert!(per_from_sinr(db_to_linear(-5.0), 100) > 0.99);
    }

    #[test]
    fn goodput_zero_when_always_lost() {
        assert_eq!(goodput_bps(1.0, 100), 0.0);
    }

    #[test]
    fn goodput_peaks_at_zero_per() {
        let g = goodput_bps(0.0, 100);
        assert!(g > 0.9 * ctjam_phy::zigbee::BIT_RATE * 100.0 / 106.0);
        assert!(g <= ctjam_phy::zigbee::BIT_RATE);
    }
}
