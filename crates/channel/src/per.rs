//! Packet error rate and throughput derived from bit error rate.

use crate::ber::oqpsk_dsss_ber;

/// Packet error rate for a packet of `payload_bytes` of PSDU plus the
/// 6-byte PHY overhead, assuming independent bit errors.
///
/// `PER = 1 − (1 − BER)^(8·bytes)`.
///
/// A non-finite BER (NaN from a degenerate SINR, or ±∞) means the link
/// is unusable, not "unknown": it maps to PER = 1 rather than letting
/// NaN propagate into goodput and reward sums.
///
/// ```
/// use ctjam_channel::per::packet_error_rate;
///
/// assert_eq!(packet_error_rate(0.0, 100), 0.0);
/// assert!(packet_error_rate(1e-3, 100) > packet_error_rate(1e-3, 10));
/// assert_eq!(packet_error_rate(f64::NAN, 100), 1.0);
/// ```
pub fn packet_error_rate(ber: f64, payload_bytes: usize) -> f64 {
    if !ber.is_finite() {
        return 1.0;
    }
    let bits = 8.0 * (payload_bytes + crate::per::PHY_OVERHEAD_BYTES) as f64;
    1.0 - (1.0 - ber.clamp(0.0, 1.0)).powf(bits)
}

/// PHY overhead: 4-byte preamble + SFD + PHR.
pub const PHY_OVERHEAD_BYTES: usize = 6;

/// Packet error rate straight from a linear SINR.
pub fn per_from_sinr(sinr_linear: f64, payload_bytes: usize) -> f64 {
    packet_error_rate(oqpsk_dsss_ber(sinr_linear), payload_bytes)
}

/// Effective goodput in bits/second over a 250 kb/s ZigBee link:
/// `(1 − PER) · payload_fraction · bitrate`.
///
/// A non-finite PER is treated as total loss (goodput 0), matching the
/// non-finite-BER policy of [`packet_error_rate`].
pub fn goodput_bps(per: f64, payload_bytes: usize) -> f64 {
    if !per.is_finite() {
        return 0.0;
    }
    let payload_fraction = payload_bytes as f64 / (payload_bytes + PHY_OVERHEAD_BYTES) as f64;
    (1.0 - per.clamp(0.0, 1.0)) * payload_fraction * ctjam_phy::zigbee::BIT_RATE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::db_to_linear;

    #[test]
    fn per_bounds() {
        assert_eq!(packet_error_rate(0.0, 50), 0.0);
        assert_eq!(packet_error_rate(1.0, 50), 1.0);
        let p = packet_error_rate(1e-4, 50);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn per_monotone_in_ber_and_length() {
        assert!(packet_error_rate(1e-3, 50) > packet_error_rate(1e-4, 50));
        assert!(packet_error_rate(1e-3, 120) > packet_error_rate(1e-3, 20));
    }

    #[test]
    fn per_from_sinr_waterfall() {
        assert!(per_from_sinr(db_to_linear(5.0), 100) < 1e-4);
        assert!(per_from_sinr(db_to_linear(-5.0), 100) > 0.99);
    }

    #[test]
    fn goodput_zero_when_always_lost() {
        assert_eq!(goodput_bps(1.0, 100), 0.0);
    }

    #[test]
    fn non_finite_ber_means_certain_loss() {
        // Regression: `ber.clamp(0.0, 1.0)` returns NaN for NaN, which
        // used to ride through the powf and poison PER, goodput, and
        // every metric summed downstream.
        assert_eq!(packet_error_rate(f64::NAN, 100), 1.0);
        assert_eq!(packet_error_rate(f64::INFINITY, 100), 1.0);
        assert_eq!(packet_error_rate(f64::NEG_INFINITY, 100), 1.0);
    }

    #[test]
    fn non_finite_sinr_yields_finite_per() {
        // NaN SINR now hits the BER chance floor (0.5), so PER is
        // finite and effectively 1 for any realistic packet length.
        let p = per_from_sinr(f64::NAN, 100);
        assert!(p.is_finite());
        assert!(p > 0.999_999);
        assert_eq!(per_from_sinr(f64::INFINITY, 100), 0.0);
    }

    #[test]
    fn non_finite_per_means_zero_goodput() {
        assert_eq!(goodput_bps(f64::NAN, 100), 0.0);
        assert_eq!(goodput_bps(f64::INFINITY, 100), 0.0);
        assert_eq!(goodput_bps(f64::NEG_INFINITY, 100), 0.0);
    }

    #[test]
    fn goodput_peaks_at_zero_per() {
        let g = goodput_bps(0.0, 100);
        assert!(g > 0.9 * ctjam_phy::zigbee::BIT_RATE * 100.0 / 106.0);
        assert!(g <= ctjam_phy::zigbee::BIT_RATE);
    }
}
