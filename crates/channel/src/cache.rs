//! Memoized SINR→BER→PER→goodput evaluation for hot loops.
//!
//! [`oqpsk_dsss_ber`](crate::ber::oqpsk_dsss_ber) spends 15 `exp()`
//! calls per evaluation and [`packet_error_rate`](crate::per::packet_error_rate)
//! one `powf`, yet sweeps and slot loops revisit a small discrete set of
//! operating points — a fixed payload size and the handful of SINR values
//! produced by the (channel, power, jammer-state) grid. [`PerCache`]
//! memoizes the full chain on the **exact bit pattern** of the linear
//! SINR plus the payload length, so a hit returns the same `f64`s, bit
//! for bit, that the uncached path would compute. There is no lossy
//! quantization: a point either repeats exactly (grid-driven workloads
//! do) and hits, or it misses and is computed the normal way.
//!
//! The cache is bounded: once [`PerCache::capacity`] distinct points
//! have been seen, further misses are computed but not inserted, so a
//! continuous-valued workload (e.g. per-draw fading) degrades to the
//! uncached cost instead of growing without limit.
//!
//! Callers whose operating set is derived from a configuration struct
//! (`EnvParams`, a `JammingScenario`, …) should call
//! [`PerCache::revalidate`] with a fingerprint of that configuration
//! whenever it may have changed; a fingerprint change clears the cache.
//! This is hygiene, not correctness — the exact-bits key already makes a
//! stale hit impossible — but it keeps entries from a previous
//! configuration from occupying the bounded capacity.

use crate::per::{goodput_bps, per_from_sinr};
use std::collections::HashMap;

/// Default bound on distinct cached operating points.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A bounded memo table for the SINR→BER→PER→goodput chain.
///
/// ```
/// use ctjam_channel::cache::PerCache;
/// use ctjam_channel::per::{goodput_bps, per_from_sinr};
///
/// let mut cache = PerCache::new();
/// let (per, goodput) = cache.per_and_goodput(1.7, 100);
/// assert_eq!(per.to_bits(), per_from_sinr(1.7, 100).to_bits());
/// assert_eq!(goodput.to_bits(), goodput_bps(per, 100).to_bits());
/// // The second lookup is a hit.
/// cache.per_and_goodput(1.7, 100);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct PerCache {
    entries: HashMap<(u64, usize), (f64, f64)>,
    capacity: usize,
    fingerprint: u64,
    hits: u64,
    misses: u64,
}

impl Default for PerCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl PerCache {
    /// An empty cache with the default capacity bound.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to `capacity` distinct operating points.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        PerCache {
            entries: HashMap::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
            fingerprint: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// PER and goodput at a linear SINR, memoized on the exact bits.
    ///
    /// Bit-exact with calling [`per_from_sinr`] followed by
    /// [`goodput_bps`] (asserted by the property tests in
    /// `tests/properties.rs`).
    pub fn per_and_goodput(&mut self, sinr_linear: f64, payload_bytes: usize) -> (f64, f64) {
        let key = (sinr_linear.to_bits(), payload_bytes);
        if let Some(&cached) = self.entries.get(&key) {
            self.hits += 1;
            return cached;
        }
        self.misses += 1;
        let per = per_from_sinr(sinr_linear, payload_bytes);
        let value = (per, goodput_bps(per, payload_bytes));
        if self.entries.len() < self.capacity {
            self.entries.insert(key, value);
        }
        value
    }

    /// PER at a linear SINR, memoized on the exact bits.
    pub fn per(&mut self, sinr_linear: f64, payload_bytes: usize) -> f64 {
        self.per_and_goodput(sinr_linear, payload_bytes).0
    }

    /// Clears the cache if `fingerprint` differs from the one last seen
    /// (initially 0), then remembers it. Call with a hash of the
    /// configuration that generates the operating points — e.g. an
    /// FNV-1a of the `EnvParams` debug string — whenever it may change.
    pub fn revalidate(&mut self, fingerprint: u64) {
        if self.fingerprint != fingerprint {
            self.clear();
            self.fingerprint = fingerprint;
        }
    }

    /// Drops every entry and resets the hit/miss counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of lookups served from the table.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that fell through to the full computation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct operating points currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The bound on distinct cached operating points.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_identical_bits() {
        let mut cache = PerCache::new();
        let first = cache.per_and_goodput(0.9, 100);
        let second = cache.per_and_goodput(0.9, 100);
        assert_eq!(first.0.to_bits(), second.0.to_bits());
        assert_eq!(first.1.to_bits(), second.1.to_bits());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn payload_is_part_of_the_key() {
        let mut cache = PerCache::new();
        let short = cache.per(1.1, 20);
        let long = cache.per(1.1, 120);
        assert!(long > short);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn negative_zero_and_positive_zero_are_distinct_keys() {
        // to_bits distinguishes ±0.0; both map to the 0.5 BER floor, so
        // the values agree even though the keys differ.
        let mut cache = PerCache::new();
        let pos = cache.per(0.0, 50);
        let neg = cache.per(-0.0, 50);
        assert_eq!(pos.to_bits(), neg.to_bits());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn capacity_bounds_growth_but_not_correctness() {
        let mut cache = PerCache::with_capacity(4);
        for i in 0..32 {
            let sinr = 0.5 + f64::from(i) * 0.01;
            let direct = per_from_sinr(sinr, 100);
            assert_eq!(cache.per(sinr, 100).to_bits(), direct.to_bits());
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 32);
    }

    #[test]
    fn nan_sinr_is_cacheable_and_finite() {
        // The satellite NaN fix maps NaN SINR to the BER chance floor;
        // the cache must agree with the direct path on that too.
        let mut cache = PerCache::new();
        let direct = per_from_sinr(f64::NAN, 100);
        assert_eq!(cache.per(f64::NAN, 100).to_bits(), direct.to_bits());
        assert_eq!(cache.per(f64::NAN, 100).to_bits(), direct.to_bits());
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn revalidate_clears_on_config_change_only() {
        let mut cache = PerCache::new();
        cache.revalidate(7);
        cache.per(1.0, 100);
        cache.revalidate(7);
        assert_eq!(cache.len(), 1);
        cache.revalidate(8);
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0);
    }
}
