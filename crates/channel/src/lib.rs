//! Wireless channel models for the CTJam suite.
//!
//! Everything between a transmitter's antenna and a receiver's decoder:
//!
//! * [`units`] — dB/dBm/milliwatt conversions used throughout.
//! * [`pathloss`] — the log-distance path-loss model.
//! * [`noise`] — thermal noise floor for a given bandwidth and noise figure.
//! * [`interference`] — how different *kinds* of jamming signal couple into
//!   a ZigBee receiver (the paper's EmuBee > ZigBee > Wi-Fi ordering).
//! * [`sinr`] — signal-to-interference-plus-noise computation.
//! * [`ber`] — the IEEE 802.15.4 O-QPSK/DSSS bit-error-rate curve.
//! * [`per`] — packet error rate and throughput from BER.
//! * [`cache`] — bit-exact memoization of the SINR→BER→PER chain for
//!   hot loops that revisit a discrete set of operating points.
//! * [`link`] — end-to-end link budget: the building block for the
//!   Fig. 2(b) jamming-effect experiment.
//!
//! # Example
//!
//! Evaluate a ZigBee link while an EmuBee jammer closes in:
//!
//! ```
//! use ctjam_channel::link::{JammingScenario, JammerKind};
//!
//! let scenario = JammingScenario::default();
//! let near = scenario.evaluate(JammerKind::EmuBee, 1.0);
//! let far = scenario.evaluate(JammerKind::EmuBee, 15.0);
//! assert!(near.per > far.per, "closer jammer must hurt more");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod cache;
pub mod fading;
pub mod interference;
pub mod link;
pub mod noise;
pub mod pathloss;
pub mod per;
pub mod sinr;
pub mod units;
