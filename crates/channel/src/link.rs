//! End-to-end link budget and the Fig. 2(b) jamming-effect scenario.
//!
//! A [`JammingScenario`] places a legitimate ZigBee link at a fixed
//! distance and a jammer at a variable distance, then evaluates PER and
//! throughput for each jammer kind — reproducing the paper's effect-
//! verification experiment (EmuBee > ZigBee > Wi-Fi).

use crate::cache::PerCache;
use crate::fading::Fading;
use crate::interference::{InterferenceKind, Interferer};
use crate::noise::NoiseFloor;
use crate::pathloss::PathLoss;
use crate::per::{goodput_bps, per_from_sinr};
use crate::sinr::sinr_linear;

/// Jammer signal families selectable in the scenario (Fig. 2(b) legend).
pub type JammerKind = InterferenceKind;

/// Result of evaluating a jammed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkReport {
    /// Linear SINR at the victim receiver.
    pub sinr: f64,
    /// Packet error rate in `[0, 1]`.
    pub per: f64,
    /// Goodput in bits/second.
    pub goodput_bps: f64,
}

/// A star-network link under attack by a single jammer.
///
/// # Example
///
/// ```
/// use ctjam_channel::link::{JammingScenario, JammerKind};
///
/// let s = JammingScenario::default();
/// let emubee = s.evaluate(JammerKind::EmuBee, 8.0);
/// let wifi = s.evaluate(JammerKind::WifiOfdm, 8.0);
/// assert!(emubee.per >= wifi.per, "EmuBee should jam at least as hard");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JammingScenario {
    /// Distance between the legitimate transmitter and the hub, meters.
    pub link_distance_m: f64,
    /// Legitimate transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Payload size used for PER, bytes.
    pub payload_bytes: usize,
    /// Propagation model shared by signal and jammer.
    pub path_loss: PathLoss,
    /// Small-scale fading model applied per draw in
    /// [`JammingScenario::evaluate_faded`] (on top of shadowing).
    pub fading: Fading,
    /// Receiver noise model.
    pub noise: NoiseFloor,
}

impl Default for JammingScenario {
    fn default() -> Self {
        JammingScenario {
            link_distance_m: 3.0,
            tx_power_dbm: 0.0,
            payload_bytes: 100,
            path_loss: PathLoss::indoor(),
            fading: Fading::None,
            noise: NoiseFloor::zigbee(),
        }
    }
}

impl JammingScenario {
    /// Evaluates the link with a jammer of `kind` at `jammer_distance_m`
    /// meters from the victim receiver, transmitting at its radio class's
    /// typical power.
    pub fn evaluate(&self, kind: JammerKind, jammer_distance_m: f64) -> LinkReport {
        self.evaluate_with_power(kind, kind.typical_tx_dbm(), jammer_distance_m)
    }

    /// Evaluates with an explicit jammer transmit power in dBm.
    pub fn evaluate_with_power(
        &self,
        kind: JammerKind,
        jammer_tx_dbm: f64,
        jammer_distance_m: f64,
    ) -> LinkReport {
        let signal_dbm = self
            .path_loss
            .received_dbm(self.tx_power_dbm, self.link_distance_m);
        let jammer = Interferer {
            kind,
            received_dbm: self
                .path_loss
                .received_dbm(jammer_tx_dbm, jammer_distance_m),
        };
        let sinr = sinr_linear(signal_dbm, &[jammer], &self.noise);
        let per = per_from_sinr(sinr, self.payload_bytes);
        LinkReport {
            sinr,
            per,
            goodput_bps: goodput_bps(per, self.payload_bytes),
        }
    }

    /// Evaluates the clean (unjammed) link.
    pub fn evaluate_clean(&self) -> LinkReport {
        let signal_dbm = self
            .path_loss
            .received_dbm(self.tx_power_dbm, self.link_distance_m);
        let sinr = sinr_linear(signal_dbm, &[], &self.noise);
        let per = per_from_sinr(sinr, self.payload_bytes);
        LinkReport {
            sinr,
            per,
            goodput_bps: goodput_bps(per, self.payload_bytes),
        }
    }

    /// Sweeps the jammer distance over `distances_m`, producing one
    /// [`LinkReport`] per point — a Fig. 2(b) data series.
    pub fn sweep(&self, kind: JammerKind, distances_m: &[f64]) -> Vec<LinkReport> {
        distances_m
            .iter()
            .map(|&d| self.evaluate(kind, d))
            .collect()
    }

    /// [`JammingScenario::evaluate`] with the PER chain served from
    /// `cache`. Bit-exact with the uncached path: the cache keys on the
    /// exact SINR bit pattern, so a hit returns the identical `f64`s.
    pub fn evaluate_cached(
        &self,
        kind: JammerKind,
        jammer_distance_m: f64,
        cache: &mut PerCache,
    ) -> LinkReport {
        self.evaluate_with_power_cached(kind, kind.typical_tx_dbm(), jammer_distance_m, cache)
    }

    /// [`JammingScenario::evaluate_with_power`] with the PER chain
    /// served from `cache`.
    pub fn evaluate_with_power_cached(
        &self,
        kind: JammerKind,
        jammer_tx_dbm: f64,
        jammer_distance_m: f64,
        cache: &mut PerCache,
    ) -> LinkReport {
        let signal_dbm = self
            .path_loss
            .received_dbm(self.tx_power_dbm, self.link_distance_m);
        let jammer = Interferer {
            kind,
            received_dbm: self
                .path_loss
                .received_dbm(jammer_tx_dbm, jammer_distance_m),
        };
        let sinr = sinr_linear(signal_dbm, &[jammer], &self.noise);
        let (per, goodput_bps) = cache.per_and_goodput(sinr, self.payload_bytes);
        LinkReport {
            sinr,
            per,
            goodput_bps,
        }
    }

    /// [`JammingScenario::sweep`] through a [`PerCache`], appending one
    /// report per distance into `out` (cleared first) so repeated sweeps
    /// reuse both the memo table and the output buffer.
    pub fn sweep_cached_into(
        &self,
        kind: JammerKind,
        distances_m: &[f64],
        cache: &mut PerCache,
        out: &mut Vec<LinkReport>,
    ) {
        out.clear();
        out.extend(
            distances_m
                .iter()
                .map(|&d| self.evaluate_cached(kind, d, cache)),
        );
    }

    /// Evaluates the jammed link averaged over `draws` log-normal
    /// shadowing realizations (both the signal and the jammer paths fade
    /// independently). This is what an over-the-air measurement like
    /// Fig. 2(b) actually samples: the shadowing spread turns the BER
    /// waterfall into the gradual PER-vs-distance decline the paper
    /// plots.
    ///
    /// # Panics
    ///
    /// Panics if `draws == 0`.
    pub fn evaluate_faded<R: rand::Rng + ?Sized>(
        &self,
        kind: JammerKind,
        jammer_distance_m: f64,
        draws: usize,
        rng: &mut R,
    ) -> LinkReport {
        assert!(draws > 0, "need at least one shadowing draw");
        let mut per_sum = 0.0;
        let mut goodput_sum = 0.0;
        let mut sinr_sum = 0.0;
        for _ in 0..draws {
            let signal_dbm = self.fading.apply_dbm(
                self.tx_power_dbm - self.path_loss.loss_db_shadowed(self.link_distance_m, rng),
                rng,
            );
            let jammer = Interferer {
                kind,
                received_dbm: self.fading.apply_dbm(
                    kind.typical_tx_dbm() - self.path_loss.loss_db_shadowed(jammer_distance_m, rng),
                    rng,
                ),
            };
            let sinr = sinr_linear(signal_dbm, &[jammer], &self.noise);
            let per = per_from_sinr(sinr, self.payload_bytes);
            per_sum += per;
            goodput_sum += goodput_bps(per, self.payload_bytes);
            sinr_sum += sinr;
        }
        let n = draws as f64;
        LinkReport {
            sinr: sinr_sum / n,
            per: per_sum / n,
            goodput_bps: goodput_sum / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_is_error_free() {
        let report = JammingScenario::default().evaluate_clean();
        assert!(report.per < 1e-6, "clean PER = {}", report.per);
    }

    #[test]
    fn per_decreases_with_jamming_distance() {
        let s = JammingScenario::default();
        for kind in [JammerKind::EmuBee, JammerKind::ZigBee, JammerKind::WifiOfdm] {
            let mut prev = f64::INFINITY;
            for d in 1..=15 {
                let r = s.evaluate(kind, d as f64);
                assert!(
                    r.per <= prev + 1e-12,
                    "{kind:?}: PER rose at {d} m ({} > {prev})",
                    r.per
                );
                prev = r.per;
            }
        }
    }

    #[test]
    fn throughput_increases_with_jamming_distance() {
        let s = JammingScenario::default();
        let near = s.evaluate(JammerKind::EmuBee, 2.0);
        let far = s.evaluate(JammerKind::EmuBee, 14.0);
        assert!(far.goodput_bps >= near.goodput_bps);
    }

    #[test]
    fn jamming_effect_order_matches_paper() {
        // Fig. 2(b): EmuBee ≥ ZigBee ≥ WiFi in jamming effect at every
        // distance (strictly somewhere in the sweep).
        let s = JammingScenario::default();
        let mut strict_ez = false;
        let mut strict_zw = false;
        for d in 1..=15 {
            let d = d as f64;
            let e = s.evaluate(JammerKind::EmuBee, d).per;
            let z = s.evaluate(JammerKind::ZigBee, d).per;
            let w = s.evaluate(JammerKind::WifiOfdm, d).per;
            assert!(e >= z - 1e-12, "EmuBee < ZigBee at {d} m");
            assert!(z >= w - 1e-12, "ZigBee < WiFi at {d} m");
            if e > z + 1e-6 {
                strict_ez = true;
            }
            if z > w + 1e-6 {
                strict_zw = true;
            }
        }
        assert!(strict_ez && strict_zw, "orderings never strict in sweep");
    }

    #[test]
    fn emubee_outranges_zigbee_jammer() {
        // The superiority is "more significant when the jamming distance
        // is long (≥ 10 m)": find the farthest distance where each kind
        // still ruins >50% of packets.
        let s = JammingScenario::default();
        let reach = |kind: JammerKind| {
            (1..=40)
                .map(|d| d as f64 * 0.5)
                .filter(|&d| s.evaluate(kind, d).per > 0.5)
                .fold(0.0f64, f64::max)
        };
        assert!(reach(JammerKind::EmuBee) > reach(JammerKind::ZigBee));
    }

    #[test]
    fn explicit_power_overrides_class_default() {
        let s = JammingScenario::default();
        let weak = s.evaluate_with_power(JammerKind::EmuBee, -10.0, 5.0);
        let strong = s.evaluate_with_power(JammerKind::EmuBee, 20.0, 5.0);
        assert!(strong.per >= weak.per);
    }

    #[test]
    fn fading_broadens_the_per_transition() {
        use crate::fading::Fading;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // At a distance where the deterministic link is on the PER cliff
        // edge, Rayleigh fading pulls the mean PER off the extremes.
        let base = JammingScenario::default();
        let faded = JammingScenario {
            fading: Fading::Rayleigh,
            ..base
        };
        let mut rng = StdRng::seed_from_u64(1);
        // Far jammer: deterministic PER ~0; fading creates deep signal
        // fades, so the mean PER rises above it.
        let det = base.evaluate(JammerKind::EmuBee, 20.0).per;
        let fad = faded
            .evaluate_faded(JammerKind::EmuBee, 20.0, 4_000, &mut rng)
            .per;
        assert!(det < 0.05, "deterministic far link should be clean: {det}");
        assert!(
            fad > det + 0.02,
            "fading should lift the tail PER: {fad} vs {det}"
        );
    }

    #[test]
    fn sweep_returns_one_report_per_distance() {
        let s = JammingScenario::default();
        let ds: Vec<f64> = (1..=15).map(|d| d as f64).collect();
        assert_eq!(s.sweep(JammerKind::EmuBee, &ds).len(), 15);
    }

    #[test]
    fn cached_sweep_is_bit_exact_and_hits_on_repeat() {
        let s = JammingScenario::default();
        let ds: Vec<f64> = (1..=15).map(|d| d as f64).collect();
        let plain = s.sweep(JammerKind::EmuBee, &ds);
        let mut cache = crate::cache::PerCache::new();
        let mut cached = Vec::new();
        for pass in 0..3 {
            s.sweep_cached_into(JammerKind::EmuBee, &ds, &mut cache, &mut cached);
            for (a, b) in plain.iter().zip(&cached) {
                assert_eq!(a.sinr.to_bits(), b.sinr.to_bits(), "pass {pass}");
                assert_eq!(a.per.to_bits(), b.per.to_bits(), "pass {pass}");
                assert_eq!(
                    a.goodput_bps.to_bits(),
                    b.goodput_bps.to_bits(),
                    "pass {pass}"
                );
            }
        }
        // First pass misses, later passes hit.
        assert_eq!(cache.misses(), 15);
        assert_eq!(cache.hits(), 30);
    }
}
