//! Small-scale fading: Rayleigh and Rician envelope models.
//!
//! Shadowing ([`crate::pathloss`]) captures slow, obstacle-scale power
//! variation; *fading* captures fast multipath variation within a packet.
//! Indoor 2.4 GHz links typically see Rician fading (a line-of-sight
//! component plus scatter, `K` factor a few dB); fully obstructed links
//! degenerate to Rayleigh (`K = 0`).

use rand::Rng;

/// A small-scale fading model for the received power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fading {
    /// No fading: the deterministic link budget.
    None,
    /// Rayleigh fading (no line-of-sight): power gain is exponential
    /// with unit mean.
    Rayleigh,
    /// Rician fading with linear `K` factor (LOS-to-scatter power
    /// ratio). `K = 0` is Rayleigh; large `K` approaches no fading.
    Rician {
        /// LOS-to-scatter power ratio (linear, ≥ 0).
        k: f64,
    },
}

impl Fading {
    /// A typical indoor line-of-sight profile: `K = 4` (≈ 6 dB).
    pub fn indoor_los() -> Self {
        Fading::Rician { k: 4.0 }
    }

    /// Draws one power gain (linear, unit mean) from the model.
    ///
    /// # Panics
    ///
    /// Panics if a Rician `K` factor is negative.
    pub fn sample_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Fading::None => 1.0,
            Fading::Rayleigh => {
                // |h|² with h ~ CN(0, 1): exponential(1).
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln()
            }
            Fading::Rician { k } => {
                assert!(k >= 0.0, "rician K factor cannot be negative");
                // h = ν + s·(g1 + i·g2)/√2 with ν² = K/(K+1), s² = 1/(K+1):
                // E[|h|²] = 1.
                let nu = (k / (k + 1.0)).sqrt();
                let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
                let g1 = gaussian(rng) * sigma + nu;
                let g2 = gaussian(rng) * sigma;
                g1 * g1 + g2 * g2
            }
        }
    }

    /// Applies one fading draw to a power in dBm.
    pub fn apply_dbm<R: Rng + ?Sized>(&self, power_dbm: f64, rng: &mut R) -> f64 {
        let gain = self.sample_gain(rng);
        power_dbm + 10.0 * gain.max(1e-12).log10()
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_gain(model: Fading, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| model.sample_gain(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn all_models_have_unit_mean_power() {
        assert_eq!(mean_gain(Fading::None, 10, 0), 1.0);
        let rayleigh = mean_gain(Fading::Rayleigh, 60_000, 1);
        assert!((rayleigh - 1.0).abs() < 0.02, "rayleigh mean {rayleigh}");
        let rician = mean_gain(Fading::indoor_los(), 60_000, 2);
        assert!((rician - 1.0).abs() < 0.02, "rician mean {rician}");
    }

    #[test]
    fn rician_variance_shrinks_with_k() {
        let var = |model: Fading, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<f64> = (0..40_000).map(|_| model.sample_gain(&mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64
        };
        let v_rayleigh = var(Fading::Rayleigh, 3);
        let v_k4 = var(Fading::Rician { k: 4.0 }, 4);
        let v_k20 = var(Fading::Rician { k: 20.0 }, 5);
        assert!(v_rayleigh > v_k4, "{v_rayleigh} vs {v_k4}");
        assert!(v_k4 > v_k20, "{v_k4} vs {v_k20}");
        // Rayleigh (exponential) variance is 1.
        assert!((v_rayleigh - 1.0).abs() < 0.05);
    }

    #[test]
    fn rician_k0_matches_rayleigh_distribution() {
        // Compare deep-fade probabilities P(gain < 0.1).
        let deep = |model: Fading, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..40_000)
                .filter(|_| model.sample_gain(&mut rng) < 0.1)
                .count() as f64
                / 40_000.0
        };
        let a = deep(Fading::Rayleigh, 6);
        let b = deep(Fading::Rician { k: 0.0 }, 7);
        // Exponential: P(< 0.1) = 1 − e^−0.1 ≈ 0.0952.
        assert!((a - 0.0952).abs() < 0.01, "rayleigh deep-fade {a}");
        assert!(
            (a - b).abs() < 0.01,
            "K=0 should match rayleigh: {a} vs {b}"
        );
    }

    #[test]
    fn strong_los_rarely_fades_deep() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = Fading::Rician { k: 20.0 };
        let deep = (0..40_000)
            .filter(|_| model.sample_gain(&mut rng) < 0.1)
            .count();
        assert_eq!(deep, 0, "K=20 should essentially never fade 10 dB");
    }

    #[test]
    fn apply_dbm_shifts_by_gain() {
        let mut rng = StdRng::seed_from_u64(9);
        let faded = Fading::Rayleigh.apply_dbm(-60.0, &mut rng);
        assert!(faded.is_finite());
        assert_eq!(Fading::None.apply_dbm(-60.0, &mut rng), -60.0);
    }

    #[test]
    #[should_panic]
    fn negative_k_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        Fading::Rician { k: -1.0 }.sample_gain(&mut rng);
    }
}
