//! Bit-error rate of the IEEE 802.15.4 2.4 GHz O-QPSK/DSSS PHY.
//!
//! The standard closed form (IEEE 802.15.4-2020 Annex, also used by ns-3):
//!
//! ```text
//! BER = (8/15) · (1/16) · Σ_{k=2}^{16} (−1)^k · C(16,k) · exp(20·SINR·(1/k − 1))
//! ```
//!
//! where SINR is the linear signal-to-interference-plus-noise ratio over
//! the 2 MHz channel. The curve falls off a cliff around −1…+2 dB, which
//! is what makes the jam/no-jam outcome in the slot-level simulator an
//! almost binary threshold on received power — the `P(p_T > τ)` abstraction
//! used in the paper's MDP.

/// Binomial coefficients C(16, k) for k = 0..=16.
const CHOOSE_16: [f64; 17] = [
    1.0, 16.0, 120.0, 560.0, 1820.0, 4368.0, 8008.0, 11440.0, 12870.0, 11440.0, 8008.0, 4368.0,
    1820.0, 560.0, 120.0, 16.0, 1.0,
];

/// BER of the 802.15.4 O-QPSK/DSSS PHY at a given linear SINR.
///
/// Clamped to `[0, 0.5]`; a SINR of 0, negative (which can't happen for a
/// linear ratio but guards against misuse), or NaN returns the chance
/// floor of 0.5 instead of letting NaN ride through the exp-sum.
///
/// ```
/// use ctjam_channel::ber::oqpsk_dsss_ber;
/// use ctjam_channel::units::db_to_linear;
///
/// let good = oqpsk_dsss_ber(db_to_linear(5.0));
/// let bad = oqpsk_dsss_ber(db_to_linear(-5.0));
/// assert!(good < 1e-9);
/// assert!(bad > 0.05);
/// ```
#[allow(clippy::needless_range_loop)] // k appears in the closed-form exponent
pub fn oqpsk_dsss_ber(sinr_linear: f64) -> f64 {
    if sinr_linear.is_nan() || sinr_linear <= 0.0 {
        return 0.5;
    }
    let mut sum = 0.0;
    for k in 2..=16usize {
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        sum += sign * CHOOSE_16[k] * (20.0 * sinr_linear * (1.0 / k as f64 - 1.0)).exp();
    }
    let ber = (8.0 / 15.0) * (1.0 / 16.0) * sum;
    ber.clamp(0.0, 0.5)
}

/// Symbol error rate from BER, for the 4-bit symbols of the PHY.
///
/// Uses the standard orthogonal-signaling relation
/// `SER = BER · (2⁴ − 1) / 2³` inverted: `SER = BER · 15/8`, clamped to 1.
pub fn symbol_error_rate(ber: f64) -> f64 {
    (ber * 15.0 / 8.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::db_to_linear;

    #[test]
    fn monotone_decreasing_in_sinr() {
        let mut prev = 0.5;
        for db10 in -100..=100 {
            let sinr = db_to_linear(db10 as f64 / 10.0);
            let ber = oqpsk_dsss_ber(sinr);
            assert!(ber <= prev + 1e-15, "BER rose at {} dB", db10 as f64 / 10.0);
            prev = ber;
        }
    }

    #[test]
    fn asymptotes() {
        assert_eq!(oqpsk_dsss_ber(0.0), 0.5);
        assert!(oqpsk_dsss_ber(db_to_linear(-30.0)) > 0.4);
        assert!(oqpsk_dsss_ber(db_to_linear(10.0)) < 1e-20);
    }

    #[test]
    fn non_finite_sinr_hits_the_chance_floor() {
        assert_eq!(oqpsk_dsss_ber(f64::NAN), 0.5);
        assert_eq!(oqpsk_dsss_ber(f64::NEG_INFINITY), 0.5);
        // +∞ SINR is a perfect link: the exp-sum underflows to 0.
        assert_eq!(oqpsk_dsss_ber(f64::INFINITY), 0.0);
    }

    #[test]
    fn cliff_sits_around_zero_db() {
        // The waterfall region: meaningfully above 1e-4 below −1 dB,
        // essentially error-free above +3 dB.
        assert!(oqpsk_dsss_ber(db_to_linear(-1.0)) > 1e-4);
        assert!(oqpsk_dsss_ber(db_to_linear(3.0)) < 1e-6);
    }

    #[test]
    fn ser_scales_and_clamps() {
        assert_eq!(symbol_error_rate(0.0), 0.0);
        assert!((symbol_error_rate(0.08) - 0.15).abs() < 1e-12);
        assert_eq!(symbol_error_rate(0.9), 1.0);
    }

    #[test]
    fn binomials_sum_to_two_pow_16() {
        let total: f64 = CHOOSE_16.iter().sum();
        assert_eq!(total, 65536.0);
    }
}
