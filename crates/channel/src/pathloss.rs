//! Log-distance path-loss model.
//!
//! `PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀)` with an optional log-normal
//! shadowing term. The reference loss `PL(d₀)` defaults to the free-space
//! value at 1 m for 2.4 GHz (≈ 40.05 dB).

use rand::Rng;

/// Free-space path loss at 1 m for 2.44 GHz in dB:
/// `20·log₁₀(4π·d·f/c)` with `d = 1 m`.
pub const FSPL_1M_2G4_DB: f64 = 40.05;

/// A log-distance path-loss model.
///
/// # Example
///
/// ```
/// use ctjam_channel::pathloss::PathLoss;
///
/// let pl = PathLoss::indoor();
/// // Doubling the distance adds 10·n·log10(2) ≈ 3n dB.
/// let delta = pl.loss_db(2.0) - pl.loss_db(1.0);
/// assert!((delta - 10.0 * pl.exponent() * 2f64.log10()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    reference_db: f64,
    exponent: f64,
    shadowing_sigma_db: f64,
}

impl PathLoss {
    /// Creates a model with an explicit 1 m reference loss and exponent.
    ///
    /// # Panics
    ///
    /// Panics if `exponent <= 0` or `shadowing_sigma_db < 0`.
    pub fn new(reference_db: f64, exponent: f64, shadowing_sigma_db: f64) -> Self {
        assert!(exponent > 0.0, "path loss exponent must be positive");
        assert!(
            shadowing_sigma_db >= 0.0,
            "shadowing sigma cannot be negative"
        );
        PathLoss {
            reference_db,
            exponent,
            shadowing_sigma_db,
        }
    }

    /// Free-space propagation (exponent 2, no shadowing).
    pub fn free_space() -> Self {
        PathLoss::new(FSPL_1M_2G4_DB, 2.0, 0.0)
    }

    /// A typical cluttered-indoor profile (exponent 3, mild shadowing) —
    /// the kind of environment in the paper's lab experiments.
    pub fn indoor() -> Self {
        PathLoss::new(FSPL_1M_2G4_DB, 3.0, 4.0)
    }

    /// The path-loss exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Deterministic (median) path loss in dB at `distance_m` meters.
    ///
    /// Distances below 10 cm are clamped to avoid the near-field
    /// singularity.
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        self.reference_db + 10.0 * self.exponent * d.log10()
    }

    /// Path loss with a log-normal shadowing draw from `rng`.
    pub fn loss_db_shadowed<R: Rng + ?Sized>(&self, distance_m: f64, rng: &mut R) -> f64 {
        self.loss_db(distance_m) + self.shadowing_sigma_db * gaussian(rng)
    }

    /// Received power in dBm for a transmit power in dBm at a distance.
    pub fn received_dbm(&self, tx_dbm: f64, distance_m: f64) -> f64 {
        tx_dbm - self.loss_db(distance_m)
    }
}

/// A standard-normal draw via Box–Muller (keeps `rand` usage to the `Rng`
/// core so no distribution crates are needed).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loss_increases_with_distance() {
        let pl = PathLoss::free_space();
        let mut prev = f64::NEG_INFINITY;
        for d in 1..20 {
            let loss = pl.loss_db(d as f64);
            assert!(loss > prev);
            prev = loss;
        }
    }

    #[test]
    fn free_space_reference_value() {
        let pl = PathLoss::free_space();
        assert!((pl.loss_db(1.0) - FSPL_1M_2G4_DB).abs() < 1e-9);
        // At 10 m free space adds 20 dB.
        assert!((pl.loss_db(10.0) - FSPL_1M_2G4_DB - 20.0).abs() < 1e-9);
    }

    #[test]
    fn received_power_is_tx_minus_loss() {
        let pl = PathLoss::indoor();
        let rx = pl.received_dbm(20.0, 5.0);
        assert!((rx - (20.0 - pl.loss_db(5.0))).abs() < 1e-12);
    }

    #[test]
    fn near_field_clamped() {
        let pl = PathLoss::free_space();
        assert_eq!(pl.loss_db(0.0), pl.loss_db(0.1));
        assert_eq!(pl.loss_db(-5.0), pl.loss_db(0.1));
    }

    #[test]
    fn shadowing_is_zero_mean_ish() {
        let pl = PathLoss::indoor();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| pl.loss_db_shadowed(5.0, &mut rng) - pl.loss_db(5.0))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.5, "shadowing mean {mean} too far from zero");
    }

    #[test]
    #[should_panic]
    fn invalid_exponent_rejected() {
        PathLoss::new(40.0, 0.0, 0.0);
    }
}
