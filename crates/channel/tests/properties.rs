//! Property-based tests for the channel models.

use ctjam_channel::ber::oqpsk_dsss_ber;
use ctjam_channel::cache::PerCache;
use ctjam_channel::interference::{InterferenceKind, Interferer};
use ctjam_channel::link::{JammerKind, JammingScenario};
use ctjam_channel::noise::NoiseFloor;
use ctjam_channel::pathloss::PathLoss;
use ctjam_channel::per::{goodput_bps, packet_error_rate, per_from_sinr};
use ctjam_channel::sinr::sinr_linear;
use ctjam_channel::units::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm};
use proptest::prelude::*;

proptest! {
    #[test]
    fn unit_roundtrips(dbm in -120.0f64..40.0) {
        prop_assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        prop_assert!((linear_to_db(db_to_linear(dbm)) - dbm).abs() < 1e-9);
    }

    #[test]
    fn pathloss_monotone(d1 in 0.5f64..50.0, d2 in 0.5f64..50.0, n in 1.5f64..4.5) {
        let pl = PathLoss::new(40.0, n, 0.0);
        if d1 < d2 {
            prop_assert!(pl.loss_db(d1) <= pl.loss_db(d2));
        } else {
            prop_assert!(pl.loss_db(d2) <= pl.loss_db(d1));
        }
    }

    #[test]
    fn ber_in_valid_range(sinr_db_val in -40.0f64..40.0) {
        let ber = oqpsk_dsss_ber(db_to_linear(sinr_db_val));
        prop_assert!((0.0..=0.5).contains(&ber));
    }

    #[test]
    fn per_in_unit_interval(ber in 0.0f64..0.5, len in 1usize..128) {
        let per = packet_error_rate(ber, len);
        prop_assert!((0.0..=1.0).contains(&per));
        prop_assert!(goodput_bps(per, len) >= 0.0);
    }

    #[test]
    fn sinr_decreases_with_more_interference(
        signal in -90.0f64..-40.0,
        i1 in -90.0f64..-40.0,
        i2 in -90.0f64..-40.0,
    ) {
        let noise = NoiseFloor::zigbee();
        let a = [Interferer { kind: InterferenceKind::EmuBee, received_dbm: i1 }];
        let b = [
            Interferer { kind: InterferenceKind::EmuBee, received_dbm: i1 },
            Interferer { kind: InterferenceKind::EmuBee, received_dbm: i2 },
        ];
        prop_assert!(sinr_linear(signal, &b, &noise) < sinr_linear(signal, &a, &noise));
    }

    #[test]
    fn jamming_order_holds_everywhere(d in 1.0f64..20.0, link_d in 1.0f64..6.0) {
        let scenario = JammingScenario {
            link_distance_m: link_d,
            ..JammingScenario::default()
        };
        let e = scenario.evaluate(JammerKind::EmuBee, d).per;
        let z = scenario.evaluate(JammerKind::ZigBee, d).per;
        let w = scenario.evaluate(JammerKind::WifiOfdm, d).per;
        prop_assert!(e >= z - 1e-9);
        prop_assert!(z >= w - 1e-9);
    }

    #[test]
    fn per_cache_is_bit_exact_across_random_grids(
        sinr_db_points in prop::collection::vec(-40.0f64..40.0, 1..24),
        payloads in prop::collection::vec(1usize..128, 1..6),
        repeats in 1usize..4,
    ) {
        // Random (SINR, payload) grid, visited `repeats` times so the
        // cache serves both misses and hits; every returned PER and
        // goodput must match the uncached chain bit for bit.
        let mut cache = PerCache::new();
        for _ in 0..repeats {
            for &db in &sinr_db_points {
                let sinr = db_to_linear(db);
                for &len in &payloads {
                    let (per, goodput) = cache.per_and_goodput(sinr, len);
                    let direct_per = per_from_sinr(sinr, len);
                    prop_assert_eq!(per.to_bits(), direct_per.to_bits());
                    prop_assert_eq!(goodput.to_bits(), goodput_bps(direct_per, len).to_bits());
                }
            }
        }
        let lookups = (repeats * sinr_db_points.len() * payloads.len()) as u64;
        prop_assert_eq!(cache.hits() + cache.misses(), lookups);
        // Distinct grid points may collide only if two dB draws map to
        // identical bits; misses never exceed one per (point, payload).
        prop_assert!(cache.misses() <= (sinr_db_points.len() * payloads.len()) as u64);
    }

    #[test]
    fn stronger_jammer_never_helps(
        p1 in -10.0f64..10.0,
        p2 in 10.0f64..30.0,
        d in 1.0f64..15.0,
    ) {
        let s = JammingScenario::default();
        let weak = s.evaluate_with_power(JammerKind::EmuBee, p1, d);
        let strong = s.evaluate_with_power(JammerKind::EmuBee, p2, d);
        prop_assert!(strong.per >= weak.per - 1e-12);
        prop_assert!(strong.goodput_bps <= weak.goodput_bps + 1e-9);
    }
}
