//! Structured telemetry events.
//!
//! These are plain-data mirrors of the core types: `ctjam-core` converts its
//! `SlotResult` / DQN probe into these records so the telemetry crate stays at
//! the bottom of the dependency graph.

/// What happened to the defender's transmission in one slot, from the
/// defender's point of view (paper §III.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// Transmitted on a clear channel — packet delivered.
    Delivered,
    /// Jammer was on-channel but power control lifted SINR above threshold —
    /// packet delivered anyway.
    SurvivedJam,
    /// Jammer was on-channel and the packet was lost.
    Jammed,
    /// The defender spent the slot hopping (no data transmitted).
    Hopped,
}

impl SlotOutcome {
    /// Short stable label used in CSV/JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            SlotOutcome::Delivered => "delivered",
            SlotOutcome::SurvivedJam => "survived_jam",
            SlotOutcome::Jammed => "jammed",
            SlotOutcome::Hopped => "hopped",
        }
    }
}

/// One slot of the Tx/Jx competition (paper §III.A), as seen by telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotEvent {
    /// Slot index within the run, starting at 0.
    pub slot: u64,
    /// Defender channel occupied this slot.
    pub channel: u16,
    /// Defender transmit power level (index into the power ladder).
    pub power_level: u16,
    /// Whether the defender hopped into this slot.
    pub hopped: bool,
    /// Whether the defender raised power this slot.
    pub power_control: bool,
    /// Jam outcome of the slot.
    pub outcome: SlotOutcome,
    /// Whether the sweeping jammer was on the defender's channel.
    pub jammer_on_channel: bool,
    /// Eq. 5 reward collected this slot.
    pub reward: f64,
}

/// One DQN training step (loss from `DqnAgent::observe`, paper §III.C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainEvent {
    /// Environment step at which this training step happened.
    pub step: u64,
    /// TD loss of the minibatch, if a gradient step ran.
    pub loss: Option<f64>,
    /// Exploration rate after this step.
    pub epsilon: f64,
    /// Transitions currently held in the replay buffer.
    pub replay_len: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_labels_are_distinct() {
        let all = [
            SlotOutcome::Delivered,
            SlotOutcome::SurvivedJam,
            SlotOutcome::Jammed,
            SlotOutcome::Hopped,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
