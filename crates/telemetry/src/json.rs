//! A tiny JSON value tree and serializer.
//!
//! The container has no network access, so instead of pulling in `serde` the
//! manifest and exporters build [`JsonValue`] trees and serialize them here.
//! Output is deterministic: object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number. Non-finite floats serialize as `null` (like
    /// `serde_json`'s lossy behaviour for f64).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Obj(Vec::new())
    }

    /// Insert/overwrite a key on an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Obj(pairs) => {
                if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                    pair.1 = value.into();
                } else {
                    pairs.push((key.to_string(), value.into()));
                }
            }
            _ => panic!("JsonValue::set on a non-object"),
        }
        self
    }

    /// Look up a key on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            JsonValue::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Num(n as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_trips_structure() {
        let mut obj = JsonValue::object();
        obj.set("name", "fig03")
            .set("seed", 2022u64)
            .set("ok", true);
        obj.set("items", JsonValue::Arr(vec![1.0.into(), 2.5.into()]));
        assert_eq!(
            obj.to_string_compact(),
            r#"{"name":"fig03","seed":2022,"ok":true,"items":[1,2.5]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(JsonValue::Num(3.0).to_string_compact(), "3");
        assert_eq!(JsonValue::Num(-0.125).to_string_compact(), "-0.125");
    }

    #[test]
    fn set_overwrites_existing_key() {
        let mut obj = JsonValue::object();
        obj.set("k", 1u64);
        obj.set("k", 2u64);
        assert_eq!(obj.get("k"), Some(&JsonValue::Num(2.0)));
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut obj = JsonValue::object();
        obj.set("a", 1u64);
        assert_eq!(obj.to_string_pretty(), "{\n  \"a\": 1\n}\n");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::object().to_string_pretty(), "{}\n");
        assert_eq!(JsonValue::Arr(vec![]).to_string_compact(), "[]");
    }
}
