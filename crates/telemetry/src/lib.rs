//! Slot-level telemetry and reproducible-run support for the CTJam suite.
//!
//! The competition loop in `ctjam-core` runs millions of slots per sweep, so
//! observability has to be opt-in and free when unused. This crate provides:
//!
//! * [`EventSink`] — the instrumentation trait. Every hook has an empty
//!   default body, and [`NullSink`] implements none of them, so a
//!   monomorphised run over `NullSink` compiles to exactly the uninstrumented
//!   loop (verified by the `env` benchmark in `ctjam-bench`).
//! * [`SlotEvent`] / [`TrainEvent`] — structured per-slot and per-train-step
//!   records: channel, power, defender action, jam outcome, reward, DQN loss,
//!   exploration rate, replay occupancy.
//! * [`MemorySink`] — an in-memory recorder with [`Counter`]s and
//!   [`Histogram`]s plus JSON-lines and CSV exporters.
//! * [`ShardSink`] — an O(1)-memory aggregate-only sink whose `merge` is
//!   associative and commutative (exact summation via [`ExactSum`]), so
//!   sharded campaign engines can fold per-worker telemetry in any order
//!   and land on the sequential result bit-for-bit.
//! * [`RunManifest`] — a JSON provenance record (seed, parameter `Debug`
//!   string, FNV-1a config hash, `git describe`, wall time) written next to
//!   every figure binary's results so a run can be traced back to the exact
//!   tree and configuration that produced it.
//! * [`ReplayTrace`] — per-episode RNG-seed capture so any episode of a sweep
//!   can be re-run bit-exactly in isolation.
//!
//! The crate is dependency-free (JSON/CSV are hand-rolled) and sits below
//! `ctjam-core` in the crate graph: core converts its own types into the
//! plain-data events defined here.

pub mod event;
pub mod export;
pub mod health;
pub mod json;
pub mod manifest;
pub mod replay;
pub mod sink;
pub mod stats;

pub use event::{SlotEvent, SlotOutcome, TrainEvent};
pub use health::RunHealth;
pub use json::JsonValue;
pub use manifest::RunManifest;
pub use replay::{EpisodeRecord, ReplayTrace};
pub use sink::{EventSink, MemorySink, NullSink, ShardSink};
pub use stats::{Counter, ExactSum, Histogram};
