//! Run-health accounting: what went wrong, and what the run did about it.
//!
//! When fault injection (or a genuinely misbehaving environment) bites a
//! run, the runner degrades gracefully instead of aborting — a failed
//! sink is demoted to a null sink, a missed decision deadline replays
//! the previous slot's decision, a poisoned gradient skips its optimizer
//! step. [`RunHealth`] counts those events so a "successful" run that
//! limped through can be told apart from one that ran clean.

/// Counters of degradation events absorbed during one episode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Sink writes that failed; after the first the sink is demoted to
    /// a null sink for the rest of the run.
    pub sink_write_failures: u64,
    /// Whether the sink finished the run demoted.
    pub sink_demoted: bool,
    /// Slots whose decision missed its deadline and fell back to the
    /// previous slot's decision.
    pub deadline_overruns: u64,
    /// Optimizer steps skipped because the gradient went non-finite.
    pub skipped_train_steps: u64,
    /// Replay-buffer transitions detected (or injected) as corrupted.
    pub corrupted_replay_entries: u64,
    /// Total faults fired by the run's fault plan, all sites combined.
    pub faults_fired: u64,
}

impl RunHealth {
    /// A clean bill of health: all counters zero.
    pub fn clean() -> Self {
        RunHealth::default()
    }

    /// Whether nothing degraded during the run.
    pub fn is_clean(&self) -> bool {
        *self == RunHealth::default()
    }

    /// Folds another health record into this one (e.g. training phase +
    /// evaluation phase of the same run).
    pub fn absorb(&mut self, other: &RunHealth) {
        self.sink_write_failures += other.sink_write_failures;
        self.sink_demoted |= other.sink_demoted;
        self.deadline_overruns += other.deadline_overruns;
        self.skipped_train_steps += other.skipped_train_steps;
        self.corrupted_replay_entries += other.corrupted_replay_entries;
        self.faults_fired += other.faults_fired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        assert!(RunHealth::clean().is_clean());
        assert!(RunHealth::default().is_clean());
    }

    #[test]
    fn any_counter_dirties_the_record() {
        let mut h = RunHealth::clean();
        h.deadline_overruns = 1;
        assert!(!h.is_clean());
    }

    #[test]
    fn absorb_sums_counters_and_ors_flags() {
        let mut a = RunHealth {
            sink_write_failures: 1,
            sink_demoted: true,
            deadline_overruns: 2,
            skipped_train_steps: 0,
            corrupted_replay_entries: 3,
            faults_fired: 6,
        };
        let b = RunHealth {
            sink_write_failures: 0,
            sink_demoted: false,
            deadline_overruns: 5,
            skipped_train_steps: 7,
            corrupted_replay_entries: 0,
            faults_fired: 12,
        };
        a.absorb(&b);
        assert_eq!(a.sink_write_failures, 1);
        assert!(a.sink_demoted);
        assert_eq!(a.deadline_overruns, 7);
        assert_eq!(a.skipped_train_steps, 7);
        assert_eq!(a.corrupted_replay_entries, 3);
        assert_eq!(a.faults_fired, 18);
    }
}
