//! Run manifests: JSON provenance records written next to figure results.
//!
//! A manifest pins everything needed to reproduce a run: the base RNG seed,
//! the `Debug` rendering of the configuration, a 64-bit FNV-1a hash of that
//! configuration (cheap to diff across runs), the `git describe` of the tree,
//! and wall time. Figure binaries create one at startup and
//! [`RunManifest::write`] it when done.

use crate::json::JsonValue;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// 64-bit FNV-1a — stable, dependency-free configuration fingerprint.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `git describe --always --dirty` of `dir` (or the current directory), if
/// git is available and `dir` is a work tree.
pub fn git_describe(dir: Option<&Path>) -> Option<String> {
    let mut cmd = Command::new("git");
    cmd.args(["describe", "--always", "--dirty"]);
    if let Some(dir) = dir {
        cmd.current_dir(dir);
    }
    let out = cmd.output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!s.is_empty()).then_some(s)
}

/// Provenance record for one figure/experiment run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Run name, also the manifest's file stem (e.g. `fig03_convergence`).
    pub name: String,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// `Debug` rendering of the run's configuration (EnvParams etc.).
    pub config: String,
    /// FNV-1a hash of `config`.
    pub config_hash: u64,
    /// `git describe --always --dirty`, if resolvable.
    pub git: Option<String>,
    /// Unix timestamp (seconds) when the manifest was created.
    pub created_unix_s: u64,
    /// Extra key/value pairs (output files, knob overrides, summary numbers).
    pub extra: Vec<(String, JsonValue)>,
    started: Instant,
}

impl RunManifest {
    /// Start a manifest for the named run. Records the creation time so
    /// [`RunManifest::write`] can report wall time.
    pub fn new(name: &str, seed: u64, config: &str) -> Self {
        RunManifest {
            name: name.to_string(),
            seed,
            config: config.to_string(),
            config_hash: fnv1a_64(config.as_bytes()),
            git: git_describe(None),
            created_unix_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            extra: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Attach an extra key (output paths, knobs, summary numbers).
    pub fn push_extra(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.extra.push((key.to_string(), value.into()));
        self
    }

    /// The manifest as a JSON object (wall time measured at call time).
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("name", self.name.as_str())
            .set("seed", self.seed)
            .set("config", self.config.as_str())
            .set("config_hash", format!("{:016x}", self.config_hash))
            .set(
                "git",
                self.git.as_deref().map_or(JsonValue::Null, JsonValue::from),
            )
            .set("created_unix_s", self.created_unix_s)
            .set("wall_s", self.started.elapsed().as_secs_f64());
        for (k, v) in &self.extra {
            obj.set(k, v.clone());
        }
        obj
    }

    /// Write `<dir>/<name>.manifest.json` (creating `dir`), returning the
    /// path written.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.manifest.json", self.name));
        fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_json_has_required_fields() {
        let mut m = RunManifest::new("unit_test", 2022, "EnvParams { k: 16 }");
        m.push_extra("csv", "results/unit_test.csv");
        let json = m.to_json();
        for key in [
            "name",
            "seed",
            "config",
            "config_hash",
            "git",
            "created_unix_s",
            "wall_s",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(json.get("seed"), Some(&JsonValue::Num(2022.0)));
        assert_eq!(
            json.get("config_hash"),
            Some(&JsonValue::Str(format!(
                "{:016x}",
                fnv1a_64(b"EnvParams { k: 16 }")
            )))
        );
        assert_eq!(
            json.get("csv"),
            Some(&JsonValue::Str("results/unit_test.csv".into()))
        );
    }

    #[test]
    fn same_config_same_hash_different_config_different_hash() {
        let a = RunManifest::new("a", 1, "cfg");
        let b = RunManifest::new("b", 2, "cfg");
        let c = RunManifest::new("c", 1, "cfg2");
        assert_eq!(a.config_hash, b.config_hash);
        assert_ne!(a.config_hash, c.config_hash);
    }

    #[test]
    fn write_creates_manifest_file() {
        let dir = std::env::temp_dir().join("ctjam-telemetry-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = RunManifest::new("m", 7, "cfg").write(&dir).unwrap();
        assert!(path.ends_with("m.manifest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"seed\": 7"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
