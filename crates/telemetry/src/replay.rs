//! Deterministic-replay capture.
//!
//! Every episode in the CTJam suite is driven by a single `StdRng` seeded
//! explicitly, so an episode is fully reproducible from `(seed, slot budget,
//! config)` alone. A [`ReplayTrace`] records that triple for every episode of
//! a run (e.g. every point of a sweep); a failing episode can then be re-run
//! bit-exactly in isolation with `ctjam_core::runner::replay` — see
//! `tests/determinism.rs` and `tests/README.md` at the workspace root.

use crate::json::JsonValue;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One captured episode: everything needed to re-run it bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Episode index within the run (e.g. sweep point index).
    pub index: usize,
    /// Human-readable label (e.g. `"lj=4"` for a sweep point).
    pub label: String,
    /// The exact RNG seed the episode's `StdRng` was built from.
    pub seed: u64,
    /// Training slots consumed before evaluation (0 for pure evaluation).
    pub train_slots: usize,
    /// Evaluation slots measured.
    pub eval_slots: usize,
}

/// A replay trace: the capture configuration plus one record per episode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayTrace {
    /// Name of the run being captured.
    pub run: String,
    /// Base seed the per-episode seeds were derived from.
    pub base_seed: u64,
    /// `Debug` rendering of the shared configuration.
    pub config: String,
    /// Captured episodes, in completion order.
    pub episodes: Vec<EpisodeRecord>,
}

impl ReplayTrace {
    /// An empty trace for the named run.
    pub fn new(run: &str, base_seed: u64, config: &str) -> Self {
        ReplayTrace {
            run: run.to_string(),
            base_seed,
            config: config.to_string(),
            episodes: Vec::new(),
        }
    }

    /// Record one episode.
    pub fn push(&mut self, record: EpisodeRecord) {
        self.episodes.push(record);
    }

    /// Find an episode by index.
    pub fn episode(&self, index: usize) -> Option<&EpisodeRecord> {
        self.episodes.iter().find(|e| e.index == index)
    }

    /// The trace as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("run", self.run.as_str())
            .set("base_seed", self.base_seed)
            .set("config", self.config.as_str());
        let episodes = self
            .episodes
            .iter()
            .map(|e| {
                let mut rec = JsonValue::object();
                rec.set("index", e.index)
                    .set("label", e.label.as_str())
                    .set("seed", e.seed)
                    .set("train_slots", e.train_slots)
                    .set("eval_slots", e.eval_slots);
                rec
            })
            .collect();
        obj.set("episodes", JsonValue::Arr(episodes));
        obj
    }

    /// Write `<dir>/<run>.replay.json` (creating `dir`), returning the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.replay.json", self.run));
        fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, seed: u64) -> EpisodeRecord {
        EpisodeRecord {
            index,
            label: format!("point-{index}"),
            seed,
            train_slots: 1000,
            eval_slots: 2000,
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut trace = ReplayTrace::new("sweep", 42, "cfg");
        trace.push(record(0, 42));
        trace.push(record(3, 99));
        assert_eq!(trace.episode(3).unwrap().seed, 99);
        assert!(trace.episode(1).is_none());
    }

    #[test]
    fn json_contains_all_episodes() {
        let mut trace = ReplayTrace::new("sweep", 42, "cfg");
        trace.push(record(0, 42));
        trace.push(record(1, 43));
        let json = trace.to_json();
        match json.get("episodes") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].get("seed"), Some(&JsonValue::Num(43.0)));
            }
            other => panic!("episodes not an array: {other:?}"),
        }
    }

    #[test]
    fn write_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("ctjam-telemetry-replay-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut trace = ReplayTrace::new("unit", 7, "cfg");
        trace.push(record(0, 7));
        let path = trace.write(&dir).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("\"seed\": 7"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
