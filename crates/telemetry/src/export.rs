//! JSON-lines and CSV exporters for [`MemorySink`] recordings.

use crate::json::JsonValue;
use crate::sink::MemorySink;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Escapes one CSV field per RFC 4180: a field containing a comma,
/// double quote, or line break is wrapped in double quotes with embedded
/// quotes doubled; anything else passes through unchanged (so plain
/// numeric and label fields stay byte-identical to the unescaped form).
pub fn csv_field(field: &str) -> std::borrow::Cow<'_, str> {
    if field.contains(['"', ',', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        std::borrow::Cow::Owned(out)
    } else {
        std::borrow::Cow::Borrowed(field)
    }
}

/// Render recorded slot events as CSV (header + one row per slot).
pub fn slots_csv(sink: &MemorySink) -> String {
    let mut out = String::from(
        "slot,channel,power_level,hopped,power_control,outcome,jammer_on_channel,reward\n",
    );
    for e in &sink.slots {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            e.slot,
            e.channel,
            e.power_level,
            e.hopped as u8,
            e.power_control as u8,
            csv_field(e.outcome.label()),
            e.jammer_on_channel as u8,
            e.reward,
        );
    }
    out
}

/// Render recorded training events as CSV.
pub fn trains_csv(sink: &MemorySink) -> String {
    let mut out = String::from("step,loss,epsilon,replay_len,replay_capacity\n");
    for e in &sink.trains {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            e.step,
            e.loss.map_or(String::new(), |l| l.to_string()),
            e.epsilon,
            e.replay_len,
            e.replay_capacity,
        );
    }
    out
}

/// Render recorded slot events as JSON lines (one compact object per slot).
pub fn slots_jsonl(sink: &MemorySink) -> String {
    let mut out = String::new();
    for e in &sink.slots {
        let mut obj = JsonValue::object();
        obj.set("slot", e.slot)
            .set("channel", e.channel as u64)
            .set("power_level", e.power_level as u64)
            .set("hopped", e.hopped)
            .set("power_control", e.power_control)
            .set("outcome", e.outcome.label())
            .set("jammer_on_channel", e.jammer_on_channel)
            .set("reward", e.reward);
        out.push_str(&obj.to_string_compact());
        out.push('\n');
    }
    out
}

/// Counters + histogram moments as a single JSON object — the run's summary.
pub fn summary_json(sink: &MemorySink) -> JsonValue {
    let mut counters = JsonValue::object();
    for c in &sink.counters {
        counters.set(c.name, c.value);
    }
    let mut scalars = JsonValue::object();
    for (name, value) in &sink.scalars {
        scalars.set(name, *value);
    }
    let mut obj = JsonValue::object();
    obj.set("slots", sink.slots.len())
        .set("train_steps", sink.trains.len())
        .set("counters", counters)
        .set("scalars", scalars)
        .set("reward", histogram_json(&sink.reward_hist))
        .set("loss", histogram_json(&sink.loss_hist));
    obj
}

/// One histogram as a JSON object: exact moments (`count`/`mean`/`min`/
/// `max`), the binned shape (`bins`/`underflow`/`overflow`), and
/// reconstructed `p50`/`p95`/`p99` percentile summaries (see
/// [`crate::stats::Histogram::percentile`] for accuracy bounds). Shared
/// by the run summary above and by downstream latency exports such as
/// the `ctjam-serve` metrics snapshot.
pub fn histogram_json(h: &crate::stats::Histogram) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.set("count", h.count())
        .set("mean", h.mean())
        .set("min", h.min())
        .set("max", h.max())
        .set(
            "bins",
            JsonValue::Arr(h.edges().map(|(_, c)| JsonValue::Num(c as f64)).collect()),
        )
        .set("underflow", h.underflow())
        .set("overflow", h.overflow())
        .set("p50", h.p50())
        .set("p95", h.p95())
        .set("p99", h.p99());
    obj
}

/// Write the full recording (`<stem>.slots.csv`, `<stem>.train.csv`,
/// `<stem>.summary.json`) into `dir`, creating it if needed.
pub fn write_all(sink: &MemorySink, dir: &Path, stem: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{stem}.slots.csv")), slots_csv(sink))?;
    fs::write(dir.join(format!("{stem}.train.csv")), trains_csv(sink))?;
    fs::write(
        dir.join(format!("{stem}.summary.json")),
        summary_json(sink).to_string_pretty(),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SlotEvent, SlotOutcome, TrainEvent};
    use crate::sink::EventSink;

    fn sample_sink() -> MemorySink {
        let mut sink = MemorySink::new();
        sink.record_slot(&SlotEvent {
            slot: 0,
            channel: 11,
            power_level: 1,
            hopped: true,
            power_control: false,
            outcome: SlotOutcome::Hopped,
            jammer_on_channel: false,
            reward: -1.5,
        });
        sink.record_train(&TrainEvent {
            step: 0,
            loss: Some(0.25),
            epsilon: 0.9,
            replay_len: 10,
            replay_capacity: 64,
        });
        sink.record_scalar("goodput_kbps", 42.0);
        sink
    }

    #[test]
    fn csv_has_header_and_rows() {
        let sink = sample_sink();
        let csv = slots_csv(&sink);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("slot,channel"));
        assert_eq!(lines.next().unwrap(), "0,11,1,1,0,hopped,0,-1.5");
        assert!(lines.next().is_none());
        assert!(trains_csv(&sink).contains("0,0.25,0.9,10,64"));
    }

    /// Minimal RFC-4180 reader for the round-trip test: splits one
    /// record's fields, honoring quoted fields and doubled quotes.
    fn parse_csv_record(record: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = record.chars().peekable();
        let mut in_quotes = false;
        while let Some(ch) = chars.next() {
            match ch {
                '"' if in_quotes => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '"' if field.is_empty() => in_quotes = true,
                ',' if !in_quotes => fields.push(std::mem::take(&mut field)),
                _ => field.push(ch),
            }
        }
        fields.push(field);
        fields
    }

    #[test]
    fn hostile_strings_round_trip_through_csv_escaping() {
        let hostile = [
            "plain",
            "with,comma",
            "with \"quotes\"",
            "line\nbreak",
            "cr\rlf\n mix",
            "\",\"everything\"\n,",
            "",
        ];
        for original in hostile {
            let escaped = csv_field(original);
            // One escaped field + a plain neighbor must parse back to
            // exactly the original two fields.
            let record = format!("{escaped},tail");
            let fields = parse_csv_record(&record);
            assert_eq!(fields, vec![original.to_string(), "tail".to_string()]);
        }
    }

    #[test]
    fn plain_fields_are_not_quoted() {
        // The exporters rely on benign labels staying byte-identical so
        // existing downstream readers (and the golden row test above)
        // keep working.
        assert_eq!(csv_field("hopped"), "hopped");
        assert_eq!(csv_field("-1.5"), "-1.5");
    }

    #[test]
    fn jsonl_one_line_per_slot() {
        let sink = sample_sink();
        let jsonl = slots_jsonl(&sink);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains(r#""outcome":"hopped""#));
    }

    #[test]
    fn summary_counts_and_scalars() {
        let sink = sample_sink();
        let summary = summary_json(&sink);
        assert_eq!(summary.get("slots"), Some(&JsonValue::Num(1.0)));
        let counters = summary.get("counters").unwrap();
        assert_eq!(counters.get("hopped"), Some(&JsonValue::Num(1.0)));
        let scalars = summary.get("scalars").unwrap();
        assert_eq!(scalars.get("goodput_kbps"), Some(&JsonValue::Num(42.0)));
    }

    #[test]
    fn histogram_json_carries_percentile_summaries() {
        let mut h = crate::stats::Histogram::new("h", 0.0, 100.0, 100);
        for v in 1..=100 {
            h.record(v as f64);
        }
        let obj = histogram_json(&h);
        for (key, exact) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
            match obj.get(key) {
                Some(JsonValue::Num(v)) => {
                    assert!((v - exact).abs() <= 1.0, "{key}: got {v}, want ~{exact}")
                }
                other => panic!("{key} missing or non-numeric: {other:?}"),
            }
        }
        // Empty histogram percentiles are NaN → serialized as null, so
        // the export stays strictly valid JSON.
        let empty = histogram_json(&crate::stats::Histogram::new("e", 0.0, 1.0, 2));
        assert!(empty.to_string_compact().contains("\"p50\":null"));
    }

    #[test]
    fn write_all_creates_three_files() {
        let dir = std::env::temp_dir().join("ctjam-telemetry-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        write_all(&sample_sink(), &dir, "unit").unwrap();
        for suffix in ["slots.csv", "train.csv", "summary.json"] {
            assert!(
                dir.join(format!("unit.{suffix}")).exists(),
                "{suffix} missing"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
