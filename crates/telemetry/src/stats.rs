//! Minimal counters and fixed-bin histograms for slot-loop telemetry.

/// A named monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Stable name used in exports.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }
}

/// A fixed-width linear histogram over `[lo, hi)` with under/overflow bins,
/// tracking exact count/sum/min/max alongside the binned shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Stable name used in exports.
    pub name: &'static str,
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new("histogram", 0.0, 1.0, 10)
    }
}

impl Histogram {
    /// A histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(name: &'static str, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            name,
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. NaN values are counted but not binned.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value.is_nan() {
            return;
        }
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((value - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (NaN if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Bin counts (underflow and overflow excluded).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_lower_edge, count)` pairs, then `("underflow", n)`-style totals
    /// are available via [`Histogram::underflow`] / [`Histogram::overflow`].
    pub fn edges(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) reconstructed from the
    /// binned shape: the value is linearly interpolated inside the bin
    /// holding the `⌈q·n⌉`-th binned observation. Ranks falling into the
    /// underflow region resolve to the exact recorded minimum, ranks in
    /// the overflow region to the exact maximum, and every answer is
    /// clamped to `[min, max]` so a quantile can never lie outside the
    /// observed data. NaN observations are excluded (they are counted
    /// but not binned). Returns NaN when nothing was binned.
    ///
    /// The error is bounded by one bin width — size the histogram range
    /// for the precision the consumer needs (regression-tested against
    /// known distributions below).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let binned: u64 = self.underflow + self.overflow + self.bins.iter().sum::<u64>();
        if binned == 0 {
            return f64::NAN;
        }
        // 1-based rank of the target observation in ascending order.
        let rank = ((q * binned as f64).ceil() as u64).clamp(1, binned);
        if rank <= self.underflow {
            return self.min;
        }
        let mut cumulative = self.underflow;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            if rank <= cumulative + c {
                let frac = (rank - cumulative) as f64 / c as f64;
                let v = self.lo + width * (i as f64 + frac);
                return v.clamp(self.min, self.max);
            }
            cumulative += c;
        }
        self.max
    }

    /// Median ([`Histogram::percentile`] at 0.5).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(4);
        assert_eq!(c.value, 5);
    }

    #[test]
    fn histogram_bins_and_moments() {
        let mut h = Histogram::new("h", 0.0, 10.0, 10);
        for v in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 10.0);
        assert!((h.mean() - (0.5 + 1.5 + 1.7 + 9.9 - 1.0 + 10.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn top_edge_value_is_overflow_not_panic() {
        let mut h = Histogram::new("h", 0.0, 1.0, 4);
        h.record(1.0);
        h.record(0.999_999_9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn nan_counts_without_binning() {
        let mut h = Histogram::new("h", 0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(
            h.underflow() + h.overflow() + h.bins().iter().sum::<u64>(),
            0
        );
    }

    #[test]
    fn empty_histogram_mean_is_nan() {
        assert!(Histogram::new("h", 0.0, 1.0, 2).mean().is_nan());
    }

    #[test]
    fn percentiles_of_a_known_uniform_distribution() {
        // 1..=1000 uniformly into a tightly binned histogram: every
        // quantile must land within one bin width (1.0) of the exact
        // order statistic.
        let mut h = Histogram::new("h", 0.0, 1000.0, 1000);
        for v in 1..=1000 {
            h.record(v as f64);
        }
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0), (1.0, 1000.0)] {
            let got = h.percentile(q);
            assert!(
                (got - exact).abs() <= 1.0,
                "q={q}: got {got}, want ~{exact}"
            );
        }
        assert_eq!(h.percentile(0.0), h.percentile(1.0 / 1000.0));
        assert!((h.p50() - 500.0).abs() <= 1.0);
        assert!((h.p95() - 950.0).abs() <= 1.0);
        assert!((h.p99() - 990.0).abs() <= 1.0);
    }

    #[test]
    fn percentiles_of_a_skewed_distribution() {
        // 90% of mass at ~1 ms, 10% tail at ~9 ms: p50 must sit in the
        // body, p95/p99 in the tail — the shape the serve latency
        // histograms exist to expose.
        let mut h = Histogram::new("h", 0.0, 10.0, 100);
        for _ in 0..900 {
            h.record(1.05);
        }
        for _ in 0..100 {
            h.record(9.05);
        }
        assert!((h.p50() - 1.05).abs() <= 0.1, "p50 {}", h.p50());
        assert!((h.p95() - 9.05).abs() <= 0.1, "p95 {}", h.p95());
        assert!((h.p99() - 9.05).abs() <= 0.1, "p99 {}", h.p99());
    }

    #[test]
    fn percentile_edges_and_degenerates() {
        // Empty → NaN.
        assert!(Histogram::new("h", 0.0, 1.0, 4).percentile(0.5).is_nan());
        // NaN-only → nothing binned → NaN.
        let mut h = Histogram::new("h", 0.0, 1.0, 4);
        h.record(f64::NAN);
        assert!(h.percentile(0.5).is_nan());
        // Underflow/overflow ranks resolve to the exact extremes.
        let mut h = Histogram::new("h", 0.0, 1.0, 4);
        h.record(-5.0);
        h.record(0.5);
        h.record(42.0);
        assert_eq!(h.percentile(0.0), -5.0);
        assert_eq!(h.percentile(1.0), 42.0);
        // A single point mass answers that point (within clamping).
        let mut h = Histogram::new("h", 0.0, 10.0, 10);
        h.record(3.0);
        assert_eq!(h.percentile(0.5), 3.0);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_out_of_range_q() {
        Histogram::new("h", 0.0, 1.0, 2).percentile(1.5);
    }
}
