//! Minimal counters and fixed-bin histograms for slot-loop telemetry.
//!
//! Everything here is **mergeable**: [`Counter::merge`],
//! [`Histogram::merge`], and the [`ExactSum`] accumulator underneath are
//! associative and commutative, so shard-local aggregates folded together
//! in any split and order reproduce the sequential single-sink result
//! bit-for-bit (property-tested in `tests/merge_properties.rs`). That is
//! the contract the fleet campaign engine's O(shards) telemetry
//! reduction rests on.

/// A named monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Stable name used in exports.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Folds another counter of the same name into this one
    /// (associative, commutative).
    ///
    /// # Panics
    ///
    /// Panics if the names differ — merging unrelated counters is a bug.
    pub fn merge(&mut self, other: &Counter) {
        assert_eq!(
            self.name, other.name,
            "cannot merge counters with different names"
        );
        self.value += other.value;
    }
}

/// An exact, order- and partition-invariant `f64` sum.
///
/// Floating-point addition is not associative, so a naive `sum += x`
/// depends on accumulation order — poison for a sharded engine whose
/// steal order varies run to run. `ExactSum` keeps the running sum as a
/// list of non-overlapping partials (Shewchuk's `msum` expansion, the
/// algorithm behind Python's `math.fsum`) and rounds only once, in
/// [`ExactSum::value`], to the nearest `f64` of the *exact* real sum.
/// Because the represented real number is exact, both `add` and `merge`
/// are associative and commutative: any insertion order, any shard
/// partition, same `value()` bits.
///
/// Non-finite inputs are tracked out-of-band as counts so they cannot
/// poison the expansion: `value()` is NaN if any NaN was added (or both
/// infinity signs were), and ±∞ if only one infinity sign was. Should
/// the exact sum itself leave the finite `f64` range (|sum| > `f64::MAX`
/// — unreachable for this suite's bounded rewards), the accumulator
/// saturates stickily to an infinity of the overflowing sign.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    /// Non-overlapping partials in increasing magnitude order.
    partials: Vec<f64>,
    nan: u64,
    pos_inf: u64,
    neg_inf: u64,
}

impl ExactSum {
    /// An empty sum (`value() == 0.0`).
    pub fn new() -> Self {
        ExactSum::default()
    }

    /// Adds one value.
    pub fn add(&mut self, value: f64) {
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        if value.is_infinite() {
            if value > 0.0 {
                self.pos_inf += 1;
            } else {
                self.neg_inf += 1;
            }
            return;
        }
        let mut x = value;
        let mut kept = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                core::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            if hi.is_infinite() {
                // Exact-sum overflow: saturate stickily instead of
                // letting a NaN residue poison the expansion.
                if hi > 0.0 {
                    self.pos_inf += 1;
                } else {
                    self.neg_inf += 1;
                }
                self.partials.truncate(kept);
                return;
            }
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        self.partials.truncate(kept);
        self.partials.push(x);
    }

    /// Folds another accumulator into this one (associative,
    /// commutative — the merged sum represents exactly the union of both
    /// inputs' observations).
    pub fn merge(&mut self, other: &ExactSum) {
        self.nan += other.nan;
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
        for &p in &other.partials {
            self.add(p);
        }
    }

    /// The exact sum, correctly rounded to the nearest `f64` (round half
    /// to even) — the same result `math.fsum` would give for the full
    /// multiset of added values, in any order.
    pub fn value(&self) -> f64 {
        if self.nan > 0 || (self.pos_inf > 0 && self.neg_inf > 0) {
            return f64::NAN;
        }
        if self.pos_inf > 0 {
            return f64::INFINITY;
        }
        if self.neg_inf > 0 {
            return f64::NEG_INFINITY;
        }
        let p = &self.partials;
        let mut n = p.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = p[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Round-half-to-even correction: if the discarded residue is
        // exactly half an ulp, the next-lower partial decides the
        // direction (CPython's fsum tail).
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }

    pub(crate) fn encode_state(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.partials.len() as u64).to_le_bytes());
        for p in &self.partials {
            buf.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        for n in [self.nan, self.pos_inf, self.neg_inf] {
            buf.extend_from_slice(&n.to_le_bytes());
        }
    }

    pub(crate) fn decode_state(cursor: &mut &[u8]) -> Option<ExactSum> {
        let len = take_u64(cursor)? as usize;
        let mut sum = ExactSum::new();
        for _ in 0..len {
            let p = f64::from_bits(take_u64(cursor)?);
            if !p.is_finite() {
                return None;
            }
            // Re-adding renormalizes: the partial multiset represents the
            // same exact real number, so `value()` is unchanged.
            sum.add(p);
        }
        sum.nan = take_u64(cursor)?;
        sum.pos_inf = take_u64(cursor)?;
        sum.neg_inf = take_u64(cursor)?;
        Some(sum)
    }
}

impl PartialEq for ExactSum {
    /// Two sums are equal when their correctly-rounded values share the
    /// same bit pattern (the partials layout itself is not canonical).
    fn eq(&self, other: &Self) -> bool {
        self.value().to_bits() == other.value().to_bits()
    }
}

pub(crate) fn take_u64(cursor: &mut &[u8]) -> Option<u64> {
    let (head, rest) = cursor.split_first_chunk::<8>()?;
    *cursor = rest;
    Some(u64::from_le_bytes(*head))
}

/// A fixed-width linear histogram over `[lo, hi)` with under/overflow bins,
/// tracking exact count/sum/min/max alongside the binned shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Stable name used in exports.
    pub name: &'static str,
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: ExactSum,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new("histogram", 0.0, 1.0, 10)
    }
}

impl Histogram {
    /// A histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(name: &'static str, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            name,
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: ExactSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. NaN values are counted but not binned.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum.add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value.is_nan() {
            return;
        }
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((value - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (NaN if empty). Backed by [`ExactSum`], so
    /// the mean of a merged histogram is bit-identical to the mean of
    /// the sequential one regardless of shard partition or order.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum.value() / self.count as f64
        }
    }

    /// Lower edge of the binned range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the binned range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Folds another histogram of the same shape into this one
    /// (associative, commutative — merging shard-local histograms in any
    /// split and order reproduces the sequential result bit-for-bit).
    ///
    /// # Panics
    ///
    /// Panics if the names, ranges, or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.name, other.name,
            "cannot merge histograms with different names"
        );
        assert!(
            self.lo.to_bits() == other.lo.to_bits()
                && self.hi.to_bits() == other.hi.to_bits()
                && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different shapes"
        );
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub(crate) fn encode_state(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.lo.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.hi.to_bits().to_le_bytes());
        buf.extend_from_slice(&(self.bins.len() as u64).to_le_bytes());
        for &b in &self.bins {
            buf.extend_from_slice(&b.to_le_bytes());
        }
        for n in [self.underflow, self.overflow, self.count] {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        self.sum.encode_state(buf);
        buf.extend_from_slice(&self.min.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.max.to_bits().to_le_bytes());
    }

    /// Decodes a histogram previously written by `encode_state`; the
    /// caller supplies the static name (names are compile-time constants
    /// and are not serialized).
    pub(crate) fn decode_state(name: &'static str, cursor: &mut &[u8]) -> Option<Histogram> {
        let lo = f64::from_bits(take_u64(cursor)?);
        let hi = f64::from_bits(take_u64(cursor)?);
        let bins = take_u64(cursor)? as usize;
        if lo.is_nan() || hi.is_nan() || lo >= hi || bins == 0 || bins > 1 << 20 {
            return None;
        }
        let mut h = Histogram::new(name, lo, hi, bins);
        for b in h.bins.iter_mut() {
            *b = take_u64(cursor)?;
        }
        h.underflow = take_u64(cursor)?;
        h.overflow = take_u64(cursor)?;
        h.count = take_u64(cursor)?;
        h.sum = ExactSum::decode_state(cursor)?;
        h.min = f64::from_bits(take_u64(cursor)?);
        h.max = f64::from_bits(take_u64(cursor)?);
        Some(h)
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Bin counts (underflow and overflow excluded).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_lower_edge, count)` pairs, then `("underflow", n)`-style totals
    /// are available via [`Histogram::underflow`] / [`Histogram::overflow`].
    pub fn edges(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) reconstructed from the
    /// binned shape: the value is linearly interpolated inside the bin
    /// holding the `⌈q·n⌉`-th binned observation. Ranks falling into the
    /// underflow region resolve to the exact recorded minimum, ranks in
    /// the overflow region to the exact maximum, and every answer is
    /// clamped to `[min, max]` so a quantile can never lie outside the
    /// observed data. NaN observations are excluded (they are counted
    /// but not binned). Returns NaN when nothing was binned.
    ///
    /// The error is bounded by one bin width — size the histogram range
    /// for the precision the consumer needs (regression-tested against
    /// known distributions below).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let binned: u64 = self.underflow + self.overflow + self.bins.iter().sum::<u64>();
        if binned == 0 {
            return f64::NAN;
        }
        // 1-based rank of the target observation in ascending order.
        let rank = ((q * binned as f64).ceil() as u64).clamp(1, binned);
        if rank <= self.underflow {
            return self.min;
        }
        let mut cumulative = self.underflow;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            if rank <= cumulative + c {
                let frac = (rank - cumulative) as f64 / c as f64;
                let v = self.lo + width * (i as f64 + frac);
                return v.clamp(self.min, self.max);
            }
            cumulative += c;
        }
        self.max
    }

    /// Median ([`Histogram::percentile`] at 0.5).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(4);
        assert_eq!(c.value, 5);
    }

    #[test]
    fn histogram_bins_and_moments() {
        let mut h = Histogram::new("h", 0.0, 10.0, 10);
        for v in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 10.0);
        assert!((h.mean() - (0.5 + 1.5 + 1.7 + 9.9 - 1.0 + 10.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn top_edge_value_is_overflow_not_panic() {
        let mut h = Histogram::new("h", 0.0, 1.0, 4);
        h.record(1.0);
        h.record(0.999_999_9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn nan_counts_without_binning() {
        let mut h = Histogram::new("h", 0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(
            h.underflow() + h.overflow() + h.bins().iter().sum::<u64>(),
            0
        );
    }

    #[test]
    fn empty_histogram_mean_is_nan() {
        assert!(Histogram::new("h", 0.0, 1.0, 2).mean().is_nan());
    }

    #[test]
    fn percentiles_of_a_known_uniform_distribution() {
        // 1..=1000 uniformly into a tightly binned histogram: every
        // quantile must land within one bin width (1.0) of the exact
        // order statistic.
        let mut h = Histogram::new("h", 0.0, 1000.0, 1000);
        for v in 1..=1000 {
            h.record(v as f64);
        }
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0), (1.0, 1000.0)] {
            let got = h.percentile(q);
            assert!(
                (got - exact).abs() <= 1.0,
                "q={q}: got {got}, want ~{exact}"
            );
        }
        assert_eq!(h.percentile(0.0), h.percentile(1.0 / 1000.0));
        assert!((h.p50() - 500.0).abs() <= 1.0);
        assert!((h.p95() - 950.0).abs() <= 1.0);
        assert!((h.p99() - 990.0).abs() <= 1.0);
    }

    #[test]
    fn percentiles_of_a_skewed_distribution() {
        // 90% of mass at ~1 ms, 10% tail at ~9 ms: p50 must sit in the
        // body, p95/p99 in the tail — the shape the serve latency
        // histograms exist to expose.
        let mut h = Histogram::new("h", 0.0, 10.0, 100);
        for _ in 0..900 {
            h.record(1.05);
        }
        for _ in 0..100 {
            h.record(9.05);
        }
        assert!((h.p50() - 1.05).abs() <= 0.1, "p50 {}", h.p50());
        assert!((h.p95() - 9.05).abs() <= 0.1, "p95 {}", h.p95());
        assert!((h.p99() - 9.05).abs() <= 0.1, "p99 {}", h.p99());
    }

    #[test]
    fn percentile_edges_and_degenerates() {
        // Empty → NaN.
        assert!(Histogram::new("h", 0.0, 1.0, 4).percentile(0.5).is_nan());
        // NaN-only → nothing binned → NaN.
        let mut h = Histogram::new("h", 0.0, 1.0, 4);
        h.record(f64::NAN);
        assert!(h.percentile(0.5).is_nan());
        // Underflow/overflow ranks resolve to the exact extremes.
        let mut h = Histogram::new("h", 0.0, 1.0, 4);
        h.record(-5.0);
        h.record(0.5);
        h.record(42.0);
        assert_eq!(h.percentile(0.0), -5.0);
        assert_eq!(h.percentile(1.0), 42.0);
        // A single point mass answers that point (within clamping).
        let mut h = Histogram::new("h", 0.0, 10.0, 10);
        h.record(3.0);
        assert_eq!(h.percentile(0.5), 3.0);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_out_of_range_q() {
        Histogram::new("h", 0.0, 1.0, 2).percentile(1.5);
    }

    #[test]
    fn exact_sum_is_exact_where_naive_addition_is_not() {
        // The classic fsum demonstration: naive left-to-right addition
        // loses the 1.0 entirely; the exact sum keeps it.
        let mut s = ExactSum::new();
        for v in [1e100, 1.0, -1e100] {
            s.add(v);
        }
        assert_eq!(s.value(), 1.0);
        // And the canonical 0.1 accumulation drift.
        let mut s = ExactSum::new();
        for _ in 0..10 {
            s.add(0.1);
        }
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn exact_sum_is_order_invariant() {
        let values = [1e16, 3.17421, -1e16, 1e-9, 2.5, -7.25, 1e300, -1e300];
        let mut forward = ExactSum::new();
        let mut backward = ExactSum::new();
        for &v in &values {
            forward.add(v);
        }
        for &v in values.iter().rev() {
            backward.add(v);
        }
        assert_eq!(forward.value().to_bits(), backward.value().to_bits());
        assert_eq!(forward, backward);
    }

    #[test]
    fn exact_sum_merge_matches_sequential() {
        let values: Vec<f64> = (0..200)
            .map(|i| (i as f64 - 100.0) * 1.000_3_f64.powi(i))
            .collect();
        let mut sequential = ExactSum::new();
        for &v in &values {
            sequential.add(v);
        }
        let mut left = ExactSum::new();
        let mut right = ExactSum::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                left.add(v);
            } else {
                right.add(v);
            }
        }
        right.merge(&left);
        assert_eq!(sequential.value().to_bits(), right.value().to_bits());
    }

    #[test]
    fn exact_sum_tracks_specials_out_of_band() {
        let mut s = ExactSum::new();
        s.add(1.0);
        s.add(f64::INFINITY);
        assert_eq!(s.value(), f64::INFINITY);
        s.add(f64::NEG_INFINITY);
        assert!(s.value().is_nan(), "both infinity signs must yield NaN");
        let mut s = ExactSum::new();
        s.add(f64::NAN);
        s.add(2.0);
        assert!(s.value().is_nan());
    }

    #[test]
    fn exact_sum_state_roundtrips() {
        let mut s = ExactSum::new();
        for v in [1e100, 1.0, 0.1, -3.5e-12, f64::NAN] {
            s.add(v);
        }
        let mut buf = Vec::new();
        s.encode_state(&mut buf);
        let mut cursor = buf.as_slice();
        let back = ExactSum::decode_state(&mut cursor).expect("decode");
        assert!(cursor.is_empty(), "decode must consume the whole blob");
        assert_eq!(back.nan, 1);
        assert_eq!(back.value().to_bits(), s.value().to_bits());
    }

    #[test]
    fn counter_merge_adds_and_checks_names() {
        let mut a = Counter::new("x");
        a.add(3);
        let mut b = Counter::new("x");
        b.add(4);
        a.merge(&b);
        assert_eq!(a.value, 7);
    }

    #[test]
    #[should_panic]
    fn counter_merge_rejects_mismatched_names() {
        Counter::new("x").merge(&Counter::new("y"));
    }

    #[test]
    fn histogram_merge_matches_sequential_recording() {
        let values: Vec<f64> = (0..500)
            .map(|i| (i % 13) as f64 - 2.0 + 0.1 * i as f64)
            .collect();
        let mut sequential = Histogram::new("h", 0.0, 10.0, 16);
        let mut left = Histogram::new("h", 0.0, 10.0, 16);
        let mut right = Histogram::new("h", 0.0, 10.0, 16);
        for (i, &v) in values.iter().enumerate() {
            sequential.record(v);
            if i < 130 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, sequential);
        assert_eq!(left.mean().to_bits(), sequential.mean().to_bits());
    }

    #[test]
    #[should_panic]
    fn histogram_merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new("h", 0.0, 10.0, 16);
        a.merge(&Histogram::new("h", 0.0, 10.0, 8));
    }

    #[test]
    fn histogram_state_roundtrips() {
        let mut h = Histogram::new("h", -2.0, 5.0, 12);
        for v in [-3.0, -1.5, 0.25, 4.9, 5.0, f64::NAN] {
            h.record(v);
        }
        let mut buf = Vec::new();
        h.encode_state(&mut buf);
        let mut cursor = buf.as_slice();
        let back = Histogram::decode_state("h", &mut cursor).expect("decode");
        assert!(cursor.is_empty());
        assert_eq!(back, h);
        assert_eq!(back.bins(), h.bins());
        assert_eq!(back.count(), h.count());
    }

    #[test]
    fn histogram_decode_rejects_garbage() {
        let mut cursor: &[u8] = &[1, 2, 3];
        assert!(Histogram::decode_state("h", &mut cursor).is_none());
    }
}
