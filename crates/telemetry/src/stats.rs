//! Minimal counters and fixed-bin histograms for slot-loop telemetry.

/// A named monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Stable name used in exports.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }
}

/// A fixed-width linear histogram over `[lo, hi)` with under/overflow bins,
/// tracking exact count/sum/min/max alongside the binned shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Stable name used in exports.
    pub name: &'static str,
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new("histogram", 0.0, 1.0, 10)
    }
}

impl Histogram {
    /// A histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(name: &'static str, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            name,
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. NaN values are counted but not binned.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value.is_nan() {
            return;
        }
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((value - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (NaN if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Bin counts (underflow and overflow excluded).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_lower_edge, count)` pairs, then `("underflow", n)`-style totals
    /// are available via [`Histogram::underflow`] / [`Histogram::overflow`].
    pub fn edges(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(4);
        assert_eq!(c.value, 5);
    }

    #[test]
    fn histogram_bins_and_moments() {
        let mut h = Histogram::new("h", 0.0, 10.0, 10);
        for v in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 10.0);
        assert!((h.mean() - (0.5 + 1.5 + 1.7 + 9.9 - 1.0 + 10.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn top_edge_value_is_overflow_not_panic() {
        let mut h = Histogram::new("h", 0.0, 1.0, 4);
        h.record(1.0);
        h.record(0.999_999_9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn nan_counts_without_binning() {
        let mut h = Histogram::new("h", 0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(
            h.underflow() + h.overflow() + h.bins().iter().sum::<u64>(),
            0
        );
    }

    #[test]
    fn empty_histogram_mean_is_nan() {
        assert!(Histogram::new("h", 0.0, 1.0, 2).mean().is_nan());
    }
}
