//! The instrumentation trait and its stock implementations.

use crate::event::{SlotEvent, SlotOutcome, TrainEvent};
use crate::stats::{Counter, Histogram};

/// Receiver for telemetry emitted by instrumented code.
///
/// Every method has an empty default body so a sink only pays for what it
/// observes, and instrumented call sites monomorphised over [`NullSink`]
/// compile down to the uninstrumented loop.
pub trait EventSink {
    /// One slot of the competition loop completed.
    fn record_slot(&mut self, event: &SlotEvent) {
        let _ = event;
    }

    /// One DQN training step completed.
    fn record_train(&mut self, event: &TrainEvent) {
        let _ = event;
    }

    /// A named scalar observation outside the slot loop (e.g. final goodput,
    /// sweep-point summary values).
    fn record_scalar(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }
}

/// The zero-cost sink: observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {}

// Allow passing `&mut sink` where a sink is consumed by value-generic code.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn record_slot(&mut self, event: &SlotEvent) {
        (**self).record_slot(event);
    }
    fn record_train(&mut self, event: &TrainEvent) {
        (**self).record_train(event);
    }
    fn record_scalar(&mut self, name: &'static str, value: f64) {
        (**self).record_scalar(name, value);
    }
}

/// In-memory recorder: keeps every event, maintains outcome counters and a
/// reward histogram, and can export to JSON-lines / CSV (see
/// [`crate::export`]).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// Every slot event, in order.
    pub slots: Vec<SlotEvent>,
    /// Every training event, in order.
    pub trains: Vec<TrainEvent>,
    /// Named scalars, in emission order.
    pub scalars: Vec<(&'static str, f64)>,
    /// Slots by outcome label plus `hop`/`power_control` action counters.
    pub counters: Vec<Counter>,
    /// Distribution of per-slot rewards.
    pub reward_hist: Histogram,
    /// Distribution of training losses (only steps where a gradient ran).
    pub loss_hist: Histogram,
}

impl MemorySink {
    /// An empty sink with reward/loss histograms sized for Eq. 5 rewards
    /// (small negative range) and TD losses.
    pub fn new() -> Self {
        MemorySink {
            reward_hist: Histogram::new("reward", -10.0, 2.0, 24),
            loss_hist: Histogram::new("loss", 0.0, 5.0, 20),
            ..MemorySink::default()
        }
    }

    fn bump(&mut self, name: &'static str) {
        if let Some(c) = self.counters.iter_mut().find(|c| c.name == name) {
            c.incr();
        } else {
            let mut c = Counter::new(name);
            c.incr();
            self.counters.push(c);
        }
    }

    /// Value of a counter, 0 if never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Mean reward over all recorded slots (NaN if none).
    pub fn mean_reward(&self) -> f64 {
        self.reward_hist.mean()
    }
}

impl EventSink for MemorySink {
    fn record_slot(&mut self, event: &SlotEvent) {
        self.bump(event.outcome.label());
        if event.hopped {
            self.bump("hop");
        }
        if event.power_control {
            self.bump("power_control");
        }
        self.reward_hist.record(event.reward);
        self.slots.push(*event);
    }

    fn record_train(&mut self, event: &TrainEvent) {
        if let Some(loss) = event.loss {
            self.loss_hist.record(loss);
        }
        self.trains.push(*event);
    }

    fn record_scalar(&mut self, name: &'static str, value: f64) {
        self.scalars.push((name, value));
    }
}

/// O(1)-memory aggregating sink for sharded campaign engines.
///
/// Unlike [`MemorySink`], nothing per-event is retained — only counters
/// and histograms — so one `ShardSink` per worker shard costs constant
/// memory no matter how many episodes the shard processes. Two
/// invariants make it fleet-safe:
///
/// * **Fixed counter layout.** `MemorySink` orders counters by first
///   bump, which varies with episode assignment; `ShardSink` uses fixed
///   fields so [`ShardSink::to_json`] is byte-stable across any shard
///   partition.
/// * **Mergeable.** [`ShardSink::merge`] is associative and commutative
///   (histogram sums ride on [`crate::ExactSum`]), so folding shard
///   locals in any order reproduces the sequential single-sink result
///   bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSink {
    /// Slot events observed.
    pub slots: u64,
    /// Training events observed.
    pub train_steps: u64,
    /// Outcome counts in declaration order
    /// (`delivered`, `survived_jam`, `jammed`, `hopped`).
    pub outcomes: [u64; 4],
    /// Slots in which the defender hopped.
    pub hops: u64,
    /// Slots in which the defender raised power.
    pub power_controls: u64,
    /// Distribution of per-slot rewards (same shape as [`MemorySink`]).
    pub reward_hist: Histogram,
    /// Distribution of training losses (same shape as [`MemorySink`]).
    pub loss_hist: Histogram,
}

impl Default for ShardSink {
    fn default() -> Self {
        ShardSink::new()
    }
}

impl ShardSink {
    /// An empty sink with the same histogram shapes as [`MemorySink`],
    /// so fleet and non-fleet telemetry stay directly comparable.
    pub fn new() -> Self {
        ShardSink {
            slots: 0,
            train_steps: 0,
            outcomes: [0; 4],
            hops: 0,
            power_controls: 0,
            reward_hist: Histogram::new("reward", -10.0, 2.0, 24),
            loss_hist: Histogram::new("loss", 0.0, 5.0, 20),
        }
    }

    fn outcome_index(outcome: SlotOutcome) -> usize {
        match outcome {
            SlotOutcome::Delivered => 0,
            SlotOutcome::SurvivedJam => 1,
            SlotOutcome::Jammed => 2,
            SlotOutcome::Hopped => 3,
        }
    }

    /// Count for one outcome.
    pub fn outcome_count(&self, outcome: SlotOutcome) -> u64 {
        self.outcomes[Self::outcome_index(outcome)]
    }

    /// Folds another shard's aggregates into this one (associative,
    /// commutative).
    pub fn merge(&mut self, other: &ShardSink) {
        self.slots += other.slots;
        self.train_steps += other.train_steps;
        for (mine, theirs) in self.outcomes.iter_mut().zip(&other.outcomes) {
            *mine += theirs;
        }
        self.hops += other.hops;
        self.power_controls += other.power_controls;
        self.reward_hist.merge(&other.reward_hist);
        self.loss_hist.merge(&other.loss_hist);
    }

    /// The aggregate as a JSON object with a fixed key order, mirroring
    /// [`crate::export::summary_json`]'s layout (minus per-event data).
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        let mut counters = JsonValue::object();
        counters
            .set("delivered", self.outcomes[0])
            .set("survived_jam", self.outcomes[1])
            .set("jammed", self.outcomes[2])
            .set("hopped", self.outcomes[3])
            .set("hop", self.hops)
            .set("power_control", self.power_controls);
        let mut obj = JsonValue::object();
        obj.set("slots", self.slots)
            .set("train_steps", self.train_steps)
            .set("counters", counters)
            .set("reward", crate::export::histogram_json(&self.reward_hist))
            .set("loss", crate::export::histogram_json(&self.loss_hist));
        obj
    }

    /// Serializes the full aggregate state (checkpoint payload fragment).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        for n in [self.slots, self.train_steps] {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        for n in self.outcomes {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        for n in [self.hops, self.power_controls] {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        self.reward_hist.encode_state(buf);
        self.loss_hist.encode_state(buf);
    }

    /// Decodes a sink written by [`ShardSink::encode`], advancing
    /// `cursor` past the consumed bytes. Returns `None` on malformed
    /// input.
    pub fn decode(cursor: &mut &[u8]) -> Option<ShardSink> {
        let take = crate::stats::take_u64;
        let mut sink = ShardSink::new();
        sink.slots = take(cursor)?;
        sink.train_steps = take(cursor)?;
        for slot in sink.outcomes.iter_mut() {
            *slot = take(cursor)?;
        }
        sink.hops = take(cursor)?;
        sink.power_controls = take(cursor)?;
        sink.reward_hist = Histogram::decode_state("reward", cursor)?;
        sink.loss_hist = Histogram::decode_state("loss", cursor)?;
        Some(sink)
    }
}

impl EventSink for ShardSink {
    fn record_slot(&mut self, event: &SlotEvent) {
        self.slots += 1;
        self.outcomes[Self::outcome_index(event.outcome)] += 1;
        if event.hopped {
            self.hops += 1;
        }
        if event.power_control {
            self.power_controls += 1;
        }
        self.reward_hist.record(event.reward);
    }

    fn record_train(&mut self, event: &TrainEvent) {
        self.train_steps += 1;
        if let Some(loss) = event.loss {
            self.loss_hist.record(loss);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SlotOutcome;

    fn slot(i: u64, outcome: SlotOutcome, hopped: bool, reward: f64) -> SlotEvent {
        SlotEvent {
            slot: i,
            channel: 3,
            power_level: 0,
            hopped,
            power_control: false,
            outcome,
            jammer_on_channel: matches!(outcome, SlotOutcome::Jammed | SlotOutcome::SurvivedJam),
            reward,
        }
    }

    #[test]
    fn memory_sink_counts_outcomes_and_actions() {
        let mut sink = MemorySink::new();
        sink.record_slot(&slot(0, SlotOutcome::Delivered, false, 1.0));
        sink.record_slot(&slot(1, SlotOutcome::Jammed, false, -4.0));
        sink.record_slot(&slot(2, SlotOutcome::Hopped, true, -1.0));
        assert_eq!(sink.counter("delivered"), 1);
        assert_eq!(sink.counter("jammed"), 1);
        assert_eq!(sink.counter("hopped"), 1);
        assert_eq!(sink.counter("hop"), 1);
        assert_eq!(sink.counter("power_control"), 0);
        assert_eq!(sink.slots.len(), 3);
        assert!((sink.mean_reward() - (-4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn memory_sink_records_train_losses() {
        let mut sink = MemorySink::new();
        sink.record_train(&TrainEvent {
            step: 1,
            loss: None,
            epsilon: 1.0,
            replay_len: 1,
            replay_capacity: 100,
        });
        sink.record_train(&TrainEvent {
            step: 2,
            loss: Some(0.5),
            epsilon: 0.99,
            replay_len: 2,
            replay_capacity: 100,
        });
        assert_eq!(sink.trains.len(), 2);
        assert_eq!(sink.loss_hist.count(), 1);
    }

    #[test]
    fn null_sink_is_a_sink() {
        fn run<S: EventSink>(sink: &mut S) {
            sink.record_scalar("x", 1.0);
        }
        run(&mut NullSink);
        let mut mem = MemorySink::new();
        run(&mut mem);
        assert_eq!(mem.scalars, vec![("x", 1.0)]);
    }

    #[test]
    fn shard_sink_aggregates_like_memory_sink() {
        let events = [
            slot(0, SlotOutcome::Delivered, false, 1.0),
            slot(1, SlotOutcome::Jammed, false, -4.0),
            slot(2, SlotOutcome::Hopped, true, -1.0),
            slot(3, SlotOutcome::SurvivedJam, false, 0.5),
        ];
        let mut shard = ShardSink::new();
        let mut mem = MemorySink::new();
        for e in &events {
            shard.record_slot(e);
            mem.record_slot(e);
        }
        assert_eq!(shard.slots, 4);
        for outcome in [
            SlotOutcome::Delivered,
            SlotOutcome::SurvivedJam,
            SlotOutcome::Jammed,
            SlotOutcome::Hopped,
        ] {
            assert_eq!(shard.outcome_count(outcome), mem.counter(outcome.label()));
        }
        assert_eq!(shard.hops, mem.counter("hop"));
        assert_eq!(shard.reward_hist, mem.reward_hist);
    }

    #[test]
    fn shard_sink_merge_matches_sequential_and_roundtrips() {
        let events: Vec<SlotEvent> = (0..40)
            .map(|i| {
                let outcome = match i % 4 {
                    0 => SlotOutcome::Delivered,
                    1 => SlotOutcome::SurvivedJam,
                    2 => SlotOutcome::Jammed,
                    _ => SlotOutcome::Hopped,
                };
                slot(i, outcome, i % 3 == 0, -(i as f64) * 0.17)
            })
            .collect();
        let mut sequential = ShardSink::new();
        let mut a = ShardSink::new();
        let mut b = ShardSink::new();
        for (i, e) in events.iter().enumerate() {
            sequential.record_slot(e);
            if i % 2 == 0 {
                a.record_slot(e);
            } else {
                b.record_slot(e);
            }
        }
        a.merge(&b);
        assert_eq!(a, sequential);
        assert_eq!(
            a.to_json().to_string_compact(),
            sequential.to_json().to_string_compact()
        );

        let mut buf = Vec::new();
        sequential.encode(&mut buf);
        let mut cursor = buf.as_slice();
        let back = ShardSink::decode(&mut cursor).expect("decode");
        assert!(cursor.is_empty(), "decode must consume the whole blob");
        assert_eq!(back, sequential);
    }

    #[test]
    fn shard_sink_decode_rejects_truncated_input() {
        let mut sink = ShardSink::new();
        sink.record_slot(&slot(0, SlotOutcome::Delivered, false, 1.0));
        let mut buf = Vec::new();
        sink.encode(&mut buf);
        buf.truncate(buf.len() - 1);
        let mut cursor = buf.as_slice();
        assert!(ShardSink::decode(&mut cursor).is_none());
    }
}
