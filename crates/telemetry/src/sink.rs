//! The instrumentation trait and its two stock implementations.

use crate::event::{SlotEvent, TrainEvent};
use crate::stats::{Counter, Histogram};

/// Receiver for telemetry emitted by instrumented code.
///
/// Every method has an empty default body so a sink only pays for what it
/// observes, and instrumented call sites monomorphised over [`NullSink`]
/// compile down to the uninstrumented loop.
pub trait EventSink {
    /// One slot of the competition loop completed.
    fn record_slot(&mut self, event: &SlotEvent) {
        let _ = event;
    }

    /// One DQN training step completed.
    fn record_train(&mut self, event: &TrainEvent) {
        let _ = event;
    }

    /// A named scalar observation outside the slot loop (e.g. final goodput,
    /// sweep-point summary values).
    fn record_scalar(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }
}

/// The zero-cost sink: observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {}

// Allow passing `&mut sink` where a sink is consumed by value-generic code.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn record_slot(&mut self, event: &SlotEvent) {
        (**self).record_slot(event);
    }
    fn record_train(&mut self, event: &TrainEvent) {
        (**self).record_train(event);
    }
    fn record_scalar(&mut self, name: &'static str, value: f64) {
        (**self).record_scalar(name, value);
    }
}

/// In-memory recorder: keeps every event, maintains outcome counters and a
/// reward histogram, and can export to JSON-lines / CSV (see
/// [`crate::export`]).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// Every slot event, in order.
    pub slots: Vec<SlotEvent>,
    /// Every training event, in order.
    pub trains: Vec<TrainEvent>,
    /// Named scalars, in emission order.
    pub scalars: Vec<(&'static str, f64)>,
    /// Slots by outcome label plus `hop`/`power_control` action counters.
    pub counters: Vec<Counter>,
    /// Distribution of per-slot rewards.
    pub reward_hist: Histogram,
    /// Distribution of training losses (only steps where a gradient ran).
    pub loss_hist: Histogram,
}

impl MemorySink {
    /// An empty sink with reward/loss histograms sized for Eq. 5 rewards
    /// (small negative range) and TD losses.
    pub fn new() -> Self {
        MemorySink {
            reward_hist: Histogram::new("reward", -10.0, 2.0, 24),
            loss_hist: Histogram::new("loss", 0.0, 5.0, 20),
            ..MemorySink::default()
        }
    }

    fn bump(&mut self, name: &'static str) {
        if let Some(c) = self.counters.iter_mut().find(|c| c.name == name) {
            c.incr();
        } else {
            let mut c = Counter::new(name);
            c.incr();
            self.counters.push(c);
        }
    }

    /// Value of a counter, 0 if never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Mean reward over all recorded slots (NaN if none).
    pub fn mean_reward(&self) -> f64 {
        self.reward_hist.mean()
    }
}

impl EventSink for MemorySink {
    fn record_slot(&mut self, event: &SlotEvent) {
        self.bump(event.outcome.label());
        if event.hopped {
            self.bump("hop");
        }
        if event.power_control {
            self.bump("power_control");
        }
        self.reward_hist.record(event.reward);
        self.slots.push(*event);
    }

    fn record_train(&mut self, event: &TrainEvent) {
        if let Some(loss) = event.loss {
            self.loss_hist.record(loss);
        }
        self.trains.push(*event);
    }

    fn record_scalar(&mut self, name: &'static str, value: f64) {
        self.scalars.push((name, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SlotOutcome;

    fn slot(i: u64, outcome: SlotOutcome, hopped: bool, reward: f64) -> SlotEvent {
        SlotEvent {
            slot: i,
            channel: 3,
            power_level: 0,
            hopped,
            power_control: false,
            outcome,
            jammer_on_channel: matches!(outcome, SlotOutcome::Jammed | SlotOutcome::SurvivedJam),
            reward,
        }
    }

    #[test]
    fn memory_sink_counts_outcomes_and_actions() {
        let mut sink = MemorySink::new();
        sink.record_slot(&slot(0, SlotOutcome::Delivered, false, 1.0));
        sink.record_slot(&slot(1, SlotOutcome::Jammed, false, -4.0));
        sink.record_slot(&slot(2, SlotOutcome::Hopped, true, -1.0));
        assert_eq!(sink.counter("delivered"), 1);
        assert_eq!(sink.counter("jammed"), 1);
        assert_eq!(sink.counter("hopped"), 1);
        assert_eq!(sink.counter("hop"), 1);
        assert_eq!(sink.counter("power_control"), 0);
        assert_eq!(sink.slots.len(), 3);
        assert!((sink.mean_reward() - (-4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn memory_sink_records_train_losses() {
        let mut sink = MemorySink::new();
        sink.record_train(&TrainEvent {
            step: 1,
            loss: None,
            epsilon: 1.0,
            replay_len: 1,
            replay_capacity: 100,
        });
        sink.record_train(&TrainEvent {
            step: 2,
            loss: Some(0.5),
            epsilon: 0.99,
            replay_len: 2,
            replay_capacity: 100,
        });
        assert_eq!(sink.trains.len(), 2);
        assert_eq!(sink.loss_hist.count(), 1);
    }

    #[test]
    fn null_sink_is_a_sink() {
        fn run<S: EventSink>(sink: &mut S) {
            sink.record_scalar("x", 1.0);
        }
        run(&mut NullSink);
        let mut mem = MemorySink::new();
        run(&mut mem);
        assert_eq!(mem.scalars, vec![("x", 1.0)]);
    }
}
