//! Property tests for the mergeable-telemetry contract.
//!
//! The fleet campaign engine folds shard-local [`ShardSink`]s together in
//! whatever order workers finish, so every aggregate it relies on must be
//! associative and commutative *bit-for-bit*: any partition of the event
//! stream, merged in any order, must reproduce the sequential single-sink
//! result exactly. These tests state that contract directly over random
//! event streams, random partitions, and random merge orders, comparing
//! exported JSON byte-for-byte (not approximately).

use ctjam_telemetry::export::histogram_json;
use ctjam_telemetry::{
    Counter, EventSink, ExactSum, Histogram, ShardSink, SlotEvent, SlotOutcome, TrainEvent,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically maps raw u64s to f64 values with wildly mixed
/// magnitudes (the regime where naive summation order matters most),
/// plus occasional NaN / ±inf so the out-of-band counters are exercised.
fn decode_value(raw: u64) -> f64 {
    match raw % 97 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3..=10 => (raw as f64 - (u64::MAX / 2) as f64) * 1e300,
        11..=20 => (raw % 1000) as f64 * 1e-300,
        21..=30 => f64::from_bits(raw).clamp(-1e308, 1e308),
        _ => (raw as f64 / u64::MAX as f64 - 0.5) * 1e6,
    }
}

/// Fisher–Yates shuffle driven by a seeded StdRng, so the "random order"
/// in each property is itself reproducible from the proptest case.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// Splits `items` into `parts` chunks round-robin — the worst case for a
/// naive accumulator, since neighbouring values land in different shards.
fn round_robin<T: Clone>(items: &[T], parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    let mut chunks: Vec<Vec<T>> = vec![Vec::new(); parts];
    for (i, item) in items.iter().enumerate() {
        chunks[i % parts].push(item.clone());
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ExactSum is insertion-order-invariant: any permutation of the same
    /// values rounds to the same f64, bit for bit.
    #[test]
    fn exact_sum_is_order_invariant(
        raws in prop::collection::vec(any::<u64>(), 1..50),
        shuffle_seed in any::<u64>(),
    ) {
        let values: Vec<f64> = raws.iter().map(|&r| decode_value(r)).collect();
        let mut forward = ExactSum::new();
        for &v in &values {
            forward.add(v);
        }
        let mut permuted = ExactSum::new();
        for v in shuffled(&values, shuffle_seed) {
            permuted.add(v);
        }
        prop_assert_eq!(forward.value().to_bits(), permuted.value().to_bits());
        prop_assert_eq!(&forward, &permuted);
    }

    /// ExactSum is partition-invariant: splitting the stream across any
    /// number of shards and merging the shard sums in a shuffled order
    /// reproduces the sequential sum bit for bit.
    #[test]
    fn exact_sum_is_partition_invariant(
        raws in prop::collection::vec(any::<u64>(), 1..50),
        parts in 1usize..8,
        shuffle_seed in any::<u64>(),
    ) {
        let values: Vec<f64> = raws.iter().map(|&r| decode_value(r)).collect();
        let mut sequential = ExactSum::new();
        for &v in &values {
            sequential.add(v);
        }
        let shards: Vec<ExactSum> = round_robin(&values, parts)
            .iter()
            .map(|chunk| {
                let mut s = ExactSum::new();
                for &v in chunk {
                    s.add(v);
                }
                s
            })
            .collect();
        let mut merged = ExactSum::new();
        for shard in shuffled(&shards, shuffle_seed) {
            merged.merge(&shard);
        }
        prop_assert_eq!(sequential.value().to_bits(), merged.value().to_bits());
        prop_assert_eq!(&sequential, &merged);
    }

    /// Counter merge is partition- and order-invariant.
    #[test]
    fn counter_merge_is_partition_invariant(
        increments in prop::collection::vec(any::<u32>(), 1..50),
        parts in 1usize..8,
        shuffle_seed in any::<u64>(),
    ) {
        let mut sequential = Counter::new("prop");
        for &n in &increments {
            sequential.add(n as u64);
        }
        let shards: Vec<Counter> = round_robin(&increments, parts)
            .iter()
            .map(|chunk| {
                let mut c = Counter::new("prop");
                for &n in chunk {
                    c.add(n as u64);
                }
                c
            })
            .collect();
        let mut merged = Counter::new("prop");
        for shard in shuffled(&shards, shuffle_seed) {
            merged.merge(&shard);
        }
        prop_assert_eq!(sequential.value, merged.value);
    }

    /// Histogram merge reproduces the sequential histogram bit for bit on
    /// its exported JSON (count, mean, min, max, every bin, percentiles),
    /// for any round-robin partition merged in any order.
    #[test]
    fn histogram_merge_is_partition_invariant(
        raws in prop::collection::vec(any::<u64>(), 1..50),
        parts in 1usize..8,
        shuffle_seed in any::<u64>(),
    ) {
        let values: Vec<f64> = raws.iter().map(|&r| decode_value(r)).collect();
        let mut sequential = Histogram::new("prop", -10.0, 10.0, 16);
        for &v in &values {
            sequential.record(v);
        }
        let shards: Vec<Histogram> = round_robin(&values, parts)
            .iter()
            .map(|chunk| {
                let mut h = Histogram::new("prop", -10.0, 10.0, 16);
                for &v in chunk {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut merged = Histogram::new("prop", -10.0, 10.0, 16);
        for shard in shuffled(&shards, shuffle_seed) {
            merged.merge(&shard);
        }
        prop_assert_eq!(
            histogram_json(&sequential).to_string_compact(),
            histogram_json(&merged).to_string_compact()
        );
    }

    /// The full ShardSink: a random slot/train event stream partitioned
    /// round-robin across shards and merged in a shuffled order exports
    /// exactly the same JSON as one sink that saw every event in order.
    #[test]
    fn shard_sink_merge_matches_sequential_json(
        raws in prop::collection::vec(any::<u64>(), 1..80),
        parts in 1usize..8,
        shuffle_seed in any::<u64>(),
    ) {
        let events: Vec<(SlotEvent, Option<TrainEvent>)> = raws
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let outcome = match r % 4 {
                    0 => SlotOutcome::Delivered,
                    1 => SlotOutcome::SurvivedJam,
                    2 => SlotOutcome::Jammed,
                    _ => SlotOutcome::Hopped,
                };
                let slot = SlotEvent {
                    slot: i as u64,
                    channel: (r % 16) as u16,
                    power_level: (r % 10) as u16,
                    hopped: r % 4 == 3,
                    power_control: r % 5 == 0,
                    outcome,
                    jammer_on_channel: r % 3 == 0,
                    reward: decode_value(r).clamp(-1e9, 1e9),
                };
                let train = (r % 2 == 0).then(|| TrainEvent {
                    step: i as u64,
                    loss: (r % 3 == 0).then(|| (r % 500) as f64 / 100.0),
                    epsilon: 0.1,
                    replay_len: (r % 100) as usize,
                    replay_capacity: 100,
                });
                (slot, train)
            })
            .collect();

        let mut sequential = ShardSink::new();
        for (slot, train) in &events {
            sequential.record_slot(slot);
            if let Some(t) = train {
                sequential.record_train(t);
            }
        }

        let shards: Vec<ShardSink> = round_robin(&events, parts)
            .iter()
            .map(|chunk| {
                let mut sink = ShardSink::new();
                for (slot, train) in chunk {
                    sink.record_slot(slot);
                    if let Some(t) = train {
                        sink.record_train(t);
                    }
                }
                sink
            })
            .collect();
        let mut merged = ShardSink::new();
        for shard in shuffled(&shards, shuffle_seed) {
            merged.merge(&shard);
        }

        prop_assert_eq!(
            sequential.to_json().to_string_compact(),
            merged.to_json().to_string_compact()
        );
    }
}
