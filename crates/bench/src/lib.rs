//! Shared helpers for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one of the paper's figures or
//! tables; this library holds the small amount of common formatting and
//! configuration code they share.
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig01_emulation_error` | Fig. 1 / Eqs. 1–2: emulation fidelity with and without the α optimizer |
//! | `fig02_jamming_effect` | Fig. 2(b): PER & throughput vs jamming distance per jammer kind |
//! | `fig06_07_08_sweeps` | Figs. 6–8: ST/AH/AP/SH/SP across the L_J, sweep-cycle, L_H, and L_p sweeps, both jammer modes |
//! | `fig09_time_consumption` | Fig. 9: per-function timing and FH-negotiation scaling |
//! | `fig10_goodput_utilization` | Fig. 10: goodput and slot utilization vs Tx slot duration |
//! | `fig11_scheme_comparison` | Fig. 11: PSV/Rand/RL/no-jammer goodput and the Jx-slot sensitivity |
//! | `mdp_threshold_analysis` | Theorems III.4–III.5: threshold structure and its parameter trends |
//! | `league` | adversary-zoo self-play league and defender × adversary cross-table |
//! | `campaign` | runs a directory of `scenarios/*.json` files and emits a deterministic HTML report |
//!
//! The figure binaries marked in `scenarios/` (`fig02`, `fig06-08`,
//! `fig10`) are thin wrappers over `ctjam-scenario`: they load their
//! checked-in scenario file and print the same tables as always, so the
//! numbers stay bit-identical to the pre-DSL binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a Markdown-style table header and separator.
pub fn table_header(columns: &[&str]) {
    let row = columns.join(" | ");
    println!("| {row} |");
    let sep: Vec<String> = columns.iter().map(|c| "-".repeat(c.len().max(3))).collect();
    println!("| {} |", sep.join(" | "));
}

/// Prints one table row.
pub fn table_row<T: Display>(cells: &[T]) {
    let row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
    println!("| {} |", row.join(" | "));
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Reads an integer knob from the environment with a default.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a float knob from the environment with a default.
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints the standard banner for a reproduction binary.
pub fn banner(figure: &str, claim: &str) {
    println!("==========================================================");
    println!("CTJam reproduction — {figure}");
    println!("Paper claim: {claim}");
    println!("==========================================================");
}

/// Writes a CSV file into `$CTJAM_CSV_DIR` (if set), returning whether a
/// file was written. Fields are escaped per RFC 4180 (via
/// [`ctjam_telemetry::export::csv_field`]), the header goes first.
/// Figure binaries call this so their printed tables are also available
/// to plotting scripts.
///
/// # Panics
///
/// Panics if the directory exists but the file cannot be written (a
/// misconfigured output path should fail loudly, not silently drop data).
pub fn maybe_write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> bool {
    let Ok(dir) = std::env::var("CTJAM_CSV_DIR") else {
        return false;
    };
    let escape = |cells: &mut dyn Iterator<Item = &str>| -> String {
        cells
            .map(|c| ctjam_telemetry::export::csv_field(c).into_owned())
            .collect::<Vec<_>>()
            .join(",")
    };
    let dir = std::path::Path::new(&dir);
    std::fs::create_dir_all(dir).expect("create CTJAM_CSV_DIR");
    let mut out = String::new();
    out.push_str(&escape(&mut header.iter().copied()));
    out.push('\n');
    for row in rows {
        out.push_str(&escape(&mut row.iter().map(String::as_str)));
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, out).expect("write csv");
    println!("(wrote {})", path.display());
    true
}

/// Directory figure outputs (CSV, manifests) land in: `$CTJAM_CSV_DIR`
/// if set, otherwise `results/` under the current directory.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var("CTJAM_CSV_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("results"))
}

/// Directory checked-in scenario files are loaded from:
/// `$CTJAM_SCENARIO_DIR` if set, otherwise `scenarios/` under the
/// current directory.
pub fn scenario_dir() -> std::path::PathBuf {
    std::env::var("CTJAM_SCENARIO_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("scenarios"))
}

/// Loads and parses a scenario file from [`scenario_dir`], exiting with
/// a readable message on failure (wrapper figure bins depend on their
/// checked-in scenario the way they used to depend on constants).
pub fn load_scenario(file: &str) -> ctjam_scenario::Scenario {
    let path = scenario_dir().join(file);
    match ctjam_scenario::Scenario::load(&path) {
        Ok(scenario) => scenario,
        Err(err) => {
            eprintln!("cannot load scenario {}: {err}", path.display());
            std::process::exit(2);
        }
    }
}

/// Starts the run manifest of a figure binary: base seed, configuration
/// `Debug` string (hashed for cheap diffing), `git describe`, and the
/// start-of-run timestamp. Call [`finish_manifest`] after the figure's
/// tables are printed so the recorded wall time covers the whole run.
pub fn start_manifest(name: &str, seed: u64, config: &str) -> ctjam_telemetry::RunManifest {
    ctjam_telemetry::RunManifest::new(name, seed, config)
}

/// Writes the manifest into [`results_dir`] as `<name>.manifest.json`,
/// printing the path.
///
/// # Panics
///
/// Panics if the manifest cannot be written — provenance loss should
/// fail loudly, exactly like [`maybe_write_csv`] on a bad path.
pub fn finish_manifest(manifest: &ctjam_telemetry::RunManifest) {
    let path = manifest.write(&results_dir()).expect("write run manifest");
    println!("(manifest {})", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.785), "78.5%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn env_knobs_fall_back() {
        assert_eq!(env_usize("CTJAM_DOES_NOT_EXIST", 5), 5);
        assert_eq!(env_f64("CTJAM_DOES_NOT_EXIST", 2.5), 2.5);
    }

    #[test]
    fn results_dir_defaults_to_results() {
        if std::env::var("CTJAM_CSV_DIR").is_err() {
            assert_eq!(results_dir(), std::path::PathBuf::from("results"));
        }
    }

    #[test]
    fn csv_skipped_without_env() {
        // The test runner does not set CTJAM_CSV_DIR; the helper must be
        // a quiet no-op then.
        if std::env::var("CTJAM_CSV_DIR").is_err() {
            assert!(!maybe_write_csv("unit_test", &["a"], &[vec!["1".into()]]));
        }
    }
}
