//! Self-play league driver: alternates attacker-DQN and defender-DQN
//! training epochs, then scores a defender × adversary goodput
//! cross-table over the whole zoo with the fleet engine and writes
//! `league_crosstable.json` (schema ctjam-league/v1) plus a
//! deterministic `league_report.html` into `--out-dir` (default:
//! `results/`, or `$CTJAM_CSV_DIR`).
//!
//! Phase 1 (self-play): a learning [`ctjam_core::adversary::DqnJammer`]
//! and a learning DQN defender take turns — each epoch freezes one side
//! and lets the other adapt, threading the attacker's learned state
//! through episodes via `CompetitionEnv::into_adversary`. Phase 2
//! (cross-table): every defender policy (baselines, the decoy-wrapped
//! random hopper, and the league-trained network as a shared frozen
//! policy) is evaluated by `ctjam-fleet` against every zoo adversary,
//! at 1, 2 and 8 workers, asserting the goodput vector is bit-exact
//! across all three before a single row is recorded.
//!
//! Quick mode (`CTJAM_BENCH_QUICK=1`, the CI league-smoke stage) shrinks
//! both phases to seconds. Knobs: `CTJAM_LEAGUE_EPOCHS` (self-play
//! rounds), `CTJAM_LEAGUE_SLOTS` (slots per training epoch),
//! `CTJAM_LEAGUE_EVAL_SLOTS` (slots per cross-table episode),
//! `CTJAM_LEAGUE_SEEDS` (replicates per cell).

use ctjam_bench::{env_usize, results_dir, table_header, table_row};
use ctjam_core::adaptive::PredictorKind;
use ctjam_core::adversary::AdversaryConfig;
use ctjam_core::defender::DqnDefender;
use ctjam_core::env::{CompetitionEnv, EnvParams};
use ctjam_core::runner::RunBuilder;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_fleet::{CampaignPolicy, CampaignSpec, Fleet};
use ctjam_scenario::report::Report;
use ctjam_telemetry::{JsonValue, RunManifest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Base seed for every RNG in this binary (recorded in the manifest).
const SEED: u64 = 0x001E_A60E;

/// Schema tag checked by the `ci.sh` league-smoke stage.
const SCHEMA: &str = "ctjam-league/v1";

/// Worker counts the cross-table is pinned across.
const WORKERS: [usize; 3] = [1, 2, 8];

/// Compile-time SIMD features — evidence that `target-cpu=native` took
/// effect for this build (mirrors `perf_report` / `fleet_bench`).
fn target_cpu_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(target_feature = "sse4.2") {
        feats.push("sse4.2");
    }
    if cfg!(target_feature = "avx") {
        feats.push("avx");
    }
    if cfg!(target_feature = "avx2") {
        feats.push("avx2");
    }
    if cfg!(target_feature = "fma") {
        feats.push("fma");
    }
    if cfg!(target_feature = "avx512f") {
        feats.push("avx512f");
    }
    if cfg!(target_feature = "neon") {
        feats.push("neon");
    }
    if feats.is_empty() {
        "baseline".to_string()
    } else {
        feats.join("+")
    }
}

/// Parses the one flag this binary takes: `--out-dir DIR` (default:
/// [`results_dir`]).
fn parse_out_dir() -> PathBuf {
    let mut out = results_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out-dir needs a value");
                    std::process::exit(2)
                }
            },
            _ => {
                eprintln!("usage: league [--out-dir DIR]");
                std::process::exit(2)
            }
        }
    }
    out
}

fn main() {
    let out_dir = parse_out_dir();
    let quick = std::env::var("CTJAM_BENCH_QUICK").is_ok();
    let epochs = env_usize("CTJAM_LEAGUE_EPOCHS", if quick { 2 } else { 6 });
    let epoch_slots = env_usize("CTJAM_LEAGUE_SLOTS", if quick { 600 } else { 6_000 });
    let eval_slots = env_usize("CTJAM_LEAGUE_EVAL_SLOTS", if quick { 120 } else { 2_000 });
    let replicates = env_usize("CTJAM_LEAGUE_SEEDS", if quick { 2 } else { 4 });

    // ----- Phase 1: alternating self-play ------------------------------
    let params = EnvParams {
        adversary: AdversaryConfig::dqn(),
        ..EnvParams::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut defender = if quick {
        DqnDefender::small_for_tests(&params, &mut rng)
    } else {
        DqnDefender::paper_default(&params, &mut rng)
    };
    let mut attacker = params.adversary.build(&mut rng);

    let mut manifest = RunManifest::new("league_crosstable", SEED, &format!("{params:?}"));
    manifest.push_extra("schema", SCHEMA);
    manifest.push_extra("target_arch", std::env::consts::ARCH);
    manifest.push_extra("target_cpu_features", target_cpu_features());
    manifest.push_extra(
        "threads_available",
        ctjam_core::pool::available_threads() as f64,
    );
    manifest.push_extra("quick_mode", JsonValue::from(quick));
    manifest.push_extra("league_epochs", epochs as f64);
    manifest.push_extra("epoch_slots", epoch_slots as f64);
    manifest.push_extra("eval_slots", eval_slots as f64);
    manifest.push_extra("replicates", replicates as f64);

    println!("self-play league: {epochs} epoch pair(s) × {epoch_slots} slots");
    table_header(&["epoch", "phase", "defender ST", "attacker hit rate"]);
    let mut epoch_log = Vec::new();
    let mut report_selfplay: Vec<Vec<String>> = Vec::new();
    for epoch in 0..epochs {
        // Attacker epoch: the defender is frozen, the DQN jammer learns.
        defender.set_training(false);
        attacker.set_learning(true);
        let mut env = CompetitionEnv::with_adversary(params.clone(), attacker, &mut rng);
        let atk = RunBuilder::new(&params).run_in(&mut env, &mut defender, epoch_slots, &mut rng);
        let atk_hit = env.adversary_probe().hit_rate();
        attacker = env.into_adversary();
        let atk_cells = vec![
            format!("{epoch}"),
            "attacker".to_string(),
            format!("{:.3}", atk.metrics.success_rate()),
            format!("{atk_hit:.3}"),
        ];
        table_row(&atk_cells);
        report_selfplay.push(atk_cells);

        // Defender epoch: the attacker is frozen, the defender learns.
        attacker.set_learning(false);
        defender.set_training(true);
        let mut env = CompetitionEnv::with_adversary(params.clone(), attacker, &mut rng);
        let def = RunBuilder::new(&params).run_in(&mut env, &mut defender, epoch_slots, &mut rng);
        let def_hit = env.adversary_probe().hit_rate();
        attacker = env.into_adversary();
        let def_cells = vec![
            format!("{epoch}"),
            "defender".to_string(),
            format!("{:.3}", def.metrics.success_rate()),
            format!("{def_hit:.3}"),
        ];
        table_row(&def_cells);
        report_selfplay.push(def_cells);

        let mut entry = JsonValue::object();
        entry.set("epoch", epoch as f64);
        entry.set("attacker_phase_defender_st", atk.metrics.success_rate());
        entry.set("attacker_phase_hit_rate", atk_hit);
        entry.set("defender_phase_defender_st", def.metrics.success_rate());
        entry.set("defender_phase_hit_rate", def_hit);
        epoch_log.push(entry);
    }
    manifest.push_extra("self_play", JsonValue::Arr(epoch_log));

    defender.set_training(false);
    let league_policy = Arc::new(GreedyPolicy::from_agent(defender.agent()));

    // ----- Phase 2: defender × adversary cross-table -------------------
    let base = EnvParams::default();
    let adversaries = [
        AdversaryConfig::none(),
        AdversaryConfig::sweep(),
        AdversaryConfig::reactive(8.0),
        AdversaryConfig::pursuit(),
        AdversaryConfig::reactive(8.0).energy_budget(40.0, 2.0),
        AdversaryConfig::adaptive(PredictorKind::Markov),
        AdversaryConfig::dqn(),
    ];
    let labels: Vec<String> = adversaries.iter().map(|a| a.label()).collect();
    let points: Vec<EnvParams> = adversaries
        .iter()
        .map(|a| EnvParams {
            adversary: a.clone(),
            ..base.clone()
        })
        .collect();
    let seeds: Vec<u64> = (0..replicates as u64).collect();
    let defenders: Vec<(&str, CampaignPolicy)> = vec![
        ("no-defense", CampaignPolicy::NoDefense),
        ("passive-fh", CampaignPolicy::PassiveFh),
        ("random-fh", CampaignPolicy::RandomFh),
        ("random-fh+decoys", CampaignPolicy::DecoyRandomFh(0.5)),
        (
            "league-dqn",
            CampaignPolicy::SharedGreedy(Arc::clone(&league_policy)),
        ),
    ];
    let defender_names: Vec<String> = defenders.iter().map(|(n, _)| n.to_string()).collect();

    println!();
    println!(
        "cross-table: {} defenders × {} adversaries × {replicates} seed(s) × {eval_slots} slots, \
         workers {WORKERS:?}",
        defenders.len(),
        adversaries.len()
    );
    let mut header: Vec<String> = vec!["defender \\ adversary".into()];
    header.extend(labels.iter().cloned());
    table_header(&header.iter().map(String::as_str).collect::<Vec<_>>());

    let mut rows = Vec::new();
    let mut matrix_cells: Vec<Vec<String>> = Vec::new();
    for (name, policy) in defenders {
        let spec = CampaignSpec {
            name: format!("league:{name}"),
            points: points.clone(),
            seeds: seeds.clone(),
            policy,
            slots: eval_slots,
            kernel: false,
            base_seed: SEED,
            faults: None,
        };
        // The determinism pin: the full grid must produce bit-identical
        // goodput at every worker count before the row is recorded.
        let mut reference: Option<(Vec<u64>, Vec<f64>)> = None;
        for &workers in &WORKERS {
            let result = Fleet::new().threads(workers).run(&spec);
            let goodput = result.goodput_vector();
            let bits: Vec<u64> = goodput.iter().map(|g| g.to_bits()).collect();
            match &reference {
                None => reference = Some((bits, goodput)),
                Some((seen, _)) => assert_eq!(
                    seen, &bits,
                    "goodput for {name} changed between worker counts"
                ),
            }
        }
        let (_, goodput) = reference.expect("at least one worker count ran");
        let per_adversary: Vec<f64> = (0..points.len())
            .map(|p| {
                let cell = &goodput[p * seeds.len()..(p + 1) * seeds.len()];
                cell.iter().sum::<f64>() / cell.len() as f64
            })
            .collect();

        let mut cells: Vec<String> = vec![name.to_string()];
        cells.extend(per_adversary.iter().map(|g| format!("{g:.3}")));
        table_row(&cells);
        matrix_cells.push(per_adversary.iter().map(|g| format!("{g:.3}")).collect());

        let mut row = JsonValue::object();
        row.set("defender", name);
        row.set(
            "goodput",
            JsonValue::Arr(per_adversary.iter().map(|&g| JsonValue::from(g)).collect()),
        );
        rows.push(row);
    }

    manifest.push_extra(
        "defenders",
        JsonValue::Arr(
            defender_names
                .iter()
                .cloned()
                .map(JsonValue::from)
                .collect(),
        ),
    );
    manifest.push_extra(
        "adversaries",
        JsonValue::Arr(labels.iter().cloned().map(JsonValue::from).collect()),
    );
    manifest.push_extra("rows", JsonValue::Arr(rows));
    manifest.push_extra(
        "workers_checked",
        JsonValue::Arr(WORKERS.iter().map(|&w| JsonValue::from(w)).collect()),
    );
    manifest.push_extra("bit_exact_workers", true);

    std::fs::create_dir_all(&out_dir).expect("create league output dir");
    let path = out_dir.join("league_crosstable.json");
    std::fs::write(&path, manifest.to_json().to_string_pretty()).expect("write league manifest");
    println!("(wrote {})", path.display());

    // Deterministic HTML companion: the same cross-table and self-play
    // trajectory, rendered through the scenario report module.
    let mut report = Report::new("CTJam adversary league");
    report.kv_table(&[
        ("schema".into(), SCHEMA.to_string()),
        ("seed".into(), format!("{SEED}")),
        ("self-play epochs".into(), format!("{epochs}")),
        ("slots per epoch".into(), format!("{epoch_slots}")),
        ("eval slots".into(), format!("{eval_slots}")),
        ("seeds per cell".into(), format!("{replicates}")),
        ("workers checked".into(), format!("{WORKERS:?}")),
    ]);
    report.section("Self-play trajectory");
    report.table(
        &["epoch", "phase", "defender ST", "attacker hit rate"],
        &report_selfplay,
    );
    report.section("Defender x adversary goodput cross-table");
    report.matrix(
        "defender \\ adversary",
        &labels,
        &defender_names,
        &matrix_cells,
    );
    let report_path = out_dir.join("league_report.html");
    std::fs::write(&report_path, report.to_html()).expect("write league report");
    println!("(wrote {})", report_path.display());
}
