//! Fig. 1 / Eqs. (1)–(2): EmuBee emulation fidelity.
//!
//! Quantifies how much the paper's optimal 64-QAM scaling (`α*`) improves
//! the Wi-Fi emulation of ZigBee waveforms over the naive fixed-scale
//! quantizer, and confirms the emulated waveform still decodes as the
//! designed chips at the victim.

use ctjam_bench::{banner, env_usize, finish_manifest, start_manifest, table_header, table_row};
use ctjam_phy::emulation::{frequency_shift, EmulationConfig, Emulator};
use ctjam_phy::metrics::{chip_error_rate, normalized_correlation, waveform_evm};
use ctjam_phy::zigbee::oqpsk::OqpskModulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "Fig. 1 / Eqs. 1-2 (emulation fidelity)",
        "optimally scaling the 64-QAM grid makes emulated waveforms more similar to designed waveforms",
    );

    let bursts = env_usize("CTJAM_BURSTS", 20);
    let symbols_per_burst = env_usize("CTJAM_BURST_SYMBOLS", 8);
    let manifest = start_manifest(
        "fig01_emulation_error",
        2022,
        &format!(
            "bursts={bursts}, symbols_per_burst={symbols_per_burst}, {:?}",
            EmulationConfig::default()
        ),
    );
    let mut rng = StdRng::seed_from_u64(2022);
    let modulator = OqpskModulator::with_oversampling(10);
    let optimized = Emulator::new(EmulationConfig::default());
    let naive = Emulator::new(EmulationConfig {
        optimize_alpha: false,
        fixed_alpha: 1.0,
        respect_ofdm_mask: true,
    });

    table_header(&[
        "burst",
        "alpha* (mean)",
        "EVM naive",
        "EVM optimized",
        "gain",
        "corr",
        "chip err",
    ]);

    let mut evm_naive_sum = 0.0;
    let mut evm_opt_sum = 0.0;
    let mut cer_sum = 0.0;
    for burst in 0..bursts {
        let symbols: Vec<u8> = (0..symbols_per_burst)
            .map(|_| rng.gen_range(0..16))
            .collect();
        let designed = modulator.modulate_symbols(&symbols);
        // The attack synthesizes the ZigBee channel at a +5 MHz offset
        // inside the Wi-Fi band (OFDM cannot drive DC).
        let target = frequency_shift(&designed, 16);

        let report_opt = optimized.emulate(&target);
        let report_naive = naive.emulate(&target);
        let victim_view = frequency_shift(report_opt.emulated(), -16);

        let evm_n = waveform_evm(&target, report_naive.emulated());
        let evm_o = waveform_evm(&target, report_opt.emulated());
        let corr = normalized_correlation(&designed, &victim_view);
        let cer = chip_error_rate(&modulator, &designed, &victim_view);
        let mean_alpha = report_opt.alpha_per_window().iter().sum::<f64>()
            / report_opt.alpha_per_window().len() as f64;

        evm_naive_sum += evm_n;
        evm_opt_sum += evm_o;
        cer_sum += cer;
        table_row(&[
            format!("{burst}"),
            format!("{mean_alpha:.3}"),
            format!("{evm_n:.4}"),
            format!("{evm_o:.4}"),
            format!("{:.1}%", 100.0 * (1.0 - evm_o / evm_n)),
            format!("{corr:.4}"),
            format!("{:.4}", cer),
        ]);
    }

    let n = bursts as f64;
    println!();
    println!(
        "mean EVM: naive {:.4} -> optimized {:.4} ({:.1}% error reduction)",
        evm_naive_sum / n,
        evm_opt_sum / n,
        100.0 * (1.0 - evm_opt_sum / evm_naive_sum)
    );
    println!(
        "mean victim chip error rate of optimized EmuBee: {:.4} (0 = decodes exactly as designed)",
        cer_sum / n
    );
    println!("paper: optimized quantization 'will be more similar to the designed waveforms'");

    // --- The full Fig. 1 chain: recover the *payload bits* the NIC needs.
    println!("\n### Full Fig. 1 inverse chain (scrambler + conv. code + interleaver)\n");
    table_header(&[
        "burst",
        "payload bits",
        "EVM free quantization",
        "EVM codeword-constrained",
        "victim chip err",
    ]);
    let mut free_sum = 0.0;
    let mut constrained_sum = 0.0;
    let mut chain_cer_sum = 0.0;
    let chain_bursts = bursts.min(8);
    for burst in 0..chain_bursts {
        let symbols: Vec<u8> = (0..symbols_per_burst)
            .map(|_| rng.gen_range(0..16))
            .collect();
        let designed = modulator.modulate_symbols(&symbols);
        let target = frequency_shift(&designed, 16);

        let free = optimized.emulate(&target);
        let chain = ctjam_phy::wifi::txchain::TxChain::new(0x5D);
        let recovered = ctjam_phy::wifi::txchain::recover_payload(&chain, &target);

        let len = target.len().min(recovered.predicted.len());
        let evm_free = waveform_evm(&target[..len], &free.emulated()[..len]);
        let evm_chain = waveform_evm(&target[..len], &recovered.predicted[..len]);
        let victim_view = frequency_shift(&recovered.predicted[..len], -16);
        let cer = chip_error_rate(&modulator, &designed[..len], &victim_view);

        free_sum += evm_free;
        constrained_sum += evm_chain;
        chain_cer_sum += cer;
        table_row(&[
            format!("{burst}"),
            format!("{}", recovered.payload_bits.len()),
            format!("{evm_free:.4}"),
            format!("{evm_chain:.4}"),
            format!("{cer:.4}"),
        ]);
    }
    let cn = chain_bursts as f64;
    println!();
    println!(
        "the convolutional-code constraint costs {:.1}% extra EVM ({:.4} -> {:.4}); victim chip error rate {:.4}",
        100.0 * (constrained_sum / free_sum - 1.0),
        free_sum / cn,
        constrained_sum / cn,
        chain_cer_sum / cn,
    );
    println!(
        "(soft-metric Viterbi chooses the minimum-cost codeword — the best a *coded* NIC can emit)"
    );
    finish_manifest(&manifest);
}
