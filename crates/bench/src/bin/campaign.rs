//! Campaign engine: runs a directory of scenario files and emits one
//! deterministic static HTML report.
//!
//! ```text
//! campaign [--dir scenarios/] [--out results/campaign] [--threads N]
//!          [--resume] [--quick]
//! ```
//!
//! Every `*.json` file in `--dir` (sorted by name) is parsed with
//! `ctjam-scenario`, run through the matching deterministic runner, and
//! summarized into `<out>/report.html` — tables plus inline SVG plots,
//! byte-for-byte identical across runs and worker counts. Each scenario
//! also gets a run manifest in `--out` carrying its canonical
//! fingerprint and source path.
//!
//! `campaign` scenarios checkpoint per completed policy into
//! `<out>/<name>.progress.ckpt`; `--resume` reconstitutes completed
//! policies bit-exactly and rejects a checkpoint whose fingerprint does
//! not match the (effective) scenario file. `--quick` (or
//! `CTJAM_BENCH_QUICK=1`) applies each scenario's `quick` overrides —
//! quick runs fingerprint differently, so a quick checkpoint can never
//! resume a full campaign.

use ctjam_bench::{results_dir, scenario_dir, start_manifest};
use ctjam_scenario::report::Report;
use ctjam_scenario::run::{
    run_campaign, run_field, run_link_sweep, run_sweep, CampaignOptions, CampaignPolicyRun,
    SweepTableRun,
};
use ctjam_scenario::{Campaign, Field, LinkSweep, Scenario, ScenarioKind, Sweep};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--dir DIR] [--out DIR] [--threads N] [--resume] [--quick]\n\
         \n\
         --dir DIR     scenario directory (default: scenarios/ or $CTJAM_SCENARIO_DIR)\n\
         --out DIR     output directory (default: results/campaign)\n\
         --threads N   fleet worker threads (default: fleet heuristic)\n\
         --resume      resume campaign scenarios from their checkpoints\n\
         --quick       apply each scenario's quick-mode overrides"
    );
    exit(2)
}

struct Args {
    dir: PathBuf,
    out: PathBuf,
    threads: Option<usize>,
    resume: bool,
    quick: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        dir: scenario_dir(),
        out: results_dir().join("campaign"),
        threads: None,
        resume: false,
        quick: std::env::var("CTJAM_BENCH_QUICK").is_ok_and(|v| v == "1"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{flag} needs a value");
                usage()
            }
        };
        match arg.as_str() {
            "--dir" => parsed.dir = PathBuf::from(value("--dir")),
            "--out" => parsed.out = PathBuf::from(value("--out")),
            "--threads" => match value("--threads").parse() {
                Ok(n) if n > 0 => parsed.threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    usage()
                }
            },
            "--resume" => parsed.resume = true,
            "--quick" => parsed.quick = true,
            _ => {
                eprintln!("unknown argument: {arg}");
                usage()
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut files: Vec<PathBuf> = match std::fs::read_dir(&args.dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect(),
        Err(err) => {
            eprintln!(
                "cannot read scenario directory {}: {err}",
                args.dir.display()
            );
            exit(2)
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("no *.json scenario files in {}", args.dir.display());
        exit(2)
    }
    if let Err(err) = std::fs::create_dir_all(&args.out) {
        eprintln!(
            "cannot create output directory {}: {err}",
            args.out.display()
        );
        exit(2)
    }

    let mut report = Report::new("CTJam campaign report");
    for path in &files {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("cannot load scenario {}: {err}", path.display());
                exit(2)
            }
        };
        let effective = scenario.effective(args.quick);
        let fingerprint = scenario.fingerprint(args.quick);
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        println!(
            "running {file_name} ({}) fingerprint {fingerprint:016x}",
            effective.kind_tag()
        );

        let mut manifest = start_manifest(
            &format!("campaign_{}", effective.name),
            scenario_seed(&effective),
            &effective.to_json().to_string_compact(),
        );
        manifest
            .push_extra("scenario_fingerprint", format!("{fingerprint:016x}"))
            .push_extra("scenario_path", file_name.clone())
            .push_extra("scenario_kind", effective.kind_tag())
            .push_extra("quick_mode", if args.quick { "true" } else { "false" });

        report.section(&format!("{} ({})", effective.name, effective.kind_tag()));
        report.kv_table(&[
            ("file".into(), file_name.clone()),
            ("fingerprint".into(), format!("{fingerprint:016x}")),
            ("seed".into(), format!("{}", scenario_seed(&effective))),
            ("quick mode".into(), format!("{}", args.quick)),
        ]);

        match &effective.kind {
            ScenarioKind::LinkSweep(sweep) => report_link_sweep(&mut report, sweep),
            ScenarioKind::Sweep(sweep) => report_sweep(&mut report, sweep),
            ScenarioKind::Field(field) => report_field(&mut report, field),
            ScenarioKind::Campaign(campaign) => {
                let options = CampaignOptions {
                    threads: args.threads,
                    checkpoint: Some(args.out.join(format!("{}.progress.ckpt", effective.name))),
                    resume: args.resume,
                };
                match run_campaign(&effective.name, campaign, fingerprint, &options) {
                    Ok(runs) => report_campaign(&mut report, campaign, &runs),
                    Err(err) => {
                        eprintln!("campaign {} failed: {err}", effective.name);
                        exit(3)
                    }
                }
            }
        }

        match manifest.write(&args.out) {
            Ok(path) => println!("(manifest {})", path.display()),
            Err(err) => {
                eprintln!("cannot write manifest: {err}");
                exit(2)
            }
        }
    }

    let report_path = args.out.join("report.html");
    if let Err(err) = std::fs::write(&report_path, report.to_html()) {
        eprintln!("cannot write report {}: {err}", report_path.display());
        exit(2)
    }
    println!("(report {})", report_path.display());
}

/// The headline seed of a scenario, for the manifest and report header.
fn scenario_seed(scenario: &Scenario) -> u64 {
    match &scenario.kind {
        ScenarioKind::LinkSweep(s) => s.seed,
        ScenarioKind::Sweep(s) => s.seed,
        ScenarioKind::Field(s) => s.seed,
        ScenarioKind::Campaign(s) => s.base_seed,
    }
}

fn report_link_sweep(report: &mut Report, sweep: &LinkSweep) {
    let run = run_link_sweep(sweep);
    report.paragraph(&format!(
        "Clean link: PER {:.4}, goodput {:.1} kbps ({} Monte-Carlo draws per point).",
        run.clean.per,
        run.clean.goodput_bps / 1000.0,
        sweep.draws
    ));

    let x_labels: Vec<String> = run
        .rows
        .iter()
        .map(|r| format!("{:.0}", r.distance_m))
        .collect();
    let per_series: Vec<(String, Vec<f64>)> = sweep
        .jammers
        .iter()
        .enumerate()
        .map(|(j, name)| {
            (
                name.clone(),
                run.rows.iter().map(|r| r.reports[j].per).collect(),
            )
        })
        .collect();
    let goodput_series: Vec<(String, Vec<f64>)> = sweep
        .jammers
        .iter()
        .enumerate()
        .map(|(j, name)| {
            (
                name.clone(),
                run.rows
                    .iter()
                    .map(|r| r.reports[j].goodput_bps / 1000.0)
                    .collect(),
            )
        })
        .collect();
    report.line_chart("PER vs jammer distance (m)", &x_labels, &per_series);
    report.line_chart(
        "Goodput (kbps) vs jammer distance (m)",
        &x_labels,
        &goodput_series,
    );

    let mut headers = vec!["distance (m)".to_string()];
    for name in &sweep.jammers {
        headers.push(format!("PER {name}"));
        headers.push(format!("kbps {name}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = run
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![format!("{:.0}", r.distance_m)];
            for rep in &r.reports {
                row.push(format!("{:.4}", rep.per));
                row.push(format!("{:.1}", rep.goodput_bps / 1000.0));
            }
            row
        })
        .collect();
    report.table(&header_refs, &rows);
}

fn report_sweep(report: &mut Report, sweep: &Sweep) {
    // No replay-trace capture here: traces belong to the figure bins.
    let tables = run_sweep(sweep, None, "");
    let mut i = 0;
    while i < tables.len() {
        // run_sweep emits axes outer, modes inner: consecutive tables
        // with the same axis name are that axis's jammer modes.
        let axis = &tables[i].name;
        let group: Vec<&SweepTableRun> =
            tables[i..].iter().take_while(|t| &t.name == axis).collect();
        let st_series: Vec<(String, Vec<f64>)> = group
            .iter()
            .map(|t| {
                (
                    format!("ST {:?}", t.mode),
                    t.metrics.iter().map(|m| m.success_rate()).collect(),
                )
            })
            .collect();
        report.line_chart(
            &format!("Success rate (ST) vs {axis}"),
            &group[0].xs,
            &st_series,
        );
        for table in &group {
            let rows: Vec<Vec<String>> = table
                .xs
                .iter()
                .zip(&table.metrics)
                .map(|(x, m)| {
                    vec![
                        x.clone(),
                        format!("{:.3}", m.success_rate()),
                        format!("{:.3}", m.fh_adoption_rate()),
                        format!("{:.3}", m.pc_adoption_rate()),
                        format!("{:.3}", m.fh_success_rate()),
                        format!("{:.3}", m.pc_success_rate()),
                    ]
                })
                .collect();
            report.paragraph(&format!("{axis} — jammer mode {:?}", table.mode));
            report.table(&[axis.as_str(), "ST", "AH", "AP", "SH", "SP"], &rows);
        }
        i += group.len();
    }
}

fn report_field(report: &mut Report, field: &Field) {
    let rows = run_field(field);
    let x_labels: Vec<String> = rows
        .iter()
        .map(|r| format!("{:.0}", r.duration_s))
        .collect();
    report.line_chart(
        "Goodput (pkts/slot) vs Tx slot duration (s)",
        &x_labels,
        &[
            (
                "defended, jammed".into(),
                rows.iter().map(|r| r.report.packets_per_slot()).collect(),
            ),
            (
                "no jammer".into(),
                rows.iter()
                    .map(|r| r.reference.packets_per_slot())
                    .collect(),
            ),
        ],
    );
    report.line_chart(
        "Slot utilization vs Tx slot duration (s)",
        &x_labels,
        &[(
            "utilization".into(),
            rows.iter()
                .map(|r| r.report.goodput.utilization())
                .collect(),
        )],
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.duration_s),
                format!("{:.0}", r.report.packets_per_slot()),
                format!("{:.4}", r.report.goodput.utilization()),
                format!("{:.3}", r.report.goodput.overhead_per_slot_s()),
                format!("{:.0}", r.reference.packets_per_slot()),
            ]
        })
        .collect();
    report.table(
        &[
            "Tx slot (s)",
            "goodput (pkts/slot)",
            "utilization",
            "overhead (s/slot)",
            "no-jammer pkts/slot",
        ],
        &table_rows,
    );
}

fn report_campaign(report: &mut Report, campaign: &Campaign, runs: &[CampaignPolicyRun]) {
    let seeds = campaign.seeds.len().max(1);
    // Adversary × policy cross-table of mean success rate: episodes run
    // points-outer seeds-inner, so adversary a owns the goodput-vector
    // block [a*seeds, (a+1)*seeds).
    let cells: Vec<Vec<String>> = campaign
        .adversaries
        .iter()
        .enumerate()
        .map(|(a, _)| {
            runs.iter()
                .map(|run| {
                    let gv = run.result.goodput_vector();
                    let block = &gv[a * seeds..(a + 1) * seeds];
                    let mean = block.iter().sum::<f64>() / block.len() as f64;
                    format!("{:.1}%", 100.0 * mean)
                })
                .collect()
        })
        .collect();
    report.paragraph(&format!(
        "{} adversaries x {} policies, {} seed(s) per cell, {} slots per episode.",
        campaign.adversaries.len(),
        runs.len(),
        seeds,
        campaign.slots
    ));
    report.matrix(
        "adversary \\ policy",
        &runs.iter().map(|r| r.policy.clone()).collect::<Vec<_>>(),
        &campaign.adversaries,
        &cells,
    );
    for run in runs {
        report.histogram(
            &format!("Reward distribution — {}", run.policy),
            &run.result.telemetry.reward_hist,
        );
    }
}
