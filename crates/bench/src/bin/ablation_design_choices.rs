//! Ablations of the defense's design choices (DESIGN.md §5).
//!
//! The paper's central design claim is that the *hybrid* FH + PC action
//! space is what makes the DQN defense work. This harness isolates each
//! ingredient:
//!
//! 1. **Action space** — hybrid (FH × PC) vs FH-only (one power level)
//!    vs PC-only (static channel at max power), under both jammer modes.
//! 2. **History length `I`** — how much of the `3 × I` observation the
//!    agent actually needs.
//! 3. **Passive detection threshold** — how the error-threshold latency
//!    (the stealthiness cost) degrades the reactive baseline.
//!
//! Knobs: `CTJAM_TRAIN_SLOTS` (default 12 000), `CTJAM_EVAL_SLOTS`
//! (default 12 000).

use ctjam_bench::{
    banner, env_usize, finish_manifest, pct, start_manifest, table_header, table_row,
};
use ctjam_core::defender::{DqnDefender, NoDefense, PassiveFh};
use ctjam_core::env::EnvParams;
use ctjam_core::jammer::JammerMode;
use ctjam_core::runner::RunBuilder;
use ctjam_dqn::config::DqnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dqn_st(
    params: &EnvParams,
    config: DqnConfig,
    train_slots: usize,
    eval_slots: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut defender = DqnDefender::new(params, config, &mut rng);
    RunBuilder::new(params).train(&mut defender, train_slots, &mut rng);
    defender.set_training(false);
    RunBuilder::new(params)
        .evaluate(&mut defender, eval_slots, &mut rng)
        .metrics
        .success_rate()
}

fn main() {
    banner(
        "Ablations (design choices)",
        "hybrid FH+PC beats FH-only and PC-only; a few slots of history suffice; detection latency is what sinks passive FH",
    );
    let train_slots = env_usize("CTJAM_TRAIN_SLOTS", 12_000);
    let eval_slots = env_usize("CTJAM_EVAL_SLOTS", 12_000);
    let manifest = start_manifest(
        "ablation_design_choices",
        1,
        &format!(
            "train_slots={train_slots}, eval_slots={eval_slots}, {:?}",
            EnvParams::default()
        ),
    );

    println!("\n### 1. Action space (concrete 16-channel environment)\n");
    table_header(&[
        "jammer mode",
        "hybrid FH+PC",
        "FH-only",
        "PC-only (static, max power)",
    ]);
    for mode in [JammerMode::MaxPower, JammerMode::RandomPower] {
        let mut params = EnvParams::default();
        params.adversary.mode = mode;

        let hybrid_config = DqnConfig {
            num_channels: params.num_channels(),
            num_power_levels: params.num_powers(),
            ..DqnConfig::default()
        };
        let hybrid = dqn_st(&params, hybrid_config, train_slots, eval_slots, 1);

        // FH-only: collapse the power axis to the single minimum level.
        let mut fh_params = params.clone();
        fh_params.tx_powers = vec![params.tx_powers[0]];
        let fh_config = DqnConfig {
            num_channels: fh_params.num_channels(),
            num_power_levels: 1,
            ..DqnConfig::default()
        };
        let fh_only = dqn_st(&fh_params, fh_config, train_slots, eval_slots, 2);

        // PC-only: a static node pinned to the maximum power level.
        let mut rng = StdRng::seed_from_u64(3);
        let mut pc_only_defender =
            NoDefense::with_power(&params, params.num_powers() - 1, &mut rng);
        let pc_only = RunBuilder::new(&params)
            .run(&mut pc_only_defender, eval_slots, &mut rng)
            .metrics
            .success_rate();

        table_row(&[format!("{mode:?}"), pct(hybrid), pct(fh_only), pct(pc_only)]);
    }
    println!("\nexpected: PC-only collapses in max-power mode (Tx max 15 < Jx max 20); hybrid >= FH-only everywhere");

    println!("\n### 2. Observation history length I (3 x I inputs)\n");
    table_header(&["I", "input neurons", "ST (random-power jammer)"]);
    let mut params = EnvParams::default();
    params.adversary.mode = JammerMode::RandomPower;
    for history in [1usize, 2, 4, 8, 16] {
        let config = DqnConfig {
            history_len: history,
            num_channels: params.num_channels(),
            num_power_levels: params.num_powers(),
            ..DqnConfig::default()
        };
        let st = dqn_st(
            &params,
            config,
            train_slots,
            eval_slots,
            10 + history as u64,
        );
        table_row(&[format!("{history}"), format!("{}", 3 * history), pct(st)]);
    }
    println!("\nthe paper uses I = 8; the ablation shows how quickly returns diminish");

    println!("\n### 3. Passive FH detection threshold (stealthiness cost)\n");
    table_header(&["detection slots", "ST"]);
    let params = EnvParams::default();
    for detection in [1usize, 2, 3, 4] {
        let mut rng = StdRng::seed_from_u64(20 + detection as u64);
        let mut psv = PassiveFh::with_detection_slots(&params, detection, &mut rng);
        let st = RunBuilder::new(&params)
            .run(&mut psv, eval_slots, &mut rng)
            .metrics
            .success_rate();
        table_row(&[format!("{detection}"), pct(st)]);
    }
    println!("\nevery extra slot of detection latency (EmuBee's stealthiness) costs the reactive scheme dearly");
    finish_manifest(&manifest);
}
