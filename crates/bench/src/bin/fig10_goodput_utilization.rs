//! Fig. 10: goodput and slot utilization vs Tx slot duration.
//!
//! Thin wrapper over the checked-in scenario
//! `scenarios/fig10_goodput_utilization.json`: one trained DQN defender
//! driven through the field experiment at Tx slot durations of 1–5 s,
//! with a no-jammer reference run per duration. The experiment loop
//! (RNG discipline included) lives in `ctjam_scenario::run::run_field`,
//! so this binary and a `campaign` run of the same file produce
//! bit-identical numbers.
//!
//! Knobs: `CTJAM_FIELD_SLOTS` (default 120) and `CTJAM_TRAIN_SLOTS`
//! (default 12 000) trade fidelity for wall time, as they always did.

use ctjam_bench::{
    banner, env_usize, finish_manifest, load_scenario, pct, start_manifest, table_header, table_row,
};
use ctjam_core::field::FieldConfig;
use ctjam_scenario::run::run_field;
use ctjam_scenario::ScenarioKind;

fn main() {
    banner(
        "Fig. 10 (goodput & utilization vs timeslot duration)",
        "goodput 148->806 pkts/slot and utilization 91.75%->98.58% as the Tx slot grows 1->5 s; ~0.07 s negotiation per slot",
    );

    let scenario_file = load_scenario("fig10_goodput_utilization.json");
    let fingerprint = scenario_file.fingerprint(false);
    let mut effective = scenario_file.effective(false);
    let name = effective.name.clone();
    let ScenarioKind::Field(ref mut field) = effective.kind else {
        eprintln!("fig10_goodput_utilization.json is not a field scenario");
        std::process::exit(2);
    };
    field.slots = env_usize("CTJAM_FIELD_SLOTS", field.slots);
    field.train_slots = env_usize("CTJAM_TRAIN_SLOTS", field.train_slots);

    let slots = field.slots;
    let train_slots = field.train_slots;
    let base = FieldConfig::default();
    let mut manifest = start_manifest(
        &name,
        field.seed,
        &format!("slots={slots}, train_slots={train_slots}, {base:?}"),
    );
    // Fault-plan provenance (chaos-harness replay recipe; see
    // tests/chaos.rs): this figure runs fault-free.
    manifest
        .push_extra("fault_rates", ctjam_fault::FaultRates::zero().describe())
        .push_extra("fault_seed", "none")
        .push_extra("scenario_fingerprint", format!("{fingerprint:016x}"));

    let rows = run_field(field);

    table_header(&[
        "Tx slot (s)",
        "goodput (pkts/slot)",
        "utilization",
        "overhead (s/slot)",
        "no-jammer pkts/slot",
    ]);
    for row in &rows {
        table_row(&[
            format!("{:.0}", row.duration_s),
            format!("{:.0}", row.report.packets_per_slot()),
            pct(row.report.goodput.utilization()),
            format!("{:.3}", row.report.goodput.overhead_per_slot_s()),
            format!("{:.0}", row.reference.packets_per_slot()),
        ]);
    }

    println!("\npaper anchors: 148 pkts/slot @ 1 s -> 806 @ 5 s; utilization 91.75% -> 98.58%; ~0.07 s negotiation/slot");
    finish_manifest(&manifest);
}
