//! Fig. 10: goodput and slot-utilization vs Tx time-slot duration.
//!
//! Runs the field experiment (hub + 3 peripherals, DQN defense active,
//! jammer present) at slot durations 1–5 s and prints packets/slot and
//! the utilization rate, plus the no-jammer reference. The paper reports
//! goodput growing 148 → 806 pkts/slot and utilization 91.75% → 98.58%
//! over that range, with ~0.07 s of FH negotiation per slot.

use ctjam_bench::{
    banner, env_usize, finish_manifest, pct, start_manifest, table_header, table_row,
};
use ctjam_core::defender::{DqnDefender, NoDefense};
use ctjam_core::field::{FieldConfig, FieldExperiment};
use ctjam_core::runner::RunBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Fig. 10 (goodput & utilization vs timeslot duration)",
        "goodput 148->806 pkts/slot and utilization 91.75%->98.58% as the Tx slot grows 1->5 s; ~0.07 s negotiation per slot",
    );
    let slots = env_usize("CTJAM_FIELD_SLOTS", 120);
    let train_slots = env_usize("CTJAM_TRAIN_SLOTS", 12_000);
    let mut rng = StdRng::seed_from_u64(10);

    // Train the defense once on the slot-level game, then deploy frozen
    // (the paper trains offline and loads the network onto the hub).
    let base = FieldConfig::default();
    let mut manifest = start_manifest(
        "fig10_goodput_utilization",
        10,
        &format!("slots={slots}, train_slots={train_slots}, {base:?}"),
    );
    // Fault-plan provenance (chaos-harness replay recipe; see
    // tests/chaos.rs): this figure runs fault-free.
    manifest
        .push_extra("fault_rates", ctjam_fault::FaultRates::zero().describe())
        .push_extra("fault_seed", "none");
    let mut defender = DqnDefender::paper_default(&base.env, &mut rng);
    RunBuilder::new(&base.env).train(&mut defender, train_slots, &mut rng);
    defender.set_training(false);

    table_header(&[
        "Tx slot (s)",
        "goodput (pkts/slot)",
        "utilization",
        "overhead (s/slot)",
        "no-jammer pkts/slot",
    ]);
    for duration in [1.0f64, 2.0, 3.0, 4.0, 5.0] {
        let config = FieldConfig {
            tx_slot_s: duration,
            jx_slot_s: duration,
            ..base.clone()
        };
        let mut experiment = FieldExperiment::new(config.clone(), defender.clone(), &mut rng);
        let report = experiment.run(slots, &mut rng);

        let reference_config = FieldConfig {
            jammer_enabled: false,
            ..config
        };
        let reference = NoDefense::new(&reference_config.env, &mut rng);
        let mut reference_exp = FieldExperiment::new(reference_config, reference, &mut rng);
        let reference_report = reference_exp.run(slots, &mut rng);

        table_row(&[
            format!("{duration:.0}"),
            format!("{:.0}", report.packets_per_slot()),
            pct(report.goodput.utilization()),
            format!("{:.3}", report.goodput.overhead_per_slot_s()),
            format!("{:.0}", reference_report.packets_per_slot()),
        ]);
    }
    println!("\npaper anchors: 148 pkts/slot @ 1 s -> 806 @ 5 s; utilization 91.75% -> 98.58%; ~0.07 s negotiation/slot");
    finish_manifest(&manifest);
}
