//! Perf-manifest runner: measures the hot paths and writes the
//! machine-readable `BENCH_slotloop.json` / `BENCH_dqn.json` perf
//! manifests at the repo root (or `$CTJAM_BENCH_DIR`).
//!
//! The criterion benches under `benches/` are for interactive digging;
//! this binary is the *trajectory* recorder: a fixed set of named
//! measurements, each the best-of-`reps` mean over a sized inner loop,
//! embedded in a [`ctjam_telemetry::RunManifest`] so every number
//! carries its provenance (git describe, base seed, config hash,
//! target CPU features, timestamp). CI runs it in quick mode
//! (`CTJAM_BENCH_QUICK=1`) and asserts the manifests are well-formed;
//! EXPERIMENTS.md ("Performance trajectory") documents the schema.
//!
//! Measurements:
//!
//! * slot loop — ns/slot for the RandomFh eval loop, the DQN eval loop
//!   (the allocation-free scratch path), and the DQN training loop;
//! * PER evaluation — the Fig. 2(b) link sweep uncached vs through
//!   [`ctjam_channel::cache::PerCache`] (bit-exactness is asserted
//!   here too, cheaply, on top of the property tests);
//! * sweep scaling — wall seconds for `RunBuilder::sweep` at 1 thread
//!   vs all available (skipped, with an annotation, when only one
//!   hardware thread is visible — a parallel/serial ratio would then
//!   measure oversubscription, not scaling; episodes/sec vs thread
//!   count lives in `BENCH_fleet.json` from the `fleet_bench` bin);
//! * DQN kernels — `train_step` at batch 32 vs the per-sample
//!   reference, and single-observation inference plain vs scratch;
//! * kernel backends — `train_step` and the batch-32 greedy forward
//!   through the scalar oracle vs the AVX2+FMA SIMD kernels (skipped
//!   with an annotation when the CPU lacks AVX2+FMA or
//!   `CTJAM_FORCE_SCALAR` is set), plus the int8-quantized serving
//!   forward with its measured greedy-action agreement.
//!
//! The binary warns — and records `dirty_tree: true` — when the work
//! tree is dirty, because a manifest whose `git` field ends in
//! `-dirty` cannot be tied to a commit; `ci.sh` refuses committed
//! manifests with that marker.

use ctjam_bench::env_usize;
use ctjam_channel::cache::PerCache;
use ctjam_channel::link::{JammerKind, JammingScenario};
use ctjam_core::defender::{Defender, DqnDefender, RandomFh};
use ctjam_core::env::{CompetitionEnv, Decision, EnvParams, Outcome, SlotResult};
use ctjam_core::runner::{RunBuilder, SweepBudget};
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::encode::{ObservationEncoder, SlotOutcome, SlotRecord};
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_dqn::quant::{greedy_agreement, synthetic_observations, QuantizedPolicy};
use ctjam_nn::batch::Batch;
use ctjam_nn::kernel::{self, Backend};
use ctjam_nn::quant::QuantScratch;
use ctjam_telemetry::{JsonValue, RunManifest};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::Instant;

/// Base seed for every RNG in this binary (recorded in both manifests).
const SEED: u64 = 2026;

/// Schema tag checked by the `ci.sh` smoke stage.
const SCHEMA: &str = "ctjam-bench/v1";

/// Best-of-`reps` mean nanoseconds per call of `f` over `iters` calls.
fn ns_per_iter<F: FnMut()>(reps: usize, iters: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        best = best.min(ns);
    }
    best
}

/// Compile-time SIMD features — evidence that `target-cpu=native` (set
/// workspace-wide in `.cargo/config.toml`) took effect for this build.
fn target_cpu_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(target_feature = "sse4.2") {
        feats.push("sse4.2");
    }
    if cfg!(target_feature = "avx") {
        feats.push("avx");
    }
    if cfg!(target_feature = "avx2") {
        feats.push("avx2");
    }
    if cfg!(target_feature = "fma") {
        feats.push("fma");
    }
    if cfg!(target_feature = "avx512f") {
        feats.push("avx512f");
    }
    if cfg!(target_feature = "neon") {
        feats.push("neon");
    }
    if feats.is_empty() {
        "baseline".to_string()
    } else {
        feats.join("+")
    }
}

/// The *pre-optimization* DQN evaluation decide path, kept as the
/// measured "before" of the allocation audit: a fresh observation `Vec`
/// per slot (`encode()`) and the allocating per-row forward
/// (`DqnAgent::act`), with the observation parked in `pending` and
/// dropped at feedback — exactly the allocation profile `DqnDefender`
/// had before it switched to `encode_into` + `act_scratch`. Policy,
/// decisions, and RNG draws are identical to the optimized defender;
/// only the memory behavior differs.
struct AllocatingDqnEval {
    agent: DqnAgent,
    encoder: ObservationEncoder,
    pending: Option<(Vec<f64>, usize)>,
    current_channel: usize,
    pending_delta: usize,
}

impl AllocatingDqnEval {
    fn new<R: Rng + ?Sized>(params: &EnvParams, rng: &mut R) -> Self {
        let config = DqnConfig {
            num_channels: params.num_channels(),
            num_power_levels: params.num_powers(),
            ..DqnConfig::default()
        };
        let encoder = ObservationEncoder::new(
            config.history_len,
            config.num_channels,
            config.num_power_levels,
        );
        let agent = DqnAgent::new(config, rng);
        let current_channel = rng.gen_range(0..params.num_channels());
        AllocatingDqnEval {
            agent,
            encoder,
            pending: None,
            current_channel,
            pending_delta: 0,
        }
    }
}

impl Defender for AllocatingDqnEval {
    fn name(&self) -> &str {
        "DQN eval (allocating reference)"
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> Decision {
        let observation = self.encoder.encode();
        let action = self.agent.act(&observation, rng);
        self.pending = Some((observation, action));
        let (delta, power_level) = self.agent.config().decode_action(action);
        self.pending_delta = delta;
        let channel = (self.current_channel + delta) % self.agent.config().num_channels;
        Decision {
            channel,
            power_level,
        }
    }

    fn feedback(&mut self, result: &SlotResult, _rng: &mut dyn RngCore) {
        let outcome = match result.outcome {
            Outcome::Clean => SlotOutcome::Success,
            Outcome::JammedSurvived => SlotOutcome::SuccessUnderJamming,
            Outcome::Jammed => SlotOutcome::Failure,
        };
        self.encoder.push(SlotRecord {
            outcome,
            channel: self.pending_delta,
            power_level: result.decision.power_level,
        });
        self.current_channel = result.decision.channel;
        self.pending.take();
    }
}

fn add_provenance(manifest: &mut RunManifest, threads: usize) {
    manifest.push_extra("schema", SCHEMA);
    manifest.push_extra("target_arch", std::env::consts::ARCH);
    manifest.push_extra("target_cpu_features", target_cpu_features());
    manifest.push_extra("threads_available", threads as f64);
    manifest.push_extra(
        "quick_mode",
        JsonValue::from(std::env::var("CTJAM_BENCH_QUICK").is_ok()),
    );
    // A manifest measured on uncommitted code cannot be tied to a
    // commit; mark it so ci.sh can refuse committed `-dirty` manifests.
    let dirty = manifest
        .git
        .as_deref()
        .is_some_and(|g| g.ends_with("-dirty"));
    if dirty {
        eprintln!(
            "perf_report: WARNING: work tree is dirty; {} will carry git={:?} and \
             dirty_tree=true — re-run from a clean tree before committing it",
            manifest.name,
            manifest.git.as_deref().unwrap_or("?"),
        );
    }
    manifest.push_extra("dirty_tree", JsonValue::from(dirty));
}

fn write_manifest(manifest: &RunManifest, dir: &std::path::Path) {
    let path = dir.join(format!("{}.json", manifest.name));
    std::fs::write(&path, manifest.to_json().to_string_pretty()).expect("write BENCH manifest");
    println!("(wrote {})", path.display());
}

fn main() {
    let quick = std::env::var("CTJAM_BENCH_QUICK").is_ok();
    let out_dir = std::env::var("CTJAM_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let out_dir = std::path::Path::new(&out_dir);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Sized for a sub-minute full run; quick mode (CI smoke) is seconds.
    let reps = env_usize("CTJAM_BENCH_REPS", if quick { 2 } else { 5 });
    let slots = env_usize("CTJAM_BENCH_SLOTS", if quick { 2_000 } else { 20_000 });
    let dqn_slots = env_usize("CTJAM_BENCH_DQN_SLOTS", if quick { 500 } else { 4_000 });
    let sweep_points = env_usize("CTJAM_BENCH_SWEEP_POINTS", if quick { 2 } else { 8 });
    let sweep_slots = env_usize("CTJAM_BENCH_SWEEP_SLOTS", if quick { 150 } else { 600 });
    let train_iters = env_usize("CTJAM_BENCH_TRAIN_ITERS", if quick { 50 } else { 400 });

    let params = EnvParams::default();

    // ---- BENCH_slotloop: the per-slot simulation path -----------------
    let mut slotloop = RunManifest::new("BENCH_slotloop", SEED, &format!("{params:?}"));
    add_provenance(&mut slotloop, threads);
    slotloop.push_extra("slots_per_measurement", slots as f64);

    // RandomFh: the cheapest defender — upper bound on env+loop speed.
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut env = CompetitionEnv::new(params.clone(), &mut rng);
    let mut random_fh = RandomFh::new(&params, &mut rng);
    let ns = ns_per_iter(reps, 1, || {
        std::hint::black_box(RunBuilder::new(&params).run_in(
            &mut env,
            &mut random_fh,
            slots,
            &mut rng,
        ));
    }) / slots as f64;
    println!("slot loop, RandomFh eval      : {ns:10.1} ns/slot");
    slotloop.push_extra("randomfh_eval_ns_per_slot", ns);

    // DQN paper shape, evaluation mode: the scratch-based inference path.
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let mut env = CompetitionEnv::new(params.clone(), &mut rng);
    let mut dqn = DqnDefender::paper_default(&params, &mut rng);
    dqn.set_training(false);
    let ns = ns_per_iter(reps, 1, || {
        std::hint::black_box(
            RunBuilder::new(&params).run_in(&mut env, &mut dqn, dqn_slots, &mut rng),
        );
    }) / dqn_slots as f64;
    println!("slot loop, DQN eval           : {ns:10.1} ns/slot");
    slotloop.push_extra("dqn_eval_ns_per_slot", ns);
    let dqn_eval_ns = ns;

    // The same loop through the pre-optimization allocating decide path
    // — the measured "before" of the allocation audit.
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let mut env = CompetitionEnv::new(params.clone(), &mut rng);
    let mut reference = AllocatingDqnEval::new(&params, &mut rng);
    let ns = ns_per_iter(reps, 1, || {
        std::hint::black_box(RunBuilder::new(&params).run_in(
            &mut env,
            &mut reference,
            dqn_slots,
            &mut rng,
        ));
    }) / dqn_slots as f64;
    println!("slot loop, DQN eval (pre-opt) : {ns:10.1} ns/slot");
    println!("eval slot-loop speedup        : {:10.2}x", ns / dqn_eval_ns);
    slotloop.push_extra("dqn_eval_allocating_reference_ns_per_slot", ns);
    slotloop.push_extra("dqn_eval_speedup_x", ns / dqn_eval_ns);

    // DQN training mode: decide + observe + scheduled train_step.
    let mut rng = StdRng::seed_from_u64(SEED + 2);
    let mut env = CompetitionEnv::new(params.clone(), &mut rng);
    let mut dqn = DqnDefender::paper_default(&params, &mut rng);
    dqn.set_training(true);
    let ns = ns_per_iter(reps, 1, || {
        std::hint::black_box(
            RunBuilder::new(&params).run_in(&mut env, &mut dqn, dqn_slots, &mut rng),
        );
    }) / dqn_slots as f64;
    println!("slot loop, DQN train          : {ns:10.1} ns/slot");
    slotloop.push_extra("dqn_train_ns_per_slot", ns);

    // PER evaluation: the Fig. 2(b) link sweep, uncached vs cached.
    let scenario = JammingScenario::default();
    let distances: Vec<f64> = (1..=15).map(f64::from).collect();
    let per_iters = env_usize("CTJAM_BENCH_PER_ITERS", if quick { 200 } else { 2_000 });
    let uncached = ns_per_iter(reps, per_iters, || {
        std::hint::black_box(scenario.sweep(JammerKind::EmuBee, &distances));
    }) / distances.len() as f64;
    let mut cache = PerCache::new();
    let mut reports = Vec::new();
    let cached = ns_per_iter(reps, per_iters, || {
        scenario.sweep_cached_into(JammerKind::EmuBee, &distances, &mut cache, &mut reports);
        std::hint::black_box(&reports);
    }) / distances.len() as f64;
    // Cheap bit-exactness spot check on top of the property tests.
    for (plain, hit) in scenario
        .sweep(JammerKind::EmuBee, &distances)
        .iter()
        .zip(&reports)
    {
        assert_eq!(
            plain.per.to_bits(),
            hit.per.to_bits(),
            "cache not bit-exact"
        );
    }
    println!("PER evaluation, uncached      : {uncached:10.1} ns/point");
    println!("PER evaluation, PerCache      : {cached:10.1} ns/point");
    println!(
        "PER cache speedup             : {:10.2}x",
        uncached / cached
    );
    slotloop.push_extra("per_uncached_ns_per_point", uncached);
    slotloop.push_extra("per_cached_ns_per_point", cached);
    slotloop.push_extra("per_cache_speedup_x", uncached / cached);

    // Sweep scaling: 1 thread vs all available.
    let points = vec![params.clone(); sweep_points];
    let budget = SweepBudget {
        train_slots: sweep_slots,
        eval_slots: sweep_slots,
    };
    let time_sweep = |threads: usize| {
        let start = Instant::now();
        std::hint::black_box(
            RunBuilder::new(&points[0])
                .budget(budget)
                .seed(SEED)
                .threads(threads)
                .sweep(&points, |_, _| {}),
        );
        start.elapsed().as_secs_f64()
    };
    let one = time_sweep(1);
    println!("sweep {sweep_points} pts, 1 thread        : {one:10.3} s");
    slotloop.push_extra("sweep_points", sweep_points as f64);
    slotloop.push_extra("sweep_1_thread_s", one);
    if threads >= 2 {
        let many = time_sweep(threads);
        println!("sweep {sweep_points} pts, {threads} thread(s)    : {many:10.3} s");
        println!("sweep scaling                 : {:10.2}x", one / many);
        slotloop.push_extra("sweep_all_threads_s", many);
        slotloop.push_extra("sweep_scaling_x", one / many);
    } else {
        // With one visible hardware thread a parallel/serial ratio would
        // measure oversubscription noise, not scaling — don't publish a
        // ~1.0x "result" that looks like a measurement.
        println!("sweep scaling                 : skipped (1 hardware thread visible)");
        slotloop.push_extra(
            "sweep_scaling_note",
            "skipped: 1 hardware thread visible; a parallel/serial ratio would \
             measure oversubscription, not scaling (see BENCH_fleet.json)",
        );
    }

    write_manifest(&slotloop, out_dir);

    // ---- BENCH_dqn: the training/inference kernels --------------------
    let config = DqnConfig::default();
    let mut dqn_manifest = RunManifest::new("BENCH_dqn", SEED, &format!("{config:?}"));
    add_provenance(&mut dqn_manifest, threads);

    let mut rng = StdRng::seed_from_u64(SEED + 3);
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    let obs = vec![0.3; config.input_size()];
    for i in 0..512 {
        let mut state = obs.clone();
        state[0] = (i % 7) as f64 / 7.0;
        agent.observe(
            state.clone(),
            i % config.num_actions(),
            -10.0,
            state,
            &mut rng,
        );
    }

    let infer = ns_per_iter(reps, train_iters * 4, || {
        std::hint::black_box(agent.q_values(&obs));
    });
    let infer_scratch = ns_per_iter(reps, train_iters * 4, || {
        std::hint::black_box(agent.q_values_scratch(&obs));
    });
    println!("DQN inference, allocating     : {infer:10.1} ns");
    println!("DQN inference, scratch        : {infer_scratch:10.1} ns");
    dqn_manifest.push_extra("inference_ns", infer);
    dqn_manifest.push_extra("inference_scratch_ns", infer_scratch);

    let train = ns_per_iter(reps, train_iters, || {
        std::hint::black_box(agent.train_step(&mut rng));
    }) / 1_000.0;
    // The pre-batching reference from PR 2 (see benches/dqn.rs): sample,
    // then per-sample forwards + a per-sample gradient.
    let gamma = agent.config().gamma;
    let reference = ns_per_iter(reps, train_iters.div_ceil(4), || {
        let batch = agent.replay().sample(32, &mut rng);
        let mut targets = Vec::with_capacity(batch.len());
        for e in &batch {
            let mut q = agent.network().forward(&e.state);
            let next_q = agent.target_network().forward(&e.next_state);
            let best = next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            q[e.action] = e.reward + gamma * best;
            targets.push(q);
        }
        let pairs: Vec<(&[f64], &[f64])> = batch
            .iter()
            .zip(&targets)
            .map(|(e, t)| (e.state.as_slice(), t.as_slice()))
            .collect();
        std::hint::black_box(agent.network().loss_and_gradient(&pairs));
    }) / 1_000.0;
    println!("DQN train_step batch32        : {train:10.1} us");
    println!("DQN train_step per-sample ref : {reference:10.1} us");
    println!(
        "batched kernel speedup        : {:10.2}x",
        reference / train
    );
    dqn_manifest.push_extra("train_step_batch32_us", train);
    dqn_manifest.push_extra("train_step_per_sample_reference_us", reference);
    dqn_manifest.push_extra("train_step_speedup_x", reference / train);

    // ---- kernel backends: scalar oracle vs SIMD vs int8 ---------------
    // `train` above was measured on the default scalar backend; here the
    // same agent times the batch-32 serving forward on each backend, and
    // `train_step` again with the SIMD kernels switched in.
    let policy = GreedyPolicy::from_agent(&agent);
    let mut rng = StdRng::seed_from_u64(SEED + 4);
    let mut obs_batch = Batch::with_cols(config.input_size());
    let mut row = vec![0.0; config.input_size()];
    for _ in 0..32 {
        row.iter_mut().for_each(|v| *v = rng.gen_range(-1.0..1.0));
        obs_batch.push_row(&row);
    }
    let mut scratch = policy.scratch();
    let mut actions = Vec::new();
    let forward_scalar = ns_per_iter(reps, train_iters, || {
        policy.act_greedy_batch(&obs_batch, &mut scratch, &mut actions);
        std::hint::black_box(&actions);
    });
    println!("greedy forward batch32, scalar: {forward_scalar:10.1} ns");
    dqn_manifest.push_extra("forward_batch32_scalar_ns", forward_scalar);

    if kernel::simd_supported() && !kernel::force_scalar() {
        kernel::set_backend(Backend::Simd);
        let train_simd = ns_per_iter(reps, train_iters, || {
            std::hint::black_box(agent.train_step(&mut rng));
        }) / 1_000.0;
        let forward_simd = ns_per_iter(reps, train_iters, || {
            policy.act_greedy_batch(&obs_batch, &mut scratch, &mut actions);
            std::hint::black_box(&actions);
        });
        kernel::set_backend(Backend::Scalar);
        println!("DQN train_step batch32, SIMD  : {train_simd:10.1} us");
        println!(
            "SIMD train speedup            : {:10.2}x",
            train / train_simd
        );
        println!("greedy forward batch32, SIMD  : {forward_simd:10.1} ns");
        println!(
            "SIMD forward speedup          : {:10.2}x",
            forward_scalar / forward_simd
        );
        dqn_manifest.push_extra("train_step_batch32_simd_us", train_simd);
        dqn_manifest.push_extra("simd_train_speedup_x", train / train_simd);
        dqn_manifest.push_extra("forward_batch32_simd_ns", forward_simd);
        dqn_manifest.push_extra("simd_forward_speedup_x", forward_scalar / forward_simd);
        if train / train_simd < 1.5 {
            // With `-C target-cpu=native` (workspace default) the
            // scalar oracle is itself auto-vectorized, so the explicit
            // kernels' headroom over it is modest; rebuilt for generic
            // x86-64 the same kernels measure ~1.9-2x (runtime dispatch
            // keeps them active in portable builds). Say so rather
            // than leave a sub-1.5x number looking like a regression.
            dqn_manifest.push_extra(
                "simd_note",
                "scalar baseline is auto-vectorized (target-cpu=native); \
                 vs a generic x86-64 build the SIMD kernels measure ~1.9x train \
                 / ~2x forward — see EXPERIMENTS.md 'Kernel backends'",
            );
        }
    } else {
        // Don't publish a 1.0x "speedup" that looks like a measurement.
        let why = if kernel::force_scalar() {
            "CTJAM_FORCE_SCALAR is set"
        } else {
            "CPU lacks AVX2+FMA"
        };
        println!("SIMD kernels                  : skipped ({why})");
        dqn_manifest.push_extra(
            "simd_note",
            format!("skipped: {why}; SIMD timings not recorded"),
        );
    }

    // int8 serving forward: quantize against a synthetic calibration
    // set and record timing plus the measured greedy-action agreement
    // (the serve-side gate requires >= 0.995 on its own hold-out set).
    let calibration = synthetic_observations(config.input_size(), SEED ^ 0xCA11B, 256);
    let holdout = synthetic_observations(config.input_size(), SEED ^ 0x401D0, 512);
    let quantized = QuantizedPolicy::quantize(&policy, &calibration);
    let agreement = greedy_agreement(&policy, &quantized, &holdout);
    let mut quant_scratch = QuantScratch::default();
    let forward_int8 = ns_per_iter(reps, train_iters, || {
        quantized.act_greedy_batch(&obs_batch, &mut quant_scratch, &mut actions);
        std::hint::black_box(&actions);
    });
    println!("greedy forward batch32, int8  : {forward_int8:10.1} ns");
    println!("int8 greedy agreement         : {agreement:10.4}");
    println!(
        "int8 param bytes              : {:10} (f64: {})",
        quantized.param_bytes(),
        8 * policy.network().param_count()
    );
    dqn_manifest.push_extra("forward_batch32_int8_ns", forward_int8);
    dqn_manifest.push_extra("int8_forward_speedup_x", forward_scalar / forward_int8);
    dqn_manifest.push_extra("int8_greedy_agreement", agreement);
    dqn_manifest.push_extra("int8_param_bytes", quantized.param_bytes() as f64);
    dqn_manifest.push_extra(
        "int8_agreement_note",
        "measured on this bench's constant-reward agent, whose near-tied Q-values \
         flip argmax under any lossy encoding; the serve-side gate re-measures \
         agreement per deployed policy and falls back to f64 below 0.995",
    );

    write_manifest(&dqn_manifest, out_dir);
}
