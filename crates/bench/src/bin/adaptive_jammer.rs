//! Extension study: the defense against a DeepJam-class adaptive jammer.
//!
//! The paper's sweep jammer (§II.C) searches blindly; its related work
//! (reference \[14\], DeepJam) predicts traffic patterns instead. This harness pits
//! every defense against three predictor strengths and reports:
//!
//! * each defense's success rate of transmission, and
//! * the jammer's prediction hit rate —
//!
//! exposing a structural point the paper leaves implicit: a DQN policy is
//! (near-)deterministic, so a traffic predictor can learn it, while
//! uniformly randomized hopping pins any predictor at chance (25 % with
//! 4 blocks) at the cost of constant hop overhead.
//!
//! Knobs: `CTJAM_TRAIN_SLOTS` (default 12 000), `CTJAM_EVAL_SLOTS`
//! (default 8 000).

use ctjam_bench::{
    banner, env_usize, finish_manifest, pct, start_manifest, table_header, table_row,
};
use ctjam_core::adaptive::{AdaptiveEnv, PredictorKind};
use ctjam_core::defender::{Defender, DqnDefender, PassiveFh, RandomFh};
use ctjam_core::env::EnvParams;
use ctjam_core::runner::RunBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Adaptive-jammer extension (DeepJam-class adversary)",
        "a predictable hopping policy collapses against traffic prediction; randomized hopping pins the predictor at chance",
    );
    let train_slots = env_usize("CTJAM_TRAIN_SLOTS", 12_000);
    let eval_slots = env_usize("CTJAM_EVAL_SLOTS", 8_000);
    let params = EnvParams::default();

    // Train the DQN against the paper's sweep jammer (the deployment
    // scenario: the defender does not know which adversary shows up).
    let manifest = start_manifest(
        "adaptive_jammer",
        77,
        &format!("train_slots={train_slots}, eval_slots={eval_slots}, {params:?}"),
    );
    let mut rng = StdRng::seed_from_u64(77);
    let mut dqn = DqnDefender::paper_default(&params, &mut rng);
    RunBuilder::new(&params).train(&mut dqn, train_slots, &mut rng);
    dqn.set_training(false);

    println!();
    table_header(&["defense", "predictor", "defense ST", "jammer hit rate"]);
    for kind in [
        PredictorKind::LastBlock,
        PredictorKind::Markov,
        PredictorKind::Rnn,
    ] {
        let mut softmax_dqn = dqn.clone();
        softmax_dqn.set_temperature(Some(8.0));
        let defenses: Vec<(&str, Box<dyn Defender>)> = vec![
            ("PSV FH", Box::new(PassiveFh::new(&params, &mut rng))),
            ("Rand FH", Box::new(RandomFh::new(&params, &mut rng))),
            ("RL FH (DQN)", Box::new(dqn.clone())),
            ("RL FH (softmax t=8)", Box::new(softmax_dqn)),
        ];
        for (name, mut defender) in defenses {
            let mut r = StdRng::seed_from_u64(1000 + kind as u64);
            let mut env = AdaptiveEnv::new(params.clone(), kind, &mut r);
            let report =
                RunBuilder::new(&params).run_in(&mut env, defender.as_mut(), eval_slots, &mut r);
            table_row(&[
                name.to_string(),
                format!("{kind:?}"),
                pct(report.metrics.success_rate()),
                pct(env.jammer().hit_rate()),
            ]);
        }
    }
    // Reference: the softmax policy against the paper's sweep jammer, to
    // price the randomization.
    let mut r = StdRng::seed_from_u64(2000);
    let mut softmax_dqn = dqn.clone();
    softmax_dqn.set_temperature(Some(8.0));
    let sweep_greedy = RunBuilder::new(&params)
        .evaluate(&mut dqn.clone(), eval_slots, &mut r)
        .metrics
        .success_rate();
    let sweep_softmax = RunBuilder::new(&params)
        .evaluate(&mut softmax_dqn, eval_slots, &mut r)
        .metrics
        .success_rate();
    println!();
    println!(
        "cost of randomization vs the sweep jammer: greedy {} -> softmax {}",
        pct(sweep_greedy),
        pct(sweep_softmax)
    );
    println!("reading guide: hit rate ~25% = the predictor is at chance (4 blocks);");
    println!("hit rate >> 25% = the defense's hopping pattern has been learned.");
    finish_manifest(&manifest);
}
