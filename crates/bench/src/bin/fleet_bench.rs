//! Fleet-engine throughput recorder: runs one shared-greedy campaign at
//! several thread counts, asserts the results are bit-exact across all
//! of them, and writes the `BENCH_fleet.json` manifest (schema
//! ctjam-bench/v1) with episodes/sec per thread count at the repo root
//! (or `$CTJAM_BENCH_DIR`).
//!
//! The campaign is the fleet's headline shape: a grid of `EnvParams` ×
//! replicate seeds evaluated by one frozen DQN policy shared read-only
//! across every shard. Quick mode (`CTJAM_BENCH_QUICK=1`, the CI smoke
//! stage) shrinks the grid to seconds; the full run sizes it for stable
//! episodes/sec numbers. Knobs: `CTJAM_FLEET_EPISODES` (grid size),
//! `CTJAM_FLEET_SLOTS` (slots per episode), `CTJAM_FLEET_THREADS`
//! (max thread count measured).
//!
//! `threads_available` is recorded honestly: on a single-core container
//! the multi-thread timings measure oversubscription, and the manifest
//! says so in `fleet_scaling_note` instead of presenting the ratio as a
//! scaling result. The bit-exactness assertions hold regardless — that
//! is the engine's contract, not a function of core count.

use ctjam_bench::env_usize;
use ctjam_core::env::EnvParams;
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_fleet::{CampaignPolicy, CampaignSpec, Fleet};
use ctjam_telemetry::{JsonValue, RunManifest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Base seed for every RNG in this binary (recorded in the manifest).
const SEED: u64 = 2026;

/// Schema tag checked by the `ci.sh` fleet-smoke stage.
const SCHEMA: &str = "ctjam-bench/v1";

/// Compile-time SIMD features — evidence that `target-cpu=native` took
/// effect for this build (mirrors `perf_report`).
fn target_cpu_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(target_feature = "sse4.2") {
        feats.push("sse4.2");
    }
    if cfg!(target_feature = "avx") {
        feats.push("avx");
    }
    if cfg!(target_feature = "avx2") {
        feats.push("avx2");
    }
    if cfg!(target_feature = "fma") {
        feats.push("fma");
    }
    if cfg!(target_feature = "avx512f") {
        feats.push("avx512f");
    }
    if cfg!(target_feature = "neon") {
        feats.push("neon");
    }
    if feats.is_empty() {
        "baseline".to_string()
    } else {
        feats.join("+")
    }
}

fn add_provenance(manifest: &mut RunManifest, threads: usize) {
    manifest.push_extra("schema", SCHEMA);
    manifest.push_extra("target_arch", std::env::consts::ARCH);
    manifest.push_extra("target_cpu_features", target_cpu_features());
    manifest.push_extra("threads_available", threads as f64);
    manifest.push_extra(
        "quick_mode",
        JsonValue::from(std::env::var("CTJAM_BENCH_QUICK").is_ok()),
    );
}

fn main() {
    let quick = std::env::var("CTJAM_BENCH_QUICK").is_ok();
    let out_dir = std::env::var("CTJAM_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let out_dir = std::path::Path::new(&out_dir);
    let threads_available = ctjam_core::pool::available_threads();

    let episodes = env_usize("CTJAM_FLEET_EPISODES", if quick { 60 } else { 10_000 });
    let slots = env_usize("CTJAM_FLEET_SLOTS", if quick { 60 } else { 100 });
    let max_threads = env_usize("CTJAM_FLEET_THREADS", 4).max(2);

    // The shared policy: one frozen paper-shape DQN read by every shard.
    let params = EnvParams::default();
    let mut rng = StdRng::seed_from_u64(SEED);
    let config = DqnConfig {
        num_channels: params.num_channels(),
        num_power_levels: params.num_powers(),
        ..DqnConfig::default()
    };
    let policy = Arc::new(GreedyPolicy::from_agent(&DqnAgent::new(config, &mut rng)));

    // Grid: a few jamming-cost points × enough replicate seeds to reach
    // the requested episode count.
    let points: Vec<EnvParams> = [50.0, 100.0, 200.0, 400.0]
        .iter()
        .map(|&l_j| EnvParams {
            l_j,
            ..EnvParams::default()
        })
        .collect();
    let replicates = episodes.div_ceil(points.len()).max(1);
    let seeds: Vec<u64> = (0..replicates as u64).collect();
    let spec = CampaignSpec {
        name: "fleet_bench".into(),
        points,
        seeds,
        policy: CampaignPolicy::SharedGreedy(policy),
        slots,
        kernel: false,
        base_seed: SEED,
        faults: None,
    };
    let total_episodes = spec.episodes();

    let mut manifest = RunManifest::new("BENCH_fleet", SEED, &format!("{spec:?}"));
    add_provenance(&mut manifest, threads_available);
    manifest.push_extra("episodes", total_episodes as f64);
    manifest.push_extra("slots_per_episode", slots as f64);

    let mut thread_counts = vec![1usize, 2];
    let mut t = 4;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }

    let mut reference: Option<(Vec<u64>, String)> = None;
    let mut wall_1 = None;
    for &threads in &thread_counts {
        let start = Instant::now();
        let result = Fleet::new().threads(threads).run(&spec);
        let wall = start.elapsed().as_secs_f64();
        let eps = total_episodes as f64 / wall;
        assert_eq!(result.outcomes.len(), total_episodes);

        // The determinism contract, asserted where the numbers are made:
        // goodput bits and merged-telemetry JSON identical at every
        // thread count.
        let goodput_bits: Vec<u64> = result
            .goodput_vector()
            .iter()
            .map(|g| g.to_bits())
            .collect();
        let telemetry = result.telemetry.to_json().to_string_compact();
        match &reference {
            None => reference = Some((goodput_bits, telemetry)),
            Some((bits, json)) => {
                assert_eq!(
                    bits, &goodput_bits,
                    "goodput vector changed between thread counts"
                );
                assert_eq!(json, &telemetry, "telemetry changed between thread counts");
            }
        }

        println!(
            "fleet {total_episodes} eps × {slots} slots, {threads} thread(s): \
             {wall:8.3} s  ({eps:10.1} eps/s, {} shards)",
            result.shards
        );
        manifest.push_extra(&format!("fleet_t{threads}_wall_s"), wall);
        manifest.push_extra(&format!("fleet_t{threads}_episodes_per_s"), eps);
        match wall_1 {
            None => wall_1 = Some(wall),
            Some(w1) => {
                manifest.push_extra(&format!("fleet_t{threads}_speedup_x"), w1 / wall);
            }
        }
    }

    if threads_available < 2 {
        println!("note: 1 hardware thread visible — multi-thread timings measure oversubscription");
        manifest.push_extra(
            "fleet_scaling_note",
            "1 hardware thread visible; multi-thread timings measure oversubscription, \
             not scaling (bit-exactness assertions still hold)",
        );
    }

    let path = out_dir.join(format!("{}.json", manifest.name));
    std::fs::write(&path, manifest.to_json().to_string_pretty()).expect("write BENCH manifest");
    println!("(wrote {})", path.display());
}
