//! Fig. 2(b): jamming effect of different signals vs distance.
//!
//! Sweeps the jammer distance 1–15 m for the three signal families and
//! prints PER and throughput of the victim ZigBee network. The paper's
//! ordering — EmuBee > ZigBee > Wi-Fi jamming effect, with PER falling
//! and throughput rising as distance grows — should reproduce.

use ctjam_bench::{
    banner, env_usize, finish_manifest, pct, start_manifest, table_header, table_row,
};
use ctjam_channel::link::{JammerKind, JammingScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Fig. 2(b) (jamming effect of different signals)",
        "PER decreases / throughput increases with jamming distance; effect order EmuBee > ZigBee > WiFi",
    );

    let scenario = JammingScenario::default();
    let draws = env_usize("CTJAM_FADING_DRAWS", 2_000);
    let manifest = start_manifest(
        "fig02_jamming_effect",
        2,
        &format!("draws={draws}, {scenario:?}"),
    );
    let mut rng = StdRng::seed_from_u64(2);
    let clean = scenario.evaluate_clean();
    println!(
        "clean link: PER {} | goodput {:.1} kbps\n",
        pct(clean.per),
        clean.goodput_bps / 1000.0
    );

    table_header(&[
        "distance (m)",
        "PER EmuBee",
        "PER ZigBee",
        "PER WiFi",
        "kbps EmuBee",
        "kbps ZigBee",
        "kbps WiFi",
    ]);
    let mut rows = Vec::new();
    for d in 1..=15 {
        let d = f64::from(d);
        let emubee = scenario.evaluate_faded(JammerKind::EmuBee, d, draws, &mut rng);
        let zigbee = scenario.evaluate_faded(JammerKind::ZigBee, d, draws, &mut rng);
        let wifi = scenario.evaluate_faded(JammerKind::WifiOfdm, d, draws, &mut rng);
        rows.push((d, emubee, zigbee, wifi));
        table_row(&[
            format!("{d:.0}"),
            pct(emubee.per),
            pct(zigbee.per),
            pct(wifi.per),
            format!("{:.1}", emubee.goodput_bps / 1000.0),
            format!("{:.1}", zigbee.goodput_bps / 1000.0),
            format!("{:.1}", wifi.goodput_bps / 1000.0),
        ]);
    }

    // Shape checks the paper's narrative makes.
    let ordering_holds = rows
        .iter()
        .all(|(_, e, z, w)| e.per >= z.per - 0.02 && z.per >= w.per - 0.02);
    let per_monotone = rows.windows(2).all(|w| w[1].1.per <= w[0].1.per + 0.02);
    println!();
    println!("effect ordering EmuBee >= ZigBee >= WiFi at every distance: {ordering_holds}");
    println!("EmuBee PER monotonically decreasing with distance: {per_monotone}");
    println!("paper: 'in most cases, the rank in terms of the jamming effect is: EmuBee > ZigBee > WiFi'");
    finish_manifest(&manifest);
}
