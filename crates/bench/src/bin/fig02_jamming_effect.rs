//! Fig. 2(b): jamming effect of different signals vs distance.
//!
//! Thin wrapper over the checked-in scenario
//! `scenarios/fig02_jamming_effect.json`: the sweep itself (RNG
//! discipline included) lives in `ctjam_scenario::run::run_link_sweep`,
//! so this binary and a `campaign` run of the same file produce
//! bit-identical numbers. `CTJAM_FADING_DRAWS` still overrides the
//! Monte-Carlo draw count, as it always did.

use ctjam_bench::{
    banner, env_usize, finish_manifest, load_scenario, pct, start_manifest, table_header, table_row,
};
use ctjam_scenario::run::run_link_sweep;
use ctjam_scenario::ScenarioKind;

fn main() {
    banner(
        "Fig. 2(b) (jamming effect of different signals)",
        "PER decreases / throughput increases with jamming distance; effect order EmuBee > ZigBee > WiFi",
    );

    let scenario_file = load_scenario("fig02_jamming_effect.json");
    let fingerprint = scenario_file.fingerprint(false);
    let mut effective = scenario_file.effective(false);
    let name = effective.name.clone();
    let ScenarioKind::LinkSweep(ref mut sweep) = effective.kind else {
        eprintln!("fig02_jamming_effect.json is not a link_sweep scenario");
        std::process::exit(2);
    };
    sweep.draws = env_usize("CTJAM_FADING_DRAWS", sweep.draws);
    if sweep.jammers != ["emubee", "zigbee", "wifi-ofdm"] {
        eprintln!("fig02 wrapper expects the three standard jammer families, in order");
        std::process::exit(2);
    }

    let scenario = sweep.scenario();
    let draws = sweep.draws;
    let mut manifest = start_manifest(&name, sweep.seed, &format!("draws={draws}, {scenario:?}"));
    manifest.push_extra("scenario_fingerprint", format!("{fingerprint:016x}"));

    let run = run_link_sweep(sweep);
    println!(
        "clean link: PER {} | goodput {:.1} kbps\n",
        pct(run.clean.per),
        run.clean.goodput_bps / 1000.0
    );

    table_header(&[
        "distance (m)",
        "PER EmuBee",
        "PER ZigBee",
        "PER WiFi",
        "kbps EmuBee",
        "kbps ZigBee",
        "kbps WiFi",
    ]);
    for row in &run.rows {
        let d = row.distance_m;
        let (emubee, zigbee, wifi) = (&row.reports[0], &row.reports[1], &row.reports[2]);
        table_row(&[
            format!("{d:.0}"),
            pct(emubee.per),
            pct(zigbee.per),
            pct(wifi.per),
            format!("{:.1}", emubee.goodput_bps / 1000.0),
            format!("{:.1}", zigbee.goodput_bps / 1000.0),
            format!("{:.1}", wifi.goodput_bps / 1000.0),
        ]);
    }

    // Shape checks the paper's narrative makes.
    let ordering_holds = run.rows.iter().all(|r| {
        r.reports[0].per >= r.reports[1].per - 0.02 && r.reports[1].per >= r.reports[2].per - 0.02
    });
    let per_monotone = run
        .rows
        .windows(2)
        .all(|w| w[1].reports[0].per <= w[0].reports[0].per + 0.02);
    println!();
    println!("effect ordering EmuBee >= ZigBee >= WiFi at every distance: {ordering_holds}");
    println!("EmuBee PER monotonically decreasing with distance: {per_monotone}");
    println!("paper: 'in most cases, the rank in terms of the jamming effect is: EmuBee > ZigBee > WiFi'");
    finish_manifest(&manifest);
}
