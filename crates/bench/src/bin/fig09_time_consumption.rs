//! Fig. 9: time consumption of typical functions and of FH negotiation.
//!
//! (a) samples the four measured functions 100 times each (as the paper
//! did on hardware) and prints their distribution; (b) sweeps the network
//! size 1–10 nodes and prints mean/min/max negotiation time, including
//! the multi-second control-channel outliers.

use ctjam_bench::{banner, env_usize, finish_manifest, start_manifest, table_header, table_row};
use ctjam_net::negotiation::negotiate;
use ctjam_net::timing::TimingModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

fn main() {
    banner(
        "Fig. 9 (time consumption)",
        "DQN ~9 ms, ACK RTT ~0.9 ms, processing ~0.6 ms, polling ~13.1 ms/node; negotiation grows with network size, sometimes to seconds",
    );
    let trials = env_usize("CTJAM_TRIALS", 100);
    let timing = TimingModel::default();
    let manifest = start_manifest(
        "fig09_time_consumption",
        9,
        &format!("trials={trials}, {timing:?}"),
    );
    let mut rng = StdRng::seed_from_u64(9);

    println!("\n### Fig. 9(a): typical functions ({trials} trials each)\n");
    table_header(&[
        "function",
        "mean (ms)",
        "min (ms)",
        "max (ms)",
        "paper (ms)",
    ]);
    let mut sample = |f: &dyn Fn(&mut StdRng) -> f64| -> Vec<f64> {
        (0..trials).map(|_| f(&mut rng) * 1000.0).collect()
    };
    let rows: Vec<(&str, Vec<f64>, f64)> = vec![
        ("DQN inference", sample(&|r| timing.dqn_inference(r)), 9.0),
        ("ACK round trip", sample(&|r| timing.ack_round_trip(r)), 0.9),
        (
            "data processing",
            sample(&|r| timing.data_processing(r)),
            0.6,
        ),
        (
            "polling one node",
            sample(&|r| timing.poll_one_node(r)),
            13.1,
        ),
    ];
    for (name, samples, paper) in &rows {
        let (mean, min, max) = stats(samples);
        table_row(&[
            name.to_string(),
            format!("{mean:.2}"),
            format!("{min:.2}"),
            format!("{max:.2}"),
            format!("{paper:.1}"),
        ]);
    }

    println!("\n### Fig. 9(b): FH negotiation time vs network size\n");
    table_header(&["nodes", "mean (s)", "min (s)", "max (s)", "rounds > 1 s"]);
    let rounds = env_usize("CTJAM_ROUNDS", 400);
    for nodes in 1..=10usize {
        let samples: Vec<f64> = (0..rounds)
            .map(|_| negotiate(&timing, nodes, &mut rng).total_s)
            .collect();
        let (mean, min, max) = stats(&samples);
        let outliers = samples.iter().filter(|&&s| s > 1.0).count();
        table_row(&[
            format!("{nodes}"),
            format!("{mean:.3}"),
            format!("{min:.3}"),
            format!("{max:.3}"),
            format!("{outliers}/{rounds}"),
        ]);
    }
    println!("\npaper: 'the time consumption of negotiation increases with the increase of the number of nodes. In some cases, it can be several seconds'");
    finish_manifest(&manifest);
}
