//! Figs. 6, 7, and 8: the simulation sweeps.
//!
//! The three figures plot five Table-I metrics (ST, AH, AP, SH, SP) over
//! the same four parameter sweeps — `L_J`, sweep cycle, `L_H`, and the
//! lower bound of `L_{p_i}` — under both jammer modes. Each data point
//! trains a fresh DQN on the MDP-kernel environment (the paper's Matlab
//! simulation setting) and evaluates it for `CTJAM_EVAL_SLOTS` slots
//! (paper: 20 000).
//!
//! Budget knobs: `CTJAM_TRAIN_SLOTS` (default 12 000), `CTJAM_EVAL_SLOTS`
//! (default 20 000). The full run is ~70 DQN trainings; expect ~10 min at
//! defaults on one core.

use ctjam_bench::{
    banner, finish_manifest, maybe_write_csv, pct, results_dir, start_manifest, table_header,
    table_row,
};
use ctjam_core::env::EnvParams;
use ctjam_core::jammer::JammerMode;
use ctjam_core::runner::capture_sweep;
use ctjam_core::runner::{RunBuilder, SweepBudget};

fn run_sweep(name: &str, xs: &[String], points: Vec<EnvParams>, budget: SweepBudget) {
    println!("\n### Sweep: {name} (Fig. 6/7/8 columns)\n");
    for mode in [JammerMode::MaxPower, JammerMode::RandomPower] {
        let mode_points: Vec<EnvParams> = points
            .iter()
            .cloned()
            .map(|mut p| {
                p.adversary.mode = mode;
                p
            })
            .collect();
        let slug: String = name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        // Deterministic-replay capture: record every point's seed before
        // running so any failing point can be re-run bit-exactly with
        // `ctjam_core::runner::replay_kernel`.
        let trace = capture_sweep(
            &format!("fig06_08_{slug}_{mode:?}"),
            &mode_points,
            budget,
            0xC7A1,
        );
        match trace.write(&results_dir()) {
            Ok(path) => println!("(replay trace {})", path.display()),
            Err(err) => println!("(replay trace not written: {err})"),
        }
        let metrics = RunBuilder::new(&mode_points[0])
            .kernel(true)
            .budget(budget)
            .seed(0xC7A1)
            .sweep(&mode_points, |_, _| {});
        println!("jammer mode: {mode:?}");
        table_header(&[name, "ST", "AH", "AP", "SH", "SP"]);
        let mut csv_rows = Vec::new();
        for (x, m) in xs.iter().zip(&metrics) {
            table_row(&[
                x.clone(),
                pct(m.success_rate()),
                pct(m.fh_adoption_rate()),
                pct(m.pc_adoption_rate()),
                pct(m.fh_success_rate()),
                pct(m.pc_success_rate()),
            ]);
            csv_rows.push(vec![
                x.clone(),
                format!("{}", m.success_rate()),
                format!("{}", m.fh_adoption_rate()),
                format!("{}", m.pc_adoption_rate()),
                format!("{}", m.fh_success_rate()),
                format!("{}", m.pc_success_rate()),
            ]);
        }
        maybe_write_csv(
            &format!("fig06_08_{slug}_{mode:?}"),
            &[name, "st", "ah", "ap", "sh", "sp"],
            &csv_rows,
        );
        println!();
    }
}

fn main() {
    banner(
        "Figs. 6-8 (simulation sweeps)",
        "ST ~0 below L_J=15, ~78% above L_J=50; ST rises with sweep cycle, falls with L_H, hits 100% once lb(L_p)>=11; AH/AP/SH/SP trends per Figs. 7-8",
    );
    let budget = SweepBudget::from_env();
    let mut manifest = start_manifest(
        "fig06_07_08_sweeps",
        0xC7A1,
        &format!("budget={budget:?}, base={:?}", EnvParams::default()),
    );
    // Fault-plan provenance: figure data is only citable from a
    // fault-free run, and the chaos harness replays any plan from
    // exactly this (rates, seed) pair.
    manifest
        .push_extra("fault_rates", ctjam_fault::FaultRates::zero().describe())
        .push_extra("fault_seed", "none");
    println!(
        "budget: {} training slots, {} evaluation slots per point",
        budget.train_slots, budget.eval_slots
    );

    // Fig 6(a)/7(a,b)/8(a,b): L_J sweep.
    let lj_values = [10.0, 15.0, 20.0, 35.0, 50.0, 65.0, 80.0, 100.0];
    run_sweep(
        "L_J",
        &lj_values.iter().map(|v| format!("{v}")).collect::<Vec<_>>(),
        lj_values
            .iter()
            .map(|&l_j| EnvParams {
                l_j,
                ..EnvParams::default()
            })
            .collect(),
        budget,
    );

    // Fig 6(b)/7(c,d)/8(c,d): sweep-cycle sweep.
    let cycles = [2usize, 4, 6, 8, 12, 16];
    run_sweep(
        "sweep cycle",
        &cycles.iter().map(|v| format!("{v}")).collect::<Vec<_>>(),
        cycles
            .iter()
            .map(|&cycle| {
                let mut p = EnvParams::default();
                p.adversary = p.adversary.with_sweep_cycle(cycle);
                p
            })
            .collect(),
        budget,
    );

    // Fig 6(c)/7(e,f)/8(e,f): L_H sweep.
    let lh_values = [0.0, 20.0, 40.0, 60.0, 85.0, 100.0];
    run_sweep(
        "L_H",
        &lh_values.iter().map(|v| format!("{v}")).collect::<Vec<_>>(),
        lh_values
            .iter()
            .map(|&l_h| EnvParams {
                l_h,
                ..EnvParams::default()
            })
            .collect(),
        budget,
    );

    // Fig 6(d)/7(g,h)/8(g,h): lower bound of L_{p_i}.
    let lbs = [6i64, 8, 9, 10, 11, 13, 15];
    run_sweep(
        "lb(L_p)",
        &lbs.iter().map(|v| format!("{v}")).collect::<Vec<_>>(),
        lbs.iter()
            .map(|&lb| EnvParams::default().with_tx_lower_bound(lb))
            .collect(),
        budget,
    );

    println!("reference paper anchors: ST(L_J=100) ~ 78%; ST(lb>=11) = 100%; AH falls and AP rises with lb(L_p)");
    finish_manifest(&manifest);
}
