//! Figs. 6, 7, and 8: the simulation sweeps.
//!
//! Thin wrapper over the checked-in scenario
//! `scenarios/fig06_07_08_sweeps.json`: the four Table-I sweeps (`L_J`,
//! sweep cycle, `L_H`, lower bound of `L_{p_i}`), both jammer modes,
//! one fresh DQN per data point on the MDP-kernel environment. The
//! sweep engine lives in `ctjam_scenario::run::run_sweep`, so this
//! binary and a `campaign` run of the same file produce bit-identical
//! numbers.
//!
//! Budget knobs: `CTJAM_TRAIN_SLOTS` (default 12 000), `CTJAM_EVAL_SLOTS`
//! (default 20 000). The full run is ~70 DQN trainings; expect ~10 min at
//! defaults on one core.

use ctjam_bench::{
    banner, env_usize, finish_manifest, load_scenario, maybe_write_csv, pct, results_dir,
    start_manifest, table_header, table_row,
};
use ctjam_core::env::EnvParams;
use ctjam_scenario::run::run_sweep;
use ctjam_scenario::ScenarioKind;

fn main() {
    banner(
        "Figs. 6-8 (simulation sweeps)",
        "ST ~0 below L_J=15, ~78% above L_J=50; ST rises with sweep cycle, falls with L_H, hits 100% once lb(L_p)>=11; AH/AP/SH/SP trends per Figs. 7-8",
    );

    let scenario_file = load_scenario("fig06_07_08_sweeps.json");
    let fingerprint = scenario_file.fingerprint(false);
    let mut effective = scenario_file.effective(false);
    let name = effective.name.clone();
    let ScenarioKind::Sweep(ref mut sweep) = effective.kind else {
        eprintln!("fig06_07_08_sweeps.json is not a sweep scenario");
        std::process::exit(2);
    };
    sweep.train_slots = env_usize("CTJAM_TRAIN_SLOTS", sweep.train_slots);
    sweep.eval_slots = env_usize("CTJAM_EVAL_SLOTS", sweep.eval_slots);

    let budget = sweep.budget();
    let mut manifest = start_manifest(
        &name,
        sweep.seed,
        &format!("budget={budget:?}, base={:?}", EnvParams::default()),
    );
    // Fault-plan provenance: figure data is only citable from a
    // fault-free run, and the chaos harness replays any plan from
    // exactly this (rates, seed) pair.
    manifest
        .push_extra("fault_rates", ctjam_fault::FaultRates::zero().describe())
        .push_extra("fault_seed", "none")
        .push_extra("scenario_fingerprint", format!("{fingerprint:016x}"));
    println!(
        "budget: {} training slots, {} evaluation slots per point",
        budget.train_slots, budget.eval_slots
    );

    // Deterministic-replay capture per table (see
    // `ctjam_core::runner::replay_kernel`) is handled by the runner; the
    // trace file names keep their historical `fig06_08_` prefix.
    let tables = run_sweep(sweep, Some(&results_dir()), "fig06_08_");

    let mut last_name = String::new();
    for table in &tables {
        if table.name != last_name {
            println!("\n### Sweep: {} (Fig. 6/7/8 columns)\n", table.name);
            last_name = table.name.clone();
        }
        match &table.trace {
            Some(Ok(path)) => println!("(replay trace {})", path.display()),
            Some(Err(err)) => println!("(replay trace not written: {err})"),
            None => {}
        }
        println!("jammer mode: {:?}", table.mode);
        table_header(&[table.name.as_str(), "ST", "AH", "AP", "SH", "SP"]);
        let mut csv_rows = Vec::new();
        for (x, m) in table.xs.iter().zip(&table.metrics) {
            table_row(&[
                x.clone(),
                pct(m.success_rate()),
                pct(m.fh_adoption_rate()),
                pct(m.pc_adoption_rate()),
                pct(m.fh_success_rate()),
                pct(m.pc_success_rate()),
            ]);
            csv_rows.push(vec![
                x.clone(),
                format!("{}", m.success_rate()),
                format!("{}", m.fh_adoption_rate()),
                format!("{}", m.pc_adoption_rate()),
                format!("{}", m.fh_success_rate()),
                format!("{}", m.pc_success_rate()),
            ]);
        }
        maybe_write_csv(
            &format!("fig06_08_{}_{:?}", table.slug, table.mode),
            &[table.name.as_str(), "st", "ah", "ap", "sh", "sp"],
            &csv_rows,
        );
        println!();
    }

    println!("reference paper anchors: ST(L_J=100) ~ 78%; ST(lb>=11) = 100%; AH falls and AP rises with lb(L_p)");
    finish_manifest(&manifest);
}
