//! Deterministic load generator for the `ctjam-serve` policy server.
//!
//! Drives a policy server over loopback with N pipelined client
//! threads (each keeps a window of requests in flight on one
//! connection) and seeded observation streams, across seven modes:
//!
//! * `batched` — micro-batching at the default `max_batch`, one worker;
//! * `max_batch=1` — batching degraded off (the speedup baseline);
//! * `int8` — the quantized serving path behind its agreement gate;
//! * `workers=2` / `workers=4` — the sharded multi-worker serve path
//!   (connections hash across per-worker batch queues);
//! * `multi-tenant` — two tenants behind one server, half the clients
//!   speaking v1 frames to the default tenant and half v2 frames to
//!   tenant 7, each checked against its *own* tenant's oracle;
//! * `slo` — a bounded queue-delay admission budget
//!   (`max_queue_delay`), where overload answers are typed
//!   `Overloaded` sheds instead of latency outliers.
//!
//! Observation streams and their greedy-action oracles are precomputed
//! before the timed window so client-side work stays off the critical
//! path. In every f64 mode each served action is asserted **bit-exact**
//! against in-process `DqnAgent::act_greedy` — including at worker
//! counts 2 and 4, the wire-level sharding-equivalence check — while
//! the int8 mode *counts* disagreements (quantization is lossy by
//! design) and asserts the aggregate wire-level agreement stays at or
//! above the server's own 99.5% admission gate. The run is summarized
//! into `BENCH_serve.json` (throughput, p50/p95/p99 latency, mean
//! batch occupancy, batching speedup, worker sweep, multi-tenant and
//! SLO shed measurements, int8 agreement) in the `ctjam-bench/v1`
//! manifest schema — the same file `ci.sh` validates in quick mode and
//! EXPERIMENTS.md records from a full run.
//!
//! Server placement:
//!
//! * default — in-process [`PolicyServer`], metrics read directly;
//! * `CTJAM_SERVE_BIN=<path>` — spawn that `policy_server` binary on an
//!   ephemeral loopback port instead (the `ci.sh` serve-smoke stage
//!   does this so the standalone binary is exercised end to end); the
//!   checkpoints handed to the child are the ones saved from the agents
//!   used for the bit-exactness oracles, worker count and tenants ride
//!   the `CTJAM_SERVE_WORKERS` / `CTJAM_SERVE_TENANTS` env knobs, and
//!   the mean batch occupancy is parsed from the child's shutdown
//!   report.
//!
//! Knobs: `CTJAM_BENCH_QUICK` (small counts), `CTJAM_SERVE_CLIENTS`
//! (default 8), `CTJAM_SERVE_REQUESTS` (per client),
//! `CTJAM_SERVE_MAX_BATCH`, `CTJAM_SERVE_MAX_WAIT_US`,
//! `CTJAM_SERVE_WINDOW` (per-client pipeline depth, default 32),
//! `CTJAM_SERVE_SLO_US` (the slo mode's queue-delay budget).

use ctjam_bench::env_usize;
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::checkpoint;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_serve::protocol::{ErrorCode, Message, DEFAULT_TENANT};
use ctjam_serve::server::{PolicyServer, ServerConfig};
use ctjam_telemetry::{JsonValue, RunManifest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Base seed for the policy weights and every observation stream.
const SEED: u64 = 2026;

/// Schema tag checked by the `ci.sh` smoke stage.
const SCHEMA: &str = "ctjam-bench/v1";

/// One benchmarked server mode.
struct ModeResult {
    throughput_req_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_batch_occupancy: f64,
    requests: usize,
    mismatches: usize,
    sheds: usize,
}

/// Where the server under test lives.
enum Server {
    InProcess(PolicyServer),
    Child {
        child: Child,
        addr: SocketAddr,
        int8_active: bool,
    },
}

impl Server {
    fn start(policy: GreedyPolicy, ckpt: &Path, spec: &ModeSpec) -> Server {
        match std::env::var("CTJAM_SERVE_BIN") {
            Ok(bin) => {
                let mut cmd = Command::new(bin);
                cmd.arg(ckpt)
                    .arg("127.0.0.1:0")
                    .env("CTJAM_SERVE_MAX_BATCH", spec.max_batch.to_string())
                    .env("CTJAM_SERVE_MAX_WAIT_US", spec.max_wait_us.to_string())
                    .env("CTJAM_SERVE_INT8", if spec.int8 { "1" } else { "0" })
                    .env("CTJAM_SERVE_WORKERS", spec.workers.to_string());
                if let Some(us) = spec.max_queue_delay_us {
                    cmd.env("CTJAM_SERVE_MAX_QUEUE_DELAY_US", us.to_string());
                }
                if !spec.tenants.is_empty() {
                    let joined = spec
                        .tenants
                        .iter()
                        .map(|(id, path)| format!("{id}={}", path.display()))
                        .collect::<Vec<_>>()
                        .join(";");
                    cmd.env("CTJAM_SERVE_TENANTS", joined);
                }
                let mut child = cmd
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()
                    .expect("spawn CTJAM_SERVE_BIN");
                let stdout = child.stdout.as_mut().expect("child stdout");
                let mut reader = BufReader::new(stdout);
                // Before LISTENING the child reports its worker count
                // (`WORKERS <n>`) and may report the int8 gate's
                // verdict (`INT8 active|fallback`).
                let mut int8_active = false;
                let addr = loop {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("readiness line");
                    let line = line.trim();
                    if let Some(verdict) = line.strip_prefix("INT8 ") {
                        int8_active = verdict == "active";
                    } else if let Some(addr) = line.strip_prefix("LISTENING ") {
                        break addr.parse().expect("parsable address");
                    } else if line.strip_prefix("WORKERS ").is_none() {
                        panic!("unexpected readiness line: {line}");
                    }
                };
                Server::Child {
                    child,
                    addr,
                    int8_active,
                }
            }
            Err(_) => {
                let config = ServerConfig {
                    max_batch: spec.max_batch,
                    max_wait: Duration::from_micros(spec.max_wait_us),
                    quantize_int8: spec.int8,
                    workers: spec.workers,
                    max_queue_delay: spec.max_queue_delay_us.map(Duration::from_micros),
                    ..ServerConfig::default()
                };
                let server =
                    PolicyServer::bind("127.0.0.1:0", policy, config).expect("bind loopback");
                for (id, path) in &spec.tenants {
                    let policy = GreedyPolicy::load_checkpoint(path).expect("load tenant policy");
                    server.add_tenant(*id, policy).expect("register tenant");
                }
                Server::InProcess(server)
            }
        }
    }

    fn addr(&self) -> SocketAddr {
        match self {
            Server::InProcess(server) => server.local_addr(),
            Server::Child { addr, .. } => *addr,
        }
    }

    /// Whether the server is answering through the int8 path (its
    /// agreement gate admitted the quantized policy).
    fn int8_active(&self) -> bool {
        match self {
            Server::InProcess(server) => server.int8_active(),
            Server::Child { int8_active, .. } => *int8_active,
        }
    }

    /// Shuts the server down and returns its mean batch occupancy.
    fn finish(self) -> f64 {
        match self {
            Server::InProcess(server) => {
                let occupancy = server.mean_batch_occupancy();
                server.shutdown();
                occupancy
            }
            Server::Child { mut child, .. } => {
                drop(child.stdin.take()); // EOF → graceful shutdown
                let stdout = child.stdout.take().expect("child stdout");
                let mut occupancy = f64::NAN;
                for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                    if let Some(v) = line.strip_prefix("MEAN_BATCH_OCCUPANCY ") {
                        occupancy = v.trim().parse().unwrap_or(f64::NAN);
                    }
                }
                let status = child.wait().expect("reap child");
                assert!(status.success(), "policy_server exited with {status:?}");
                occupancy
            }
        }
    }
}

/// One client's seeded observation stream plus the oracle's answers,
/// generated *before* the timed run so the single-row `act_greedy`
/// oracle never competes with the server for CPU inside the
/// measurement window.
type Stream = Vec<(Vec<f64>, usize)>;

/// Precomputes `clients` seeded streams of `requests` observations and
/// their bit-exact `DqnAgent::act_greedy` answers. `salt` keeps the
/// streams of different oracles (the multi-tenant mode's second agent)
/// distinct.
fn precompute_streams(agent: &DqnAgent, clients: usize, requests: usize, salt: u64) -> Vec<Stream> {
    let input_size = agent.config().input_size();
    (0..clients)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(SEED + salt + t as u64);
            (0..requests)
                .map(|_| {
                    let mut observation = vec![0.0; input_size];
                    for v in &mut observation {
                        *v = rng.gen_range(-1.0..1.0);
                    }
                    let expected = agent.act_greedy(&observation);
                    (observation, expected)
                })
                .collect()
        })
        .collect()
}

/// Connects with retries (the child-process server needs a beat).
fn connect_retry(addr: SocketAddr, attempts: usize, delay: Duration) -> TcpStream {
    let mut last = None;
    for _ in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => last = Some(e),
        }
        thread::sleep(delay);
    }
    panic!("connect {addr}: {last:?}");
}

/// One pipelined client: keeps up to `window` requests in flight on a
/// single connection, matching replies to requests by id. Requests are
/// addressed to `tenant` (the default tenant rides the v1 encoding,
/// others the v2 tenant-prefixed one). With `exact` set every action is
/// asserted bit-exact against the precomputed oracle; otherwise
/// disagreements are counted (the int8 mode's aggregate-agreement
/// contract). A typed `Overloaded` error — the SLO mode's admission
/// shed — retires its request without a latency sample. Returns the
/// send→reply latencies of the *answered* requests in microseconds,
/// the mismatch count, and the shed count.
fn drive_client(
    addr: SocketAddr,
    tenant: u32,
    stream: &Stream,
    window: usize,
    exact: bool,
) -> (Vec<f64>, usize, usize) {
    let tcp = connect_retry(addr, 50, Duration::from_millis(20));
    tcp.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(tcp.try_clone().expect("clone stream"));
    let mut writer = tcp;

    // Request ids are stream indices, so flat send-time/replied tables
    // are the whole in-flight bookkeeping.
    let epoch = Instant::now();
    let mut sent_at = vec![epoch; stream.len()];
    let mut replied = vec![false; stream.len()];
    let mut latencies_us = Vec::with_capacity(stream.len());
    let mut inflight = 0usize;
    let mut sendbuf: Vec<u8> = Vec::new();
    let mut next = 0usize;
    let mut done = 0usize;
    let mut mismatches = 0usize;
    let mut sheds = 0usize;
    while done < stream.len() {
        // Refill the window in one burst: encode every free slot, then
        // a single write syscall for the lot.
        if inflight < window && next < stream.len() {
            sendbuf.clear();
            while inflight < window && next < stream.len() {
                Message::Observe {
                    id: next as u64,
                    tenant,
                    observation: stream[next].0.clone(),
                }
                .encode_into(&mut sendbuf);
                sent_at[next] = Instant::now();
                inflight += 1;
                next += 1;
            }
            writer.write_all(&sendbuf).expect("send burst");
            writer.flush().expect("flush burst");
        }
        // Drain replies: block for one, then keep going while complete
        // frames are already sitting in the read buffer.
        loop {
            let msg = Message::read_from(&mut reader)
                .expect("read reply")
                .expect("server closed mid-run");
            match msg {
                Message::Action { id, action } => {
                    let id = id as usize;
                    assert!(id < next && !replied[id], "reply to unknown id");
                    replied[id] = true;
                    latencies_us.push(sent_at[id].elapsed().as_secs_f64() * 1e6);
                    // The f64 acceptance bar: every served action
                    // bit-exact against the in-process agent. The int8
                    // mode counts divergences instead and holds them to
                    // the aggregate agreement gate in `main`.
                    if action as usize != stream[id].1 {
                        assert!(!exact, "served action diverged from act_greedy");
                        mismatches += 1;
                    }
                    inflight -= 1;
                    done += 1;
                }
                Message::Error {
                    id,
                    code: ErrorCode::Overloaded,
                } => {
                    let id = id as usize;
                    assert!(id < next && !replied[id], "shed for unknown id");
                    replied[id] = true;
                    sheds += 1;
                    inflight -= 1;
                    done += 1;
                }
                other => panic!("unexpected reply: {other:?}"),
            }
            if inflight == 0 || Message::decode(reader.buffer()).is_err() {
                break;
            }
        }
    }
    (latencies_us, mismatches, sheds)
}

/// One server configuration to load-test.
struct ModeSpec {
    label: &'static str,
    max_batch: usize,
    max_wait_us: u64,
    int8: bool,
    workers: usize,
    max_queue_delay_us: Option<u64>,
    /// Extra tenants `(id, checkpoint)` registered beyond the default.
    tenants: Vec<(u32, PathBuf)>,
}

impl ModeSpec {
    fn new(label: &'static str, max_batch: usize, max_wait_us: u64) -> ModeSpec {
        ModeSpec {
            label,
            max_batch,
            max_wait_us,
            int8: false,
            workers: 1,
            max_queue_delay_us: None,
            tenants: Vec::new(),
        }
    }
}

/// Runs pipelined client threads over `assignments` — one `(tenant,
/// stream)` per client — against one server mode; panics on any
/// non-bit-exact answer unless the mode is int8 (where divergences are
/// counted, not fatal). Modes without an SLO budget must shed nothing.
/// Returns the mode's results plus whether the server's int8 path was
/// actually active.
fn run_mode(
    spec: &ModeSpec,
    policy: GreedyPolicy,
    assignments: &Arc<Vec<(u32, Stream)>>,
    ckpt: &Path,
    window: usize,
) -> (ModeResult, bool) {
    let server = Server::start(policy, ckpt, spec);
    let label = spec.label;
    let addr = server.addr();
    let int8_active = server.int8_active();
    let clients = assignments.len();
    let exact = !spec.int8;

    let start = Instant::now();
    let mut workers = Vec::new();
    for t in 0..clients {
        let assignments = Arc::clone(assignments);
        workers.push(thread::spawn(move || {
            let (tenant, stream) = &assignments[t];
            drive_client(addr, *tenant, stream, window, exact)
        }));
    }
    let mut latencies: Vec<f64> = Vec::new();
    let mut mismatches = 0usize;
    let mut sheds = 0usize;
    for w in workers {
        let (lat, miss, shed) = w.join().expect("client thread panicked");
        latencies.extend(lat);
        mismatches += miss;
        sheds += shed;
    }
    let wall = start.elapsed().as_secs_f64();
    let occupancy = server.finish();
    assert!(
        spec.max_queue_delay_us.is_some() || sheds == 0,
        "{label}: {sheds} sheds without an SLO budget"
    );
    assert!(!latencies.is_empty(), "{label}: every request was shed");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| latencies[((q * latencies.len() as f64).ceil() as usize).max(1) - 1];
    let result = ModeResult {
        throughput_req_per_s: latencies.len() as f64 / wall,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_batch_occupancy: occupancy,
        requests: latencies.len(),
        mismatches,
        sheds,
    };
    println!(
        "{label:>12}: {:>9.0} req/s | p50 {:>7.1} us | p95 {:>7.1} us | p99 {:>7.1} us | occupancy {:.2}{}",
        result.throughput_req_per_s, result.p50_us, result.p95_us, result.p99_us,
        result.mean_batch_occupancy,
        if spec.max_queue_delay_us.is_some() {
            format!(" | sheds {}", result.sheds)
        } else {
            String::new()
        },
    );
    (result, int8_active)
}

/// Trains a briefly-biased agent from `seed` (see `main` for why the
/// bias matters to the int8 mode).
fn trained_agent(config: &DqnConfig, seed: u64) -> DqnAgent {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    for i in 0..1_600 {
        let state: Vec<f64> = (0..config.input_size())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let next: Vec<f64> = (0..config.input_size())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let action = i % config.num_actions();
        let reward = if action == 0 { 1.0 } else { -1.0 };
        agent.observe(state, action, reward, next, &mut rng);
    }
    agent
}

fn main() {
    let quick = std::env::var("CTJAM_BENCH_QUICK").is_ok();
    let out_dir = std::env::var("CTJAM_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let out_dir = PathBuf::from(out_dir);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let clients = env_usize("CTJAM_SERVE_CLIENTS", 8);
    let requests = env_usize("CTJAM_SERVE_REQUESTS", if quick { 250 } else { 4_000 });
    let max_batch = env_usize("CTJAM_SERVE_MAX_BATCH", 32);
    let max_wait_us = env_usize("CTJAM_SERVE_MAX_WAIT_US", 200) as u64;
    let window = env_usize("CTJAM_SERVE_WINDOW", 32);
    let slo_us = env_usize("CTJAM_SERVE_SLO_US", 1_000) as u64;

    // Paper-shaped observation/action space, but wider hidden layers:
    // the serving bottleneck worth measuring is the forward pass, not
    // the loopback syscalls, and at (192, 192) it clearly is.
    let config = DqnConfig {
        hidden: (192, 192),
        ..DqnConfig::default()
    };
    // Brief training toward one dominant action gives the policy
    // decisive Q-margins everywhere, so the int8 mode's agreement gate
    // admits the quantization and the third mode genuinely measures
    // the int8 path (a random-weight net has near-tied Q-values the
    // gate rightly rejects — measured here at ~97–98% agreement, below
    // the 99.5% bar). The forward-pass cost being benchmarked is
    // weight-value independent, and the f64 modes are oracle-checked
    // against this same post-training agent, so neither throughput
    // comparability nor bit-exactness is affected.
    let agent = Arc::new(trained_agent(&config, SEED));
    // The multi-tenant mode's second policy: same shape, independently
    // seeded weights, so a cross-tenant answer mixup cannot slip past
    // the per-tenant oracles.
    let agent_b = Arc::new(trained_agent(&config, SEED + 7));
    let pid = std::process::id();
    let ckpt = std::env::temp_dir().join(format!("ctjam_serve_bench_{pid}.ckpt"));
    let ckpt_b = std::env::temp_dir().join(format!("ctjam_serve_bench_{pid}_b.ckpt"));
    checkpoint::save_agent(&agent, &ckpt).expect("save benchmark checkpoint");
    checkpoint::save_agent(&agent_b, &ckpt_b).expect("save tenant checkpoint");
    let policy = || GreedyPolicy::from_agent(&agent);

    println!(
        "serve_bench: {clients} clients x {requests} requests (window {window}), net {:?}, \
         max_batch {max_batch} (deadline {max_wait_us} us), {threads} hw thread(s){}",
        config.hidden,
        if quick { " [quick]" } else { "" },
    );
    let streams = precompute_streams(&agent, clients, requests, 1000);
    let streams_b = precompute_streams(&agent_b, clients, requests, 2000);
    // Default-tenant assignment (every single-tenant mode) and the
    // split one (alternating clients on tenant 7, so the v1 and v2
    // encodings are exercised concurrently).
    let default_assign: Arc<Vec<(u32, Stream)>> = Arc::new(
        streams
            .iter()
            .map(|s| (DEFAULT_TENANT, s.clone()))
            .collect(),
    );
    let split_assign: Arc<Vec<(u32, Stream)>> = Arc::new(
        streams
            .iter()
            .zip(&streams_b)
            .enumerate()
            .map(|(t, (a, b))| {
                if t % 2 == 0 {
                    (DEFAULT_TENANT, a.clone())
                } else {
                    (7u32, b.clone())
                }
            })
            .collect(),
    );

    let (batched, _) = run_mode(
        &ModeSpec::new("batched", max_batch, max_wait_us),
        policy(),
        &default_assign,
        &ckpt,
        window,
    );
    let (unbatched, _) = run_mode(
        &ModeSpec::new("max_batch=1", 1, max_wait_us),
        policy(),
        &default_assign,
        &ckpt,
        window,
    );
    let (int8, int8_active) = run_mode(
        &ModeSpec {
            int8: true,
            ..ModeSpec::new("int8", max_batch, max_wait_us)
        },
        policy(),
        &default_assign,
        &ckpt,
        window,
    );
    // The worker sweep: identical load at 2 and 4 shards. Every answer
    // stays oracle-checked, so this doubles as the sharding-equivalence
    // proof at the wire level.
    let (workers2, _) = run_mode(
        &ModeSpec {
            workers: 2,
            ..ModeSpec::new("workers=2", max_batch, max_wait_us)
        },
        policy(),
        &default_assign,
        &ckpt,
        window,
    );
    let (workers4, _) = run_mode(
        &ModeSpec {
            workers: 4,
            ..ModeSpec::new("workers=4", max_batch, max_wait_us)
        },
        policy(),
        &default_assign,
        &ckpt,
        window,
    );
    let (multi, _) = run_mode(
        &ModeSpec {
            workers: 2,
            tenants: vec![(7, ckpt_b.clone())],
            ..ModeSpec::new("multi-tenant", max_batch, max_wait_us)
        },
        policy(),
        &split_assign,
        &ckpt,
        window,
    );
    let (slo, _) = run_mode(
        &ModeSpec {
            max_queue_delay_us: Some(slo_us),
            ..ModeSpec::new("slo", max_batch, max_wait_us)
        },
        policy(),
        &default_assign,
        &ckpt,
        window,
    );
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&ckpt_b).ok();

    let speedup = batched.throughput_req_per_s / unbatched.throughput_req_per_s;
    println!("batching speedup: {speedup:.2}x");

    // The int8 acceptance bar: aggregate wire-level agreement with the
    // f64 oracle at or above the server's own admission gate. When the
    // gate rejected the quantization the server served f64 (bit-exact),
    // so the bound holds either way — a sub-gate number here means the
    // serving path itself is broken, not that the gate mis-measured.
    let int8_agreement = 1.0 - int8.mismatches as f64 / int8.requests as f64;
    println!(
        "int8 mode: {} | wire agreement {:.4} ({} / {} diverged)",
        if int8_active {
            "active"
        } else {
            "f64 fallback"
        },
        int8_agreement,
        int8.mismatches,
        int8.requests,
    );
    assert!(
        int8_agreement >= 0.995,
        "int8 wire agreement {int8_agreement} below the 99.5% gate"
    );
    let slo_offered = slo.requests + slo.sheds;
    let slo_shed_rate = slo.sheds as f64 / slo_offered as f64;
    println!(
        "slo mode ({slo_us} us budget): {} / {slo_offered} shed ({:.4})",
        slo.sheds, slo_shed_rate,
    );

    let mut manifest = RunManifest::new("BENCH_serve", SEED, &format!("{config:?}"));
    manifest.push_extra("schema", SCHEMA);
    manifest.push_extra("target_arch", std::env::consts::ARCH);
    manifest.push_extra("target_cpu_features", target_cpu_features());
    manifest.push_extra("threads_available", threads as f64);
    manifest.push_extra("quick_mode", JsonValue::from(quick));
    manifest.push_extra(
        "server_mode",
        if std::env::var("CTJAM_SERVE_BIN").is_ok() {
            "external_binary"
        } else {
            "in_process"
        },
    );
    manifest.push_extra("client_threads", clients as f64);
    manifest.push_extra("requests_per_client", requests as f64);
    manifest.push_extra("pipeline_window", window as f64);
    manifest.push_extra("max_batch", max_batch as f64);
    manifest.push_extra("max_wait_us", max_wait_us as f64);
    manifest.push_extra(
        "served_requests",
        (batched.requests
            + unbatched.requests
            + int8.requests
            + workers2.requests
            + workers4.requests
            + multi.requests
            + slo.requests) as f64,
    );
    manifest.push_extra("batched_throughput_req_per_s", batched.throughput_req_per_s);
    manifest.push_extra("batched_latency_p50_us", batched.p50_us);
    manifest.push_extra("batched_latency_p95_us", batched.p95_us);
    manifest.push_extra("batched_latency_p99_us", batched.p99_us);
    manifest.push_extra("mean_batch_occupancy_x", batched.mean_batch_occupancy);
    manifest.push_extra(
        "unbatched_throughput_req_per_s",
        unbatched.throughput_req_per_s,
    );
    manifest.push_extra("unbatched_latency_p50_us", unbatched.p50_us);
    manifest.push_extra("unbatched_latency_p95_us", unbatched.p95_us);
    manifest.push_extra("unbatched_latency_p99_us", unbatched.p99_us);
    manifest.push_extra("batching_speedup_x", speedup);
    manifest.push_extra("int8_active", JsonValue::from(int8_active));
    manifest.push_extra("int8_throughput_req_per_s", int8.throughput_req_per_s);
    manifest.push_extra("int8_latency_p50_us", int8.p50_us);
    manifest.push_extra("int8_latency_p95_us", int8.p95_us);
    manifest.push_extra("int8_latency_p99_us", int8.p99_us);
    manifest.push_extra("int8_wire_agreement", int8_agreement);
    manifest.push_extra(
        "int8_throughput_vs_batched_x",
        int8.throughput_req_per_s / batched.throughput_req_per_s,
    );
    manifest.push_extra(
        "workers_2_throughput_req_per_s",
        workers2.throughput_req_per_s,
    );
    manifest.push_extra("workers_2_latency_p99_us", workers2.p99_us);
    manifest.push_extra(
        "workers_4_throughput_req_per_s",
        workers4.throughput_req_per_s,
    );
    manifest.push_extra("workers_4_latency_p99_us", workers4.p99_us);
    if threads == 1 {
        // One hardware thread: the sweep can only measure sharding
        // overhead, never scaling — say so, rather than letting flat
        // numbers read as a sharding defect.
        manifest.push_extra(
            "worker_scaling_note",
            "single hardware thread: worker sweep measures sharding overhead, not parallel speedup",
        );
    }
    manifest.push_extra(
        "multi_tenant_throughput_req_per_s",
        multi.throughput_req_per_s,
    );
    manifest.push_extra("multi_tenant_latency_p99_us", multi.p99_us);
    manifest.push_extra("multi_tenant_count", 2.0);
    manifest.push_extra("slo_max_queue_delay_us", slo_us as f64);
    manifest.push_extra("slo_throughput_req_per_s", slo.throughput_req_per_s);
    manifest.push_extra("slo_latency_p99_us", slo.p99_us);
    manifest.push_extra("slo_shed_count", slo.sheds as f64);
    manifest.push_extra("slo_shed_rate", slo_shed_rate);

    std::fs::create_dir_all(&out_dir).expect("create CTJAM_BENCH_DIR");
    let path = out_dir.join(format!("{}.json", manifest.name));
    std::fs::write(&path, manifest.to_json().to_string_pretty()).expect("write BENCH manifest");
    println!("(wrote {})", path.display());
    let _ = std::io::stdout().flush();
}

/// Compile-time SIMD features (same provenance note as `perf_report`).
fn target_cpu_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(target_feature = "sse4.2") {
        feats.push("sse4.2");
    }
    if cfg!(target_feature = "avx") {
        feats.push("avx");
    }
    if cfg!(target_feature = "avx2") {
        feats.push("avx2");
    }
    if cfg!(target_feature = "fma") {
        feats.push("fma");
    }
    if cfg!(target_feature = "avx512f") {
        feats.push("avx512f");
    }
    if cfg!(target_feature = "neon") {
        feats.push("neon");
    }
    if feats.is_empty() {
        "baseline".to_string()
    } else {
        feats.join("+")
    }
}
