//! Theorems III.4–III.5: threshold structure of the optimal policy.
//!
//! Solves the anti-jamming MDP exactly (value iteration) across parameter
//! ranges and prints the hop threshold `n*`, verifying:
//!
//! * Lemma III.2 / III.3 — Q(n, stay) decreases and Q(n, hop) increases
//!   in `n`;
//! * Theorem III.4 — the optimal policy is a threshold policy;
//! * Theorem III.5 — `n*` falls with `L_J`, rises with `L_H` and `⌈K/m⌉`.

use ctjam_bench::{banner, finish_manifest, start_manifest, table_header, table_row};
use ctjam_mdp::analysis::{
    check_lemma_iii2, check_lemma_iii3, check_threshold_structure, solve_threshold,
    thresholds_vs_lh, thresholds_vs_lj, thresholds_vs_sweep_cycle,
};
use ctjam_mdp::antijam::{AntijamParams, JammerMode};

fn main() {
    banner(
        "Theorems III.4-III.5 (threshold policy analysis)",
        "optimal policy is a threshold n*; n* decreases with L_J, increases with L_H and ceil(K/m)",
    );

    let base = AntijamParams {
        jammer_mode: JammerMode::RandomPower,
        ..AntijamParams::default()
    };

    let manifest = start_manifest("mdp_threshold_analysis", 0, &format!("{base:?}"));

    println!("\n### Structure checks on the default instance\n");
    let (mdp, q, threshold) = solve_threshold(base.clone());
    println!(
        "lemma III.2 (Q(n,stay) decreasing): {}",
        check_lemma_iii2(&mdp, &q).is_none()
    );
    println!(
        "lemma III.3 (Q(n,hop) increasing):  {}",
        check_lemma_iii3(&mdp, &q).is_none()
    );
    println!(
        "theorem III.4 (threshold policy):   {}",
        check_threshold_structure(&mdp, &q)
    );
    println!("default instance threshold n* = {threshold}");

    println!("\n### Theorem III.5: n* vs L_J (expect non-increasing)\n");
    let lj = [10.0, 20.0, 40.0, 70.0, 100.0, 200.0, 500.0, 1000.0];
    let t_lj = thresholds_vs_lj(&base, &lj);
    table_header(&["L_J", "n*"]);
    for (x, t) in lj.iter().zip(&t_lj) {
        table_row(&[format!("{x}"), format!("{t}")]);
    }

    println!("\n### Theorem III.5: n* vs L_H (expect non-decreasing)\n");
    let lh = [0.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0];
    let t_lh = thresholds_vs_lh(&base, &lh);
    table_header(&["L_H", "n*"]);
    for (x, t) in lh.iter().zip(&t_lh) {
        table_row(&[format!("{x}"), format!("{t}")]);
    }

    println!("\n### Theorem III.5: n* vs sweep cycle (expect non-decreasing)\n");
    let cycles = [2usize, 3, 4, 6, 8, 12, 16];
    let t_c = thresholds_vs_sweep_cycle(&base, &cycles);
    table_header(&["ceil(K/m)", "n*"]);
    for (x, t) in cycles.iter().zip(&t_c) {
        table_row(&[format!("{x}"), format!("{t}")]);
    }

    let lj_ok = t_lj.windows(2).all(|w| w[1] <= w[0]);
    let lh_ok = t_lh.windows(2).all(|w| w[1] >= w[0]);
    let c_ok = t_c.windows(2).all(|w| w[1] >= w[0]);
    println!("\ntrends hold: L_J {lj_ok}, L_H {lh_ok}, sweep cycle {c_ok}");
    finish_manifest(&manifest);
}
