//! Fig. 11: anti-jamming scheme comparison and Jx-slot sensitivity.
//!
//! (a) runs the field experiment under the EmuBee jammer with each
//! defense — passive FH, random FH, the trained DQN ("RL FH") — plus the
//! no-jammer reference, and prints goodput per slot and the fraction of
//! the no-jammer goodput each scheme retains (paper: 37.6%, 54.1%,
//! 78.5%). (b) fixes the Tx slot at 3 s and sweeps the Jx slot 0.5–5 s.
//!
//! Knobs: `CTJAM_FIELD_SLOTS` (default 300 Tx slots per repetition),
//! `CTJAM_FIELD_REPS` (default 3 seeds averaged), `CTJAM_TRAIN_SLOTS`.

use ctjam_bench::{
    banner, env_usize, finish_manifest, pct, start_manifest, table_header, table_row,
};
use ctjam_core::defender::{Defender, DqnDefender, NoDefense, PassiveFh, RandomFh};
use ctjam_core::field::{FieldConfig, FieldExperiment};
use ctjam_core::runner::RunBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean (packets/slot, slot ST) over `reps` seeded repetitions.
fn run_field<D, F>(
    config: &FieldConfig,
    make: F,
    slots: usize,
    reps: usize,
    seed: u64,
) -> (f64, f64)
where
    D: Defender,
    F: Fn(&mut StdRng) -> D,
{
    let mut pkts = 0.0;
    let mut st = 0.0;
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed + 7919 * rep as u64);
        let defender = make(&mut rng);
        let mut experiment = FieldExperiment::new(config.clone(), defender, &mut rng);
        let report = experiment.run(slots, &mut rng);
        pkts += report.packets_per_slot();
        st += report.metrics.success_rate();
    }
    (pkts / reps as f64, st / reps as f64)
}

fn main() {
    banner(
        "Fig. 11 (scheme comparison & Jx-slot sensitivity)",
        "goodput RL ~2x passive and ~1.39x random; RL retains ~78% of the no-jammer goodput; best performance when Jx slot == Tx slot",
    );
    let slots = env_usize("CTJAM_FIELD_SLOTS", 300);
    let reps = env_usize("CTJAM_FIELD_REPS", 3);
    let train_slots = env_usize("CTJAM_TRAIN_SLOTS", 12_000);
    let mut rng = StdRng::seed_from_u64(11);
    let base = FieldConfig::default();
    let mut manifest = start_manifest(
        "fig11_scheme_comparison",
        11,
        &format!("slots={slots}, reps={reps}, train_slots={train_slots}, {base:?}"),
    );
    // Fault-plan provenance (chaos-harness replay recipe; see
    // tests/chaos.rs): this figure runs fault-free.
    manifest
        .push_extra("fault_rates", ctjam_fault::FaultRates::zero().describe())
        .push_extra("fault_seed", "none");

    // Offline training of the RL defense (the paper trains offline and
    // loads the network onto the hub).
    let mut rl = DqnDefender::paper_default(&base.env, &mut rng);
    RunBuilder::new(&base.env).train(&mut rl, train_slots, &mut rng);
    rl.set_training(false);

    println!("\n### Fig. 11(a): scheme comparison (Tx slot = Jx slot = 3 s)\n");
    let no_jx = FieldConfig {
        jammer_enabled: false,
        ..base.clone()
    };
    let reference = run_field(&no_jx, |r| NoDefense::new(&no_jx.env, r), slots, reps, 100);
    let psv = run_field(&base, |r| PassiveFh::new(&base.env, r), slots, reps, 101);
    let rnd = run_field(&base, |r| RandomFh::new(&base.env, r), slots, reps, 102);
    let rl_res = run_field(&base, |_| rl.clone(), slots, reps, 103);

    let full = reference.0;
    table_header(&[
        "scheme",
        "goodput (pkts/slot)",
        "fraction of no-jammer",
        "slot ST",
        "paper fraction",
    ]);
    for (name, (pkts, st), paper) in [
        ("PSV FH", psv, "37.6%"),
        ("Rand FH", rnd, "54.1%"),
        ("RL FH (DQN)", rl_res, "78.5%"),
        ("w/o Jx", reference, "100%"),
    ] {
        table_row(&[
            name.to_string(),
            format!("{pkts:.0}"),
            pct(pkts / full),
            pct(st),
            paper.to_string(),
        ]);
    }
    println!(
        "\nratios: RL/PSV = {:.2}x (paper 2.0x), RL/Rand = {:.2}x (paper 1.39x)",
        rl_res.0 / psv.0,
        rl_res.0 / rnd.0
    );

    println!("\n### Fig. 11(b): goodput vs Jx slot duration (Tx slot = 3 s, RL defense)\n");
    table_header(&["Jx slot (s)", "goodput (pkts/slot)", "slot ST"]);
    for jx in [0.5f64, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0] {
        let config = FieldConfig {
            jx_slot_s: jx,
            ..base.clone()
        };
        let (pkts, st) = run_field(
            &config,
            |_| rl.clone(),
            slots,
            reps,
            200 + (jx * 10.0) as u64,
        );
        table_row(&[format!("{jx:.1}"), format!("{pkts:.0}"), pct(st)]);
    }
    println!("\npaper: best goodput (~421 pkts/slot) when the Jx slot matches the 3 s Tx slot; faster sweeping hurts most");
    finish_manifest(&manifest);
}
