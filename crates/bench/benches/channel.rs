//! Channel-model costs: the BER closed form and a full Fig. 2(b)-style
//! link evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_channel::ber::oqpsk_dsss_ber;
use ctjam_channel::cache::PerCache;
use ctjam_channel::link::{JammerKind, JammingScenario};
use ctjam_channel::units::db_to_linear;

fn bench_channel(c: &mut Criterion) {
    c.bench_function("oqpsk_dsss_ber", |b| {
        let sinr = db_to_linear(1.5);
        b.iter(|| std::hint::black_box(oqpsk_dsss_ber(std::hint::black_box(sinr))));
    });

    let scenario = JammingScenario::default();
    c.bench_function("link_evaluate_one_point", |b| {
        b.iter(|| std::hint::black_box(scenario.evaluate(JammerKind::EmuBee, 7.0)));
    });

    let distances: Vec<f64> = (1..=15).map(f64::from).collect();
    c.bench_function("link_sweep_fig2b_series", |b| {
        b.iter(|| std::hint::black_box(scenario.sweep(JammerKind::EmuBee, &distances)));
    });

    // The same sweep through the PerCache: after the first pass every
    // operating point hits, so this measures the memoized steady state
    // the slot loop sees (bit-exact with the series above).
    c.bench_function("link_sweep_fig2b_series_cached", |b| {
        let mut cache = PerCache::new();
        let mut out = Vec::new();
        b.iter(|| {
            scenario.sweep_cached_into(JammerKind::EmuBee, &distances, &mut cache, &mut out);
            std::hint::black_box(&out);
        });
    });
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
