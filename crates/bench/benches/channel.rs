//! Channel-model costs: the BER closed form and a full Fig. 2(b)-style
//! link evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_channel::ber::oqpsk_dsss_ber;
use ctjam_channel::link::{JammerKind, JammingScenario};
use ctjam_channel::units::db_to_linear;

fn bench_channel(c: &mut Criterion) {
    c.bench_function("oqpsk_dsss_ber", |b| {
        let sinr = db_to_linear(1.5);
        b.iter(|| std::hint::black_box(oqpsk_dsss_ber(std::hint::black_box(sinr))));
    });

    let scenario = JammingScenario::default();
    c.bench_function("link_evaluate_one_point", |b| {
        b.iter(|| std::hint::black_box(scenario.evaluate(JammerKind::EmuBee, 7.0)));
    });

    let distances: Vec<f64> = (1..=15).map(f64::from).collect();
    c.bench_function("link_sweep_fig2b_series", |b| {
        b.iter(|| std::hint::black_box(scenario.sweep(JammerKind::EmuBee, &distances)));
    });
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
