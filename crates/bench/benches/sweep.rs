//! Sweep scaling: `RunBuilder::sweep` wall time at 1 worker thread vs
//! all available. The budget is tiny — this bench exists to catch a
//! scaling regression (e.g. an accidental serialization point in
//! `parallel_map`), not to measure the figures' real workload; the
//! `perf_report` binary records the sized version in
//! `BENCH_slotloop.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_core::env::EnvParams;
use ctjam_core::runner::{RunBuilder, SweepBudget};

fn bench_sweep(c: &mut Criterion) {
    let points = vec![EnvParams::default(); 4];
    let budget = SweepBudget {
        train_slots: 100,
        eval_slots: 100,
    };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    c.bench_function("sweep_4pts_1_thread", |b| {
        b.iter(|| {
            std::hint::black_box(
                RunBuilder::new(&points[0])
                    .budget(budget)
                    .seed(5)
                    .threads(1)
                    .sweep(&points, |_, _| {}),
            )
        });
    });

    c.bench_function("sweep_4pts_all_threads", |b| {
        b.iter(|| {
            std::hint::black_box(
                RunBuilder::new(&points[0])
                    .budget(budget)
                    .seed(5)
                    .threads(threads)
                    .sweep(&points, |_, _| {}),
            )
        });
    });
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
