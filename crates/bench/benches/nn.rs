//! Neural-network substrate costs: MLP forward/backward at the paper's
//! shape, and the RNN predictor the adaptive jammer trains online.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_nn::batch::Batch;
use ctjam_nn::mlp::{BatchScratch, MlpBuilder};
use ctjam_nn::optimizer::Adam;
use ctjam_nn::rnn::Rnn;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let net = MlpBuilder::new(24)
        .hidden(48)
        .hidden(42)
        .output(160)
        .build(&mut rng);
    let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.13).sin()).collect();

    c.bench_function("mlp_forward_paper_shape", |b| {
        b.iter(|| std::hint::black_box(net.forward(&x)));
    });

    let target: Vec<f64> = (0..160).map(|i| (i as f64 * 0.07).cos()).collect();
    let batch: Vec<(&[f64], &[f64])> = vec![(&x, &target); 32];
    c.bench_function("mlp_gradient_batch32_paper_shape", |b| {
        b.iter(|| std::hint::black_box(net.loss_and_gradient(&batch)));
    });

    // The same minibatch through the packed, scratch-reusing kernels —
    // bit-identical output (see the property tests), far fewer allocations
    // and cache misses.
    let xs = Batch::from_rows(&vec![&x[..]; 32]);
    let ys = Batch::from_rows(&vec![&target[..]; 32]);
    let mut scratch = BatchScratch::for_network(&net);
    c.bench_function("mlp_gradient_batch32_batched", |b| {
        b.iter(|| {
            let (loss, _) = net.loss_and_gradient_batch(&xs, &ys, &mut scratch);
            std::hint::black_box(loss)
        });
    });

    c.bench_function("mlp_forward_batch32_batched", |b| {
        b.iter(|| std::hint::black_box(net.forward_batch(&xs, &mut scratch).rows()));
    });

    let mut rnn = Rnn::new(4, 16, 4, &mut rng);
    let xs: Vec<Vec<f64>> = (0..32)
        .map(|t| {
            let mut v = vec![0.0; 4];
            v[t % 4] = 1.0;
            v
        })
        .collect();
    c.bench_function("rnn_run_32_steps", |b| {
        b.iter(|| std::hint::black_box(rnn.run(&xs)));
    });

    let ys = xs.clone();
    let mut adam = Adam::with_learning_rate(5e-3);
    c.bench_function("rnn_bptt_train_32_steps", |b| {
        b.iter(|| std::hint::black_box(rnn.train_sequence(&xs, &ys, &mut adam)));
    });
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
