//! Environment costs: slot steps in the concrete and kernel environments
//! and one full 3-second star-network slot. The `run_100_slots*` pair
//! checks the telemetry tentpole's zero-cost claim: the instrumented loop
//! over `NullSink` must not be measurably slower than it is worth — a
//! sinkless `RunBuilder` run *is* the `NullSink` loop, so these two must
//! agree within noise.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_core::defender::{Defender, DqnDefender, RandomFh};
use ctjam_core::env::{CompetitionEnv, EnvParams, Environment};
use ctjam_core::kernel::KernelEnv;
use ctjam_core::runner::RunBuilder;
use ctjam_net::star::StarNetwork;
use ctjam_telemetry::{MemorySink, NullSink};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_env(c: &mut Criterion) {
    let params = EnvParams::default();

    c.bench_function("competition_env_step", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut defender = RandomFh::new(&params, &mut rng);
        b.iter(|| {
            let d = defender.decide(&mut rng);
            std::hint::black_box(Environment::step(&mut env, d, &mut rng));
        });
    });

    c.bench_function("run_100_slots_uninstrumented", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut defender = RandomFh::new(&params, &mut rng);
        b.iter(|| {
            std::hint::black_box(RunBuilder::new(&params).run_in(
                &mut env,
                &mut defender,
                100,
                &mut rng,
            ))
        });
    });

    c.bench_function("run_100_slots_null_sink", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut defender = RandomFh::new(&params, &mut rng);
        b.iter(|| {
            std::hint::black_box(RunBuilder::new(&params).sink(&mut NullSink).run_in(
                &mut env,
                &mut defender,
                100,
                &mut rng,
            ))
        });
    });

    c.bench_function("run_100_slots_memory_sink", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut defender = RandomFh::new(&params, &mut rng);
        b.iter(|| {
            let mut sink = MemorySink::new();
            std::hint::black_box(RunBuilder::new(&params).sink(&mut sink).run_in(
                &mut env,
                &mut defender,
                100,
                &mut rng,
            ))
        });
    });

    // The DQN evaluation loop: decide() runs the network through the
    // reusable inference scratch, so steady state performs no per-slot
    // allocation (the allocation audit this guards landed with the
    // PerCache tentpole).
    c.bench_function("run_100_slots_dqn_eval", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut defender = DqnDefender::paper_default(&params, &mut rng);
        defender.set_training(false);
        b.iter(|| {
            std::hint::black_box(RunBuilder::new(&params).run_in(
                &mut env,
                &mut defender,
                100,
                &mut rng,
            ))
        });
    });

    c.bench_function("kernel_env_step", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut env = KernelEnv::new(params.clone(), &mut rng);
        let mut defender = RandomFh::new(&params, &mut rng);
        b.iter(|| {
            let d = defender.decide(&mut rng);
            std::hint::black_box(env.step(d, &mut rng));
        });
    });

    c.bench_function("star_network_3s_slot", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = StarNetwork::new(3);
        b.iter(|| std::hint::black_box(net.run_slot(3.0, true, 0.0, &mut rng)));
    });
}

criterion_group!(benches, bench_env);
criterion_main!(benches);
