//! DQN costs: one inference (the hub's 9 ms budget in Fig. 9(a)) and one
//! replay training step.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dqn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let config = DqnConfig::default();
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    let obs = vec![0.3; config.input_size()];

    c.bench_function("dqn_inference_paper_shape", |b| {
        b.iter(|| std::hint::black_box(agent.q_values(&obs)));
    });

    // Fill the replay buffer so train_step has data.
    for i in 0..512 {
        let mut state = obs.clone();
        state[0] = (i % 7) as f64 / 7.0;
        agent.observe(
            state.clone(),
            i % config.num_actions(),
            -10.0,
            state,
            &mut rng,
        );
    }
    c.bench_function("dqn_train_step_batch32", |b| {
        b.iter(|| std::hint::black_box(agent.train_step(&mut rng)));
    });
}

criterion_group!(benches, bench_dqn);
criterion_main!(benches);
