//! DQN costs: one inference (the hub's 9 ms budget in Fig. 9(a)) and one
//! replay training step.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dqn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let config = DqnConfig::default();
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    let obs = vec![0.3; config.input_size()];

    c.bench_function("dqn_inference_paper_shape", |b| {
        b.iter(|| std::hint::black_box(agent.q_values(&obs)));
    });

    // Fill the replay buffer so train_step has data.
    for i in 0..512 {
        let mut state = obs.clone();
        state[0] = (i % 7) as f64 / 7.0;
        agent.observe(
            state.clone(),
            i % config.num_actions(),
            -10.0,
            state,
            &mut rng,
        );
    }
    c.bench_function("dqn_train_step_batch32", |b| {
        b.iter(|| std::hint::black_box(agent.train_step(&mut rng)));
    });

    // The pre-batching reference: sample, then build targets and the
    // gradient one transition at a time (2 per-sample forwards + a
    // per-sample backward each), exactly what `train_step` did before
    // the packed kernels. Kept as a yardstick for the speedup claimed
    // in EXPERIMENTS.md.
    let gamma = agent.config().gamma;
    c.bench_function("dqn_train_step_batch32_per_sample_reference", |b| {
        b.iter(|| {
            let batch = agent.replay().sample(32, &mut rng);
            let mut targets = Vec::with_capacity(batch.len());
            for e in &batch {
                let mut q = agent.network().forward(&e.state);
                let next_q = agent.target_network().forward(&e.next_state);
                let best = next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                q[e.action] = e.reward + gamma * best;
                targets.push(q);
            }
            let pairs: Vec<(&[f64], &[f64])> = batch
                .iter()
                .zip(&targets)
                .map(|(e, t)| (e.state.as_slice(), t.as_slice()))
                .collect();
            std::hint::black_box(agent.network().loss_and_gradient(&pairs))
        });
    });
}

criterion_group!(benches, bench_dqn);
criterion_main!(benches);
