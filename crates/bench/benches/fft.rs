//! FFT throughput: the inner loop of both the OFDM chain and the
//! emulation path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctjam_phy::fft::Fft;
use ctjam_phy::Complex64;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[64usize, 256, 1024] {
        let plan = Fft::new(n).unwrap();
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            let mut buf = input.clone();
            b.iter(|| {
                plan.forward(&mut buf).unwrap();
                std::hint::black_box(&buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", n), &n, |b, _| {
            let mut buf = input.clone();
            b.iter(|| {
                plan.forward(&mut buf).unwrap();
                plan.inverse(&mut buf).unwrap();
                std::hint::black_box(&buf);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
