//! EmuBee emulation cost: quantization with and without the Eq. (2)
//! α optimizer, per OFDM window and per ZigBee symbol burst.

use criterion::{criterion_group, criterion_main, Criterion};
use ctjam_phy::emulation::{optimize_alpha, EmulationConfig, Emulator};
use ctjam_phy::qam::Qam64;
use ctjam_phy::wifi::ofdm::OfdmModulator;
use ctjam_phy::zigbee::oqpsk::OqpskModulator;

fn bench_emulation(c: &mut Criterion) {
    let modulator = OqpskModulator::with_oversampling(10);
    let burst = modulator.modulate_symbols(&[0x3, 0xA, 0x5, 0xC]);
    let qam = Qam64::new();
    let spectrum = OfdmModulator::with_cyclic_prefix(false).analyze_window(&burst[..64]);

    c.bench_function("optimize_alpha_48_targets", |b| {
        b.iter(|| std::hint::black_box(optimize_alpha(&qam, &spectrum)));
    });

    let optimized = Emulator::new(EmulationConfig::default());
    let fixed = Emulator::new(EmulationConfig {
        optimize_alpha: false,
        ..EmulationConfig::default()
    });
    c.bench_function("emulate_burst_optimized", |b| {
        b.iter(|| std::hint::black_box(optimized.emulate(&burst)));
    });
    c.bench_function("emulate_burst_fixed_alpha", |b| {
        b.iter(|| std::hint::black_box(fixed.emulate(&burst)));
    });
}

criterion_group!(benches, bench_emulation);
criterion_main!(benches);
