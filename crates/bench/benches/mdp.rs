//! MDP solver costs: building the anti-jamming MDP and solving it by
//! value and policy iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctjam_mdp::antijam::{AntijamMdp, AntijamParams, JammerMode};
use ctjam_mdp::solve::policy_iteration::policy_iteration;
use ctjam_mdp::solve::value_iteration::value_iteration;

fn bench_mdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("antijam_mdp");
    for &cycle in &[4usize, 8, 16] {
        let params = AntijamParams {
            sweep_cycle: cycle,
            jammer_mode: JammerMode::RandomPower,
            ..AntijamParams::default()
        };
        group.bench_with_input(BenchmarkId::new("build", cycle), &params, |b, p| {
            b.iter(|| std::hint::black_box(AntijamMdp::new(p.clone())));
        });
        let mdp = AntijamMdp::new(params.clone());
        group.bench_with_input(
            BenchmarkId::new("value_iteration", cycle),
            &cycle,
            |b, _| {
                b.iter(|| std::hint::black_box(value_iteration(mdp.tabular(), 0.9, 1e-9, 100_000)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("policy_iteration", cycle),
            &cycle,
            |b, _| {
                b.iter(|| std::hint::black_box(policy_iteration(mdp.tabular(), 0.9, 1e-9, 1_000)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mdp);
criterion_main!(benches);
