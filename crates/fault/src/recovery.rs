//! Recovery policies: bounded retry with backoff + jitter, and
//! per-exchange deadlines.
//!
//! Everything here works in **simulated seconds** (the suite's time
//! base), not wall-clock time: a retry "waits" by charging backoff
//! seconds to the slot's overhead budget, and a [`Deadline`] expires
//! when the charged time exceeds its budget.

use rand::Rng;

/// Bounded retry with exponential backoff and multiplicative jitter.
///
/// The jitter draw comes from whatever RNG the caller passes in — for
/// fault-free runs that is never invoked, so attaching a policy to a
/// code path costs nothing until an exchange actually fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt, in seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff, in seconds.
    pub max_backoff_s: f64,
    /// Uniform jitter as a fraction of the backoff: the charged wait is
    /// `backoff * (1 ± jitter_frac)`.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 0.05,
            backoff_factor: 2.0,
            max_backoff_s: 1.0,
            jitter_frac: 0.1,
        }
    }
}

/// Result of driving an exchange through a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryOutcome<T> {
    /// The exchange succeeded.
    Succeeded {
        /// The successful attempt's value.
        value: T,
        /// How many attempts were made, including the successful one.
        attempts: u32,
        /// Total backoff seconds charged before the success.
        backoff_s: f64,
    },
    /// Every attempt failed; the caller should fall back (e.g. to the
    /// control-channel rendezvous).
    Exhausted {
        /// How many attempts were made (`max_attempts`).
        attempts: u32,
        /// Total backoff seconds charged across all retries.
        backoff_s: f64,
    },
}

impl<T> RetryOutcome<T> {
    /// Whether the exchange ultimately succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, RetryOutcome::Succeeded { .. })
    }

    /// Total backoff seconds charged, success or not.
    pub fn backoff_s(&self) -> f64 {
        match self {
            RetryOutcome::Succeeded { backoff_s, .. } => *backoff_s,
            RetryOutcome::Exhausted { backoff_s, .. } => *backoff_s,
        }
    }

    /// How many attempts were made.
    pub fn attempts(&self) -> u32 {
        match self {
            RetryOutcome::Succeeded { attempts, .. } => *attempts,
            RetryOutcome::Exhausted { attempts, .. } => *attempts,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff charged after failed attempt number
    /// `attempt` (1-based). Capped at `max_backoff_s` before jitter.
    pub fn backoff_s<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> f64 {
        let exp = attempt.saturating_sub(1);
        let raw = self.base_backoff_s * self.backoff_factor.powi(exp as i32);
        let capped = raw.min(self.max_backoff_s);
        if self.jitter_frac > 0.0 {
            capped * (1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac))
        } else {
            capped
        }
    }

    /// Drives `attempt` until it returns `Some` or attempts run out,
    /// charging jittered backoff between failures.
    ///
    /// The closure receives the 1-based attempt number.
    pub fn run<T, R, F>(&self, rng: &mut R, mut attempt: F) -> RetryOutcome<T>
    where
        R: Rng + ?Sized,
        F: FnMut(u32) -> Option<T>,
    {
        let max = self.max_attempts.max(1);
        let mut backoff_s = 0.0;
        for n in 1..=max {
            if let Some(value) = attempt(n) {
                return RetryOutcome::Succeeded {
                    value,
                    attempts: n,
                    backoff_s,
                };
            }
            if n < max {
                backoff_s += self.backoff_s(n, rng);
            }
        }
        RetryOutcome::Exhausted {
            attempts: max,
            backoff_s,
        }
    }
}

/// A simulated-time budget for one exchange.
///
/// Charge elapsed seconds with [`Deadline::charge`]; once the total
/// exceeds the budget the deadline reports expired and the caller
/// abandons the exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    budget_s: f64,
    elapsed_s: f64,
}

impl Deadline {
    /// A deadline allowing `budget_s` simulated seconds.
    ///
    /// # Panics
    ///
    /// Panics if `budget_s` is negative or non-finite.
    pub fn new(budget_s: f64) -> Self {
        assert!(
            budget_s.is_finite() && budget_s >= 0.0,
            "deadline budget {budget_s} must be finite and non-negative"
        );
        Deadline {
            budget_s,
            elapsed_s: 0.0,
        }
    }

    /// Charges `seconds` of simulated time against the budget and
    /// returns whether the deadline is still alive afterwards.
    pub fn charge(&mut self, seconds: f64) -> bool {
        self.elapsed_s += seconds.max(0.0);
        !self.expired()
    }

    /// Whether the charged time has exceeded the budget.
    pub fn expired(&self) -> bool {
        self.elapsed_s > self.budget_s
    }

    /// Simulated seconds left (zero once expired).
    pub fn remaining_s(&self) -> f64 {
        (self.budget_s - self.elapsed_s).max(0.0)
    }

    /// Simulated seconds charged so far.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn retry_succeeds_first_try_without_backoff() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = RetryPolicy::default().run(&mut rng, |_| Some(7u32));
        assert_eq!(
            out,
            RetryOutcome::Succeeded {
                value: 7,
                attempts: 1,
                backoff_s: 0.0
            }
        );
    }

    #[test]
    fn retry_charges_backoff_between_failures() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = RetryPolicy::default().run(&mut rng, |n| if n >= 3 { Some(()) } else { None });
        assert!(out.is_success());
        assert_eq!(out.attempts(), 3);
        // Two backoffs: ~0.05 and ~0.10, each within ±10% jitter.
        let b = out.backoff_s();
        assert!((0.135..=0.165).contains(&b), "backoff {b}");
    }

    #[test]
    fn retry_exhausts_after_max_attempts() {
        let mut rng = StdRng::seed_from_u64(3);
        let out: RetryOutcome<()> = RetryPolicy::default().run(&mut rng, |_| None);
        assert!(!out.is_success());
        assert_eq!(out.attempts(), 3);
        assert!(out.backoff_s() > 0.0);
    }

    #[test]
    fn retry_with_zero_max_attempts_still_tries_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: RetryOutcome<()> = policy.run(&mut rng, |_| {
            calls += 1;
            None
        });
        assert_eq!(calls, 1);
        assert_eq!(out.attempts(), 1);
        assert_eq!(out.backoff_s(), 0.0);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!((policy.backoff_s(1, &mut rng) - 0.05).abs() < 1e-12);
        assert!((policy.backoff_s(2, &mut rng) - 0.10).abs() < 1e-12);
        assert!((policy.backoff_s(3, &mut rng) - 0.20).abs() < 1e-12);
        // Far past the cap.
        assert!((policy.backoff_s(20, &mut rng) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_stays_within_fraction() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let b = policy.backoff_s(1, &mut rng);
            assert!((0.045..=0.055).contains(&b), "backoff {b}");
        }
    }

    #[test]
    fn deadline_expires_after_budget() {
        let mut d = Deadline::new(1.0);
        assert!(d.charge(0.6));
        assert!(!d.expired());
        assert!((d.remaining_s() - 0.4).abs() < 1e-12);
        assert!(!d.charge(0.6));
        assert!(d.expired());
        assert_eq!(d.remaining_s(), 0.0);
        assert!((d.elapsed_s() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn deadline_ignores_negative_charges() {
        let mut d = Deadline::new(0.5);
        assert!(d.charge(-3.0));
        assert_eq!(d.elapsed_s(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_deadline_budget_rejected() {
        let _ = Deadline::new(-1.0);
    }
}
