//! Seeded, deterministic fault injection for the CTJam suite.
//!
//! The paper's whole premise is operating under adversarial degradation —
//! EmuBee corrupts ZigBee frames so receivers burn decode time on invalid
//! packets (§II) — yet a simulator is only trustworthy under misbehaviour
//! if the misbehaviour itself is reproducible. This crate provides:
//!
//! * [`FaultPoint`] — the injection trait. Every hook has a no-op default
//!   body and [`NullFaultPlan`] implements none of them, so a run
//!   monomorphised over `NullFaultPlan` compiles to exactly the
//!   fault-free loop (the same zero-cost pattern as
//!   `ctjam_telemetry::NullSink`).
//! * [`FaultPlan`] — a seeded schedule of fault events keyed by
//!   [`FaultSite`]. The plan carries its **own** RNG stream, derived only
//!   from its seed, so attaching a plan never perturbs the run's main RNG:
//!   a plan whose rates are all zero is bit-exact with no plan at all
//!   (asserted by `tests/chaos.rs`), and any chaos failure replays from
//!   the `(run seed, fault seed, rates)` triple recorded in the run
//!   manifest.
//! * [`recovery`] — the policies the faults demand: bounded
//!   [`RetryPolicy`] with exponential backoff + jitter, and per-exchange
//!   [`Deadline`]s.
//!
//! # Example
//!
//! ```
//! use ctjam_fault::{FaultPlan, FaultPoint, FaultRates, FaultSite};
//!
//! let rates = FaultRates::zero().with(FaultSite::FrameCorruption, 1.0);
//! let mut plan = FaultPlan::new(7, rates);
//! let mut psdu = vec![0xAA; 16];
//! assert!(plan.corrupt_bytes(FaultSite::FrameCorruption, &mut psdu));
//! assert_eq!(plan.fired(FaultSite::FrameCorruption), 1);
//! assert_ne!(psdu, vec![0xAA; 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod recovery;

pub use plan::{FaultPlan, FaultPoint, FaultRates, FaultSite, NullFaultPlan, NUM_FAULT_SITES};
pub use recovery::{Deadline, RetryOutcome, RetryPolicy};
