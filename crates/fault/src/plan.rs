//! Fault sites, the injection trait, and the seeded fault plan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everywhere the suite can inject a fault.
///
/// Sites are stable identifiers: a fault plan is replayable only if the
/// meaning of each site never changes, so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FaultSite {
    /// Bit-flips in a serialized MAC frame beyond what the channel model
    /// produces (`ctjam-net`, star data path).
    FrameCorruption = 0,
    /// A control/negotiation exchange is lost outright.
    ControlDrop = 1,
    /// A control/negotiation exchange is duplicated (the peripheral
    /// answers twice, costing a second poll).
    ControlDuplicate = 2,
    /// A control/negotiation exchange is delayed by a backoff-scale
    /// stall before completing.
    ControlDelay = 3,
    /// The hub stalls at the start of a slot (GC pause, flash write,
    /// watchdog reset — dead air either way).
    HubStall = 4,
    /// A telemetry sink write fails (`ctjam-core::runner` demotes the
    /// sink to a null sink instead of aborting).
    SinkWrite = 5,
    /// The per-slot decision missed its deadline; the runner falls back
    /// to repeating the previous slot's decision.
    DeadlineOverrun = 6,
    /// A NaN/Inf is injected into the DQN gradient (`ctjam-dqn` skips
    /// the poisoned optimizer step).
    GradientPoison = 7,
    /// A stored replay-buffer transition is overwritten with a poisoned
    /// value.
    ReplayCorruption = 8,
}

/// Number of distinct [`FaultSite`]s.
pub const NUM_FAULT_SITES: usize = 9;

impl FaultSite {
    /// Every site, in `repr` order.
    pub const ALL: [FaultSite; NUM_FAULT_SITES] = [
        FaultSite::FrameCorruption,
        FaultSite::ControlDrop,
        FaultSite::ControlDuplicate,
        FaultSite::ControlDelay,
        FaultSite::HubStall,
        FaultSite::SinkWrite,
        FaultSite::DeadlineOverrun,
        FaultSite::GradientPoison,
        FaultSite::ReplayCorruption,
    ];

    /// Stable snake_case name (manifest keys, counter labels).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::FrameCorruption => "frame_corruption",
            FaultSite::ControlDrop => "control_drop",
            FaultSite::ControlDuplicate => "control_duplicate",
            FaultSite::ControlDelay => "control_delay",
            FaultSite::HubStall => "hub_stall",
            FaultSite::SinkWrite => "sink_write",
            FaultSite::DeadlineOverrun => "deadline_overrun",
            FaultSite::GradientPoison => "gradient_poison",
            FaultSite::ReplayCorruption => "replay_corruption",
        }
    }
}

/// Receiver for fault-injection queries at instrumented call sites.
///
/// Every method has a "nothing happens" default body, and
/// [`NullFaultPlan`] implements none of them, so a hot loop
/// monomorphised over `NullFaultPlan` compiles down to the fault-free
/// code — the same zero-cost contract as `ctjam_telemetry::EventSink`.
///
/// Call sites gate any work that exists only to *feed* the plan (e.g.
/// serializing a frame so its bytes can be corrupted) behind
/// [`FaultPoint::is_enabled`].
pub trait FaultPoint {
    /// Whether any fault can ever fire. `false` lets call sites skip
    /// fault-only work entirely.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Rolls the site's dice once; `true` means the fault fires now.
    fn should_fire(&mut self, site: FaultSite) -> bool {
        let _ = site;
        false
    }

    /// Rolls the site's dice and, on a hit, flips one random bit of
    /// `bytes`. Returns whether a corruption happened.
    fn corrupt_bytes(&mut self, site: FaultSite, bytes: &mut [u8]) -> bool {
        let _ = (site, bytes);
        false
    }

    /// A poisoned scalar for the site (NaN/Inf). Does **not** roll the
    /// dice — gate with [`FaultPoint::should_fire`].
    fn poison(&mut self, site: FaultSite) -> f64 {
        let _ = site;
        0.0
    }

    /// A uniformly random index in `0..len` from the plan's own stream
    /// (e.g. which replay slot to corrupt). Does not roll the dice.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `len == 0`.
    fn pick_index(&mut self, site: FaultSite, len: usize) -> usize {
        let _ = (site, len);
        0
    }

    /// How many times the site has fired so far.
    fn fired(&self, site: FaultSite) -> u64 {
        let _ = site;
        0
    }

    /// Total faults fired across all sites.
    fn total_fired(&self) -> u64 {
        0
    }
}

/// The zero-cost plan: injects nothing, compiles away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFaultPlan;

impl FaultPoint for NullFaultPlan {}

// Allow passing `&mut plan` where a plan is consumed by value-generic code.
impl<F: FaultPoint + ?Sized> FaultPoint for &mut F {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
    fn should_fire(&mut self, site: FaultSite) -> bool {
        (**self).should_fire(site)
    }
    fn corrupt_bytes(&mut self, site: FaultSite, bytes: &mut [u8]) -> bool {
        (**self).corrupt_bytes(site, bytes)
    }
    fn poison(&mut self, site: FaultSite) -> f64 {
        (**self).poison(site)
    }
    fn pick_index(&mut self, site: FaultSite, len: usize) -> usize {
        (**self).pick_index(site, len)
    }
    fn fired(&self, site: FaultSite) -> u64 {
        (**self).fired(site)
    }
    fn total_fired(&self) -> u64 {
        (**self).total_fired()
    }
}

/// Per-site fire probabilities of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates([f64; NUM_FAULT_SITES]);

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates::zero()
    }
}

impl FaultRates {
    /// All sites at probability zero (a plan that never fires — and is
    /// bit-exact with running no plan at all).
    pub fn zero() -> Self {
        FaultRates([0.0; NUM_FAULT_SITES])
    }

    /// Every site at the same probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn uniform(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault rate {p} not in [0, 1]");
        FaultRates([p; NUM_FAULT_SITES])
    }

    /// Returns a copy with one site's probability replaced.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn with(mut self, site: FaultSite, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault rate {p} not in [0, 1]");
        self.0[site as usize] = p;
        self
    }

    /// The probability configured for a site.
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.0[site as usize]
    }

    /// Whether every site is at probability zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&p| p == 0.0)
    }

    /// Stable one-line description for run manifests
    /// (`site=rate` pairs for the non-zero sites, or `"none"`).
    pub fn describe(&self) -> String {
        let parts: Vec<String> = FaultSite::ALL
            .iter()
            .filter(|&&s| self.rate(s) > 0.0)
            .map(|&s| format!("{}={}", s.name(), self.rate(s)))
            .collect();
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(",")
        }
    }
}

/// A seeded, deterministic schedule of fault events.
///
/// The plan owns a private `StdRng` derived only from its seed, so its
/// dice rolls never consume the run's main RNG stream: enabling a plan
/// changes the run **only** through the faults that actually fire. In
/// particular a plan with [`FaultRates::zero`] is bit-exact with the
/// fault-free path, which is what makes every chaos failure a one-line
/// repro: re-create the plan from the `(seed, rates)` pair in the run
/// manifest and re-run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    rng: StdRng,
    fired: [u64; NUM_FAULT_SITES],
    flip: bool,
}

impl FaultPlan {
    /// Creates a plan from its replay triple: seed and per-site rates.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            seed,
            rates,
            // Decorrelate from run seeds, which conventionally feed
            // StdRng::seed_from_u64 directly.
            rng: StdRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17),
            fired: [0; NUM_FAULT_SITES],
            flip: false,
        }
    }

    /// The seed the plan was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured per-site rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Per-site fired counters in [`FaultSite::ALL`] order.
    pub fn fired_counts(&self) -> [u64; NUM_FAULT_SITES] {
        self.fired
    }
}

impl FaultPoint for FaultPlan {
    fn is_enabled(&self) -> bool {
        true
    }

    fn should_fire(&mut self, site: FaultSite) -> bool {
        let p = self.rates.rate(site);
        // Zero-rate sites must not consume the plan's stream either, so
        // two plans differing only in disabled sites stay comparable.
        if p <= 0.0 {
            return false;
        }
        if self.rng.gen_bool(p) {
            self.fired[site as usize] += 1;
            true
        } else {
            false
        }
    }

    fn corrupt_bytes(&mut self, site: FaultSite, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() || !self.should_fire(site) {
            return false;
        }
        let byte = self.rng.gen_range(0..bytes.len());
        let bit = self.rng.gen_range(0..8u32);
        bytes[byte] ^= 1 << bit;
        true
    }

    fn poison(&mut self, site: FaultSite) -> f64 {
        let _ = site;
        // Alternate NaN and Inf so both non-finite classes get exercised.
        self.flip = !self.flip;
        if self.flip {
            f64::NAN
        } else {
            f64::INFINITY
        }
    }

    fn pick_index(&mut self, site: FaultSite, len: usize) -> usize {
        let _ = site;
        assert!(len > 0, "cannot pick an index from an empty range");
        self.rng.gen_range(0..len)
    }

    fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site as usize]
    }

    fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_plan_is_inert() {
        let mut null = NullFaultPlan;
        assert!(!null.is_enabled());
        let mut bytes = vec![1, 2, 3];
        for site in FaultSite::ALL {
            assert!(!null.should_fire(site));
            assert!(!null.corrupt_bytes(site, &mut bytes));
            assert_eq!(null.fired(site), 0);
        }
        assert_eq!(bytes, vec![1, 2, 3]);
        assert_eq!(null.total_fired(), 0);
    }

    #[test]
    fn plan_is_deterministic_from_its_seed() {
        let rates = FaultRates::uniform(0.5);
        let mut a = FaultPlan::new(42, rates);
        let mut b = FaultPlan::new(42, rates);
        for _ in 0..200 {
            assert_eq!(
                a.should_fire(FaultSite::ControlDrop),
                b.should_fire(FaultSite::ControlDrop)
            );
        }
        assert_eq!(a.fired_counts(), b.fired_counts());
    }

    #[test]
    fn zero_rate_sites_never_fire_and_never_draw() {
        let rates = FaultRates::zero().with(FaultSite::HubStall, 1.0);
        let mut a = FaultPlan::new(9, rates);
        let mut b = FaultPlan::new(9, rates);
        // Interleave zero-rate queries into one plan only; streams must
        // stay aligned because zero-rate sites are draw-free.
        for _ in 0..100 {
            assert!(!a.should_fire(FaultSite::ControlDrop));
            assert!(a.should_fire(FaultSite::HubStall));
            assert!(b.should_fire(FaultSite::HubStall));
        }
        assert_eq!(a.fired(FaultSite::HubStall), b.fired(FaultSite::HubStall));
        assert_eq!(a.fired(FaultSite::ControlDrop), 0);
    }

    #[test]
    fn fire_rate_tracks_configured_probability() {
        let mut plan = FaultPlan::new(7, FaultRates::uniform(0.3));
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| plan.should_fire(FaultSite::FrameCorruption))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
        assert_eq!(plan.fired(FaultSite::FrameCorruption), hits as u64);
        assert_eq!(plan.total_fired(), hits as u64);
    }

    #[test]
    fn corrupt_bytes_flips_exactly_one_bit() {
        let mut plan = FaultPlan::new(1, FaultRates::zero().with(FaultSite::FrameCorruption, 1.0));
        let original = vec![0x55u8; 32];
        for _ in 0..50 {
            let mut bytes = original.clone();
            assert!(plan.corrupt_bytes(FaultSite::FrameCorruption, &mut bytes));
            let flipped: u32 = bytes
                .iter()
                .zip(&original)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1);
        }
        // Empty buffers are left alone without rolling the dice.
        assert!(!plan.corrupt_bytes(FaultSite::FrameCorruption, &mut []));
    }

    #[test]
    fn poison_alternates_nan_and_inf() {
        let mut plan = FaultPlan::new(3, FaultRates::uniform(1.0));
        let a = plan.poison(FaultSite::GradientPoison);
        let b = plan.poison(FaultSite::GradientPoison);
        assert!(a.is_nan());
        assert!(b.is_infinite());
    }

    #[test]
    fn pick_index_is_in_range() {
        let mut plan = FaultPlan::new(5, FaultRates::uniform(1.0));
        for len in 1..20 {
            for _ in 0..20 {
                assert!(plan.pick_index(FaultSite::ReplayCorruption, len) < len);
            }
        }
    }

    #[test]
    fn rates_builder_and_description() {
        let rates = FaultRates::zero()
            .with(FaultSite::ControlDrop, 0.25)
            .with(FaultSite::GradientPoison, 0.1);
        assert_eq!(rates.rate(FaultSite::ControlDrop), 0.25);
        assert_eq!(rates.rate(FaultSite::HubStall), 0.0);
        assert!(!rates.is_zero());
        assert_eq!(rates.describe(), "control_drop=0.25,gradient_poison=0.1");
        assert_eq!(FaultRates::zero().describe(), "none");
        assert!(FaultRates::zero().is_zero());
    }

    #[test]
    #[should_panic]
    fn out_of_range_rate_rejected() {
        let _ = FaultRates::zero().with(FaultSite::ControlDrop, 1.5);
    }

    #[test]
    #[should_panic]
    fn pick_index_from_empty_range_panics() {
        FaultPlan::new(0, FaultRates::uniform(1.0)).pick_index(FaultSite::ReplayCorruption, 0);
    }
}
