//! Resumable campaign progress: the checkpointed prefix of a campaign.

use crate::engine::EpisodeOutcome;
use ctjam_core::metrics::Metrics;
use ctjam_dqn::checkpoint::{self, CheckpointError};
use ctjam_telemetry::{RunHealth, ShardSink};
use std::path::Path;

/// Completed-episode state captured mid-campaign by
/// [`crate::Fleet::run_partial`], consumable by [`crate::Fleet::resume`].
///
/// Carries the merged telemetry alongside the outcomes because the
/// histograms are not reconstructible from per-episode summaries — the
/// resumed run merges fresh shard telemetry into this checkpointed
/// aggregate, and partition invariance makes the combined result
/// bit-exact with an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignProgress {
    /// Fingerprint of the spec that produced this progress
    /// ([`crate::CampaignSpec::fingerprint`]).
    pub fingerprint: u64,
    /// Outcomes of the episodes already completed.
    pub outcomes: Vec<EpisodeOutcome>,
    /// Merged telemetry of the completed episodes.
    pub telemetry: ShardSink,
}

impl CampaignProgress {
    /// Appends the raw payload encoding (no container framing) to
    /// `payload` — the inverse of [`CampaignProgress::decode_payload`].
    /// Exposed so higher layers (the scenario campaign runner) can
    /// embed several progress records in one sealed checkpoint.
    pub fn encode_payload(&self, payload: &mut Vec<u8>) {
        payload.extend_from_slice(&self.fingerprint.to_le_bytes());
        payload.extend_from_slice(&(self.outcomes.len() as u64).to_le_bytes());
        for o in &self.outcomes {
            payload.extend_from_slice(&o.episode.to_le_bytes());
            payload.extend_from_slice(&o.seed.to_le_bytes());
            for field in o.metrics.to_array() {
                payload.extend_from_slice(&field.to_le_bytes());
            }
            payload.extend_from_slice(&o.total_reward.to_bits().to_le_bytes());
            for field in [
                o.health.sink_write_failures,
                o.health.deadline_overruns,
                o.health.skipped_train_steps,
                o.health.corrupted_replay_entries,
                o.health.faults_fired,
            ] {
                payload.extend_from_slice(&field.to_le_bytes());
            }
            payload.push(o.health.sink_demoted as u8);
        }
        self.telemetry.encode(payload);
    }

    /// Decodes one progress record from `cursor`, advancing it past the
    /// consumed bytes — the inverse of
    /// [`CampaignProgress::encode_payload`].
    pub fn decode_payload(cursor: &mut &[u8]) -> Result<Self, CheckpointError> {
        let fingerprint = checkpoint::take_u64(cursor)?;
        let count = checkpoint::take_u64(cursor)? as usize;
        if count > 1 << 32 {
            return Err(CheckpointError::Malformed);
        }
        let mut outcomes = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let episode = checkpoint::take_u64(cursor)?;
            let seed = checkpoint::take_u64(cursor)?;
            let mut fields = [0u64; 9];
            for field in fields.iter_mut() {
                *field = checkpoint::take_u64(cursor)?;
            }
            let metrics = Metrics::from_array(fields);
            let total_reward = checkpoint::take_f64(cursor)?;
            let mut health = RunHealth::clean();
            health.sink_write_failures = checkpoint::take_u64(cursor)?;
            health.deadline_overruns = checkpoint::take_u64(cursor)?;
            health.skipped_train_steps = checkpoint::take_u64(cursor)?;
            health.corrupted_replay_entries = checkpoint::take_u64(cursor)?;
            health.faults_fired = checkpoint::take_u64(cursor)?;
            health.sink_demoted = checkpoint::take_bool(cursor)?;
            outcomes.push(EpisodeOutcome {
                episode,
                seed,
                metrics,
                total_reward,
                health,
            });
        }
        let telemetry = ShardSink::decode(cursor).ok_or(CheckpointError::Malformed)?;
        Ok(CampaignProgress {
            fingerprint,
            outcomes,
            telemetry,
        })
    }

    /// Serializes the progress into the suite's standard checkpoint
    /// container (magic + version + checksum, shared with the DQN
    /// checkpoints) at `path`.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        checkpoint::write_checkpoint(path, &payload)
    }

    /// Reads progress written by [`CampaignProgress::save`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let payload = checkpoint::read_checkpoint(path)?;
        let mut cursor = payload.as_slice();
        let progress = CampaignProgress::decode_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(CheckpointError::Malformed);
        }
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignPolicy, CampaignSpec};
    use crate::Fleet;
    use ctjam_core::env::EnvParams;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ctjam_fleet_progress_{tag}.ckpt"))
    }

    #[test]
    fn progress_roundtrips_through_disk() {
        let spec = CampaignSpec {
            name: "progress-unit".into(),
            points: vec![EnvParams::default()],
            seeds: vec![5, 6, 7],
            policy: CampaignPolicy::RandomFh,
            slots: 80,
            kernel: false,
            base_seed: 31337,
            faults: None,
        };
        let progress = Fleet::new().threads(2).run_partial(&spec, 2);
        let path = temp_path("roundtrip");
        progress.save(&path).expect("save");
        let loaded = CampaignProgress::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, progress);
        assert_eq!(
            loaded.telemetry.to_json().to_string_compact(),
            progress.telemetry.to_json().to_string_compact()
        );
    }

    #[test]
    fn load_rejects_a_corrupted_file() {
        let progress = CampaignProgress {
            fingerprint: 1,
            outcomes: Vec::new(),
            telemetry: ShardSink::new(),
        };
        let path = temp_path("corrupt");
        progress.save(&path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        assert!(CampaignProgress::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
