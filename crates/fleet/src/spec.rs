//! Campaign descriptions: the grid, the policy, the seeds, the faults.

use ctjam_core::env::EnvParams;
use ctjam_core::runner::SweepBudget;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_fault::FaultRates;
use ctjam_telemetry::manifest::fnv1a_64;
use std::fmt;
use std::sync::Arc;

/// One SplitMix64 mixing step (the same finalizer the vendored `rand`
/// uses for `seed_from_u64` expansion). Chaining it over the campaign's
/// structural coordinates gives every episode a well-separated seed from
/// a single base value.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fault injection carried by a campaign: every episode gets its own
/// [`ctjam_fault::FaultPlan`] seeded from `seed` and the episode index,
/// so the chaos schedule is independent of shard assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignFaults {
    /// Base seed of the per-episode fault-plan streams.
    pub seed: u64,
    /// Per-site firing rates shared by every episode.
    pub rates: FaultRates,
}

/// The defender evaluated (or trained) in every episode of a campaign.
#[derive(Clone)]
pub enum CampaignPolicy {
    /// One frozen greedy DQN policy shared read-only across all shards —
    /// the fleet's headline mode: evaluate a trained network over the
    /// whole grid without cloning weights.
    SharedGreedy(Arc<GreedyPolicy>),
    /// The random frequency-hopping baseline (Fig. 11a).
    RandomFh,
    /// The passive frequency-hopping baseline (hop only after a jam).
    PassiveFh,
    /// The no-defense floor.
    NoDefense,
    /// The random-FH baseline wrapped in decoy (bait) transmissions:
    /// each slot, with the carried probability, a fake transmission on
    /// another channel draws sensing jammers off the victim (at the
    /// environment's `l_decoy` cost per decoy).
    DecoyRandomFh(f64),
    /// Train a fresh paper-default DQN per episode, then evaluate it;
    /// metrics and reward come from the evaluation window, health and
    /// telemetry cover both phases.
    TrainDqn(SweepBudget),
}

impl fmt::Debug for CampaignPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Summarize the shared network instead of dumping weights.
            CampaignPolicy::SharedGreedy(p) => f
                .debug_struct("SharedGreedy")
                .field("input_size", &p.input_size())
                .field("num_actions", &p.num_actions())
                .finish(),
            CampaignPolicy::RandomFh => write!(f, "RandomFh"),
            CampaignPolicy::PassiveFh => write!(f, "PassiveFh"),
            CampaignPolicy::NoDefense => write!(f, "NoDefense"),
            CampaignPolicy::DecoyRandomFh(rate) => {
                f.debug_tuple("DecoyRandomFh").field(rate).finish()
            }
            CampaignPolicy::TrainDqn(budget) => f.debug_tuple("TrainDqn").field(budget).finish(),
        }
    }
}

/// A full campaign: the `EnvParams` × seed grid, the policy, the episode
/// length, the environment flavour, and optional fault injection.
///
/// Episode `e` runs point `e / seeds.len()` with replicate seed
/// `seeds[e % seeds.len()]`; its RNG stream derives from
/// [`CampaignSpec::episode_seed`]. Results are a pure function of the
/// spec — [`crate::Fleet::run`] with any thread count returns identical
/// bits.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (manifests, logs).
    pub name: String,
    /// Environment grid (one entry per sweep point).
    pub points: Vec<EnvParams>,
    /// Replicate seeds; every point runs once per entry.
    pub seeds: Vec<u64>,
    /// The defender policy every episode runs.
    pub policy: CampaignPolicy,
    /// Slots per episode (ignored by [`CampaignPolicy::TrainDqn`], which
    /// carries its own budget).
    pub slots: usize,
    /// `true` for the MDP-kernel environment, `false` for the concrete
    /// slot-level simulator.
    pub kernel: bool,
    /// Base seed all episode streams derive from.
    pub base_seed: u64,
    /// Optional per-episode fault injection.
    pub faults: Option<CampaignFaults>,
}

impl CampaignSpec {
    /// Total episodes in the grid (`points × seeds`).
    pub fn episodes(&self) -> usize {
        self.points.len() * self.seeds.len()
    }

    /// The environment parameters episode `e` runs.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range (or the seed grid is empty).
    pub fn episode_point(&self, e: usize) -> &EnvParams {
        &self.points[e / self.seeds.len()]
    }

    /// The RNG-stream seed of episode `e`: chained SplitMix64 over
    /// `(base_seed, point index, replicate seed)`. Deriving rather than
    /// sharing streams is what makes results independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range (or the seed grid is empty).
    pub fn episode_seed(&self, e: usize) -> u64 {
        let point_idx = e / self.seeds.len();
        let replicate = self.seeds[e % self.seeds.len()];
        let a = splitmix64(self.base_seed);
        let b = splitmix64(a ^ point_idx as u64);
        splitmix64(b ^ replicate)
    }

    /// The fault-plan seed of episode `e` (decorrelated from the
    /// episode's main RNG stream by a distinct tag).
    pub fn plan_seed(&self, faults: &CampaignFaults, e: usize) -> u64 {
        splitmix64(splitmix64(faults.seed ^ 0xFA17_F1EE_7000_0000) ^ e as u64)
    }

    /// FNV-1a fingerprint of everything that determines the campaign's
    /// results — grid, seeds, policy (including shared-network weights),
    /// slots, flavour, faults. [`crate::Fleet::resume`] refuses progress
    /// checkpoints whose fingerprint disagrees, so a resumed campaign can
    /// never silently mix episodes from two different specs.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(self.name.as_bytes());
        for point in &self.points {
            buf.extend_from_slice(format!("{point:?}").as_bytes());
        }
        for &seed in &self.seeds {
            buf.extend_from_slice(&seed.to_le_bytes());
        }
        buf.extend_from_slice(&(self.slots as u64).to_le_bytes());
        buf.push(self.kernel as u8);
        buf.extend_from_slice(&self.base_seed.to_le_bytes());
        match &self.faults {
            Some(f) => {
                buf.push(1);
                buf.extend_from_slice(&f.seed.to_le_bytes());
                buf.extend_from_slice(f.rates.describe().as_bytes());
            }
            None => buf.push(0),
        }
        match &self.policy {
            CampaignPolicy::SharedGreedy(policy) => {
                buf.push(0);
                buf.extend_from_slice(format!("{:?}", policy.config()).as_bytes());
                for w in policy.network().flatten_params() {
                    buf.extend_from_slice(&w.to_bits().to_le_bytes());
                }
            }
            CampaignPolicy::RandomFh => buf.push(1),
            CampaignPolicy::PassiveFh => buf.push(2),
            CampaignPolicy::NoDefense => buf.push(3),
            CampaignPolicy::DecoyRandomFh(rate) => {
                buf.push(5);
                buf.extend_from_slice(&rate.to_bits().to_le_bytes());
            }
            CampaignPolicy::TrainDqn(budget) => {
                buf.push(4);
                buf.extend_from_slice(&(budget.train_slots as u64).to_le_bytes());
                buf.extend_from_slice(&(budget.eval_slots as u64).to_le_bytes());
            }
        }
        fnv1a_64(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(base_seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            points: vec![EnvParams::default(); 3],
            seeds: vec![1, 2],
            policy: CampaignPolicy::RandomFh,
            slots: 10,
            kernel: false,
            base_seed,
            faults: None,
        }
    }

    #[test]
    fn episode_seeds_are_distinct_and_stable() {
        let s = spec(42);
        let seeds: Vec<u64> = (0..s.episodes()).map(|e| s.episode_seed(e)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "episode seed collision");
        assert_eq!(
            seeds,
            (0..s.episodes())
                .map(|e| s.episode_seed(e))
                .collect::<Vec<_>>()
        );
        // A different base seed moves every stream.
        let other = spec(43);
        assert!((0..s.episodes()).all(|e| s.episode_seed(e) != other.episode_seed(e)));
    }

    #[test]
    fn fingerprint_tracks_every_result_relevant_field() {
        let base = spec(42);
        let fp = base.fingerprint();
        assert_eq!(fp, spec(42).fingerprint(), "fingerprint must be stable");
        let mut changed = spec(42);
        changed.slots = 11;
        assert_ne!(fp, changed.fingerprint());
        let mut changed = spec(42);
        changed.kernel = true;
        assert_ne!(fp, changed.fingerprint());
        let mut changed = spec(42);
        changed.seeds.push(3);
        assert_ne!(fp, changed.fingerprint());
        let mut changed = spec(42);
        changed.policy = CampaignPolicy::NoDefense;
        assert_ne!(fp, changed.fingerprint());
        let mut half = spec(42);
        half.policy = CampaignPolicy::DecoyRandomFh(0.5);
        let mut quarter = spec(42);
        quarter.policy = CampaignPolicy::DecoyRandomFh(0.25);
        assert_ne!(fp, half.fingerprint());
        assert_ne!(half.fingerprint(), quarter.fingerprint());
        let mut jammed = spec(42);
        jammed.points[0].adversary = ctjam_core::adversary::AdversaryConfig::reactive(8.0);
        assert_ne!(fp, jammed.fingerprint(), "adversary must move the print");
        let mut changed = spec(42);
        changed.faults = Some(CampaignFaults {
            seed: 7,
            rates: FaultRates::zero(),
        });
        assert_ne!(fp, changed.fingerprint());
        assert_ne!(fp, spec(43).fingerprint());
    }

    #[test]
    fn debug_of_shared_policy_does_not_dump_weights() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let agent =
            ctjam_dqn::agent::DqnAgent::new(ctjam_dqn::config::DqnConfig::default(), &mut rng);
        let policy = CampaignPolicy::SharedGreedy(Arc::new(GreedyPolicy::from_agent(&agent)));
        let printed = format!("{policy:?}");
        assert!(printed.contains("SharedGreedy"));
        assert!(
            printed.len() < 200,
            "Debug must summarize, not dump: {printed}"
        );
    }
}
