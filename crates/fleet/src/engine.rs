//! The campaign engine: schedules a [`CampaignSpec`] onto the shard
//! pool and reduces per-shard results.

use crate::progress::CampaignProgress;
use crate::shared::SharedPolicyDefender;
use crate::spec::{CampaignPolicy, CampaignSpec};
use ctjam_core::defender::{Defender, DqnDefender, NoDefense, PassiveFh, RandomFh, WithDecoys};
use ctjam_core::metrics::Metrics;
use ctjam_core::pool;
use ctjam_core::runner::{EpisodeReport, RunBuilder};
use ctjam_fault::{FaultPlan, FaultPoint, NullFaultPlan};
use ctjam_telemetry::{EventSink, RunHealth, ShardSink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The result of one episode, keyed by its grid position. Pure function
/// of `(spec, episode)` — never of scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeOutcome {
    /// Episode index in the campaign grid.
    pub episode: u64,
    /// The episode's derived RNG-stream seed (reproduction recipe).
    pub seed: u64,
    /// Table I metrics over the episode's evaluation window.
    pub metrics: Metrics,
    /// Sum of Eq. (5) rewards over the evaluation window.
    pub total_reward: f64,
    /// Fault/recovery accounting (covers training too for
    /// [`CampaignPolicy::TrainDqn`]).
    pub health: RunHealth,
}

/// A completed campaign: per-episode outcomes in grid order plus the
/// campaign-wide reductions.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// One outcome per episode, sorted by episode index.
    pub outcomes: Vec<EpisodeOutcome>,
    /// All episodes' metrics merged.
    pub metrics: Metrics,
    /// All episodes' health merged.
    pub health: RunHealth,
    /// All shards' telemetry merged (bit-exact for any thread count).
    pub telemetry: ShardSink,
    /// Worker shards the run actually used.
    pub shards: usize,
}

impl CampaignResult {
    /// Per-episode goodput (success rate of transmission, Table I `ST`)
    /// in grid order — the vector the thread-count-invariance tests
    /// compare bit-for-bit.
    pub fn goodput_vector(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.metrics.success_rate())
            .collect()
    }
}

/// The campaign engine: a thread-count knob over
/// [`ctjam_core::pool::parallel_fold`].
#[derive(Debug, Clone)]
pub struct Fleet {
    threads: usize,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new()
    }
}

impl Fleet {
    /// An engine using every visible hardware thread.
    pub fn new() -> Self {
        Fleet {
            threads: pool::available_threads(),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1). Results
    /// never depend on this — `tests/determinism.rs` holds the engine to
    /// bit-exactness across 1/2/8 workers.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs the whole campaign.
    pub fn run(&self, spec: &CampaignSpec) -> CampaignResult {
        let episodes: Vec<u64> = (0..spec.episodes() as u64).collect();
        self.run_episodes(spec, &episodes)
    }

    /// Runs only the first `limit` episodes and returns a resumable
    /// progress checkpoint — the "killed mid-campaign" entry point.
    pub fn run_partial(&self, spec: &CampaignSpec, limit: usize) -> CampaignProgress {
        let episodes: Vec<u64> = (0..spec.episodes().min(limit) as u64).collect();
        let partial = self.run_episodes(spec, &episodes);
        CampaignProgress {
            fingerprint: spec.fingerprint(),
            outcomes: partial.outcomes,
            telemetry: partial.telemetry,
        }
    }

    /// Completes a campaign from checkpointed progress: runs every
    /// episode the checkpoint lacks and combines both halves. The result
    /// is bit-exact with an uninterrupted [`Fleet::run`] — outcomes are
    /// pure per-episode, and the telemetry merge is partition-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `progress` was captured from a different spec
    /// (fingerprint mismatch) — resuming across specs would silently mix
    /// incomparable episodes.
    pub fn resume(&self, spec: &CampaignSpec, progress: &CampaignProgress) -> CampaignResult {
        assert_eq!(
            progress.fingerprint,
            spec.fingerprint(),
            "progress checkpoint does not belong to this campaign spec"
        );
        let done: std::collections::HashSet<u64> =
            progress.outcomes.iter().map(|o| o.episode).collect();
        let remaining: Vec<u64> = (0..spec.episodes() as u64)
            .filter(|e| !done.contains(e))
            .collect();
        let mut fresh = self.run_episodes(spec, &remaining);
        let mut outcomes = progress.outcomes.clone();
        outcomes.append(&mut fresh.outcomes);
        outcomes.sort_by_key(|o| o.episode);
        let mut telemetry = progress.telemetry.clone();
        telemetry.merge(&fresh.telemetry);
        let (metrics, health) = reduce_outcomes(&outcomes);
        CampaignResult {
            outcomes,
            metrics,
            health,
            telemetry,
            shards: fresh.shards,
        }
    }

    fn run_episodes(&self, spec: &CampaignSpec, episodes: &[u64]) -> CampaignResult {
        let accumulators = pool::parallel_fold(
            episodes,
            self.threads,
            &|| (ShardSink::new(), Vec::new()),
            &|(sink, outcomes): &mut (ShardSink, Vec<EpisodeOutcome>), _, &e| {
                outcomes.push(run_episode(spec, e, sink));
            },
        );
        let shards = accumulators.len();
        let mut telemetry = ShardSink::new();
        let mut outcomes = Vec::with_capacity(episodes.len());
        for (sink, mut shard_outcomes) in accumulators {
            telemetry.merge(&sink);
            outcomes.append(&mut shard_outcomes);
        }
        outcomes.sort_by_key(|o| o.episode);
        let (metrics, health) = reduce_outcomes(&outcomes);
        CampaignResult {
            outcomes,
            metrics,
            health,
            telemetry,
            shards,
        }
    }
}

fn reduce_outcomes(outcomes: &[EpisodeOutcome]) -> (Metrics, RunHealth) {
    let mut metrics = Metrics::new();
    let mut health = RunHealth::clean();
    for o in outcomes {
        metrics.merge(&o.metrics);
        health.absorb(&o.health);
    }
    (metrics, health)
}

/// Runs episode `e` of `spec` into `sink`. Pure in `(spec, e)`: the
/// episode derives its own RNG stream and (when faults are attached) its
/// own fault plan, so no scheduling decision can reach it.
fn run_episode<S: EventSink>(spec: &CampaignSpec, e: u64, sink: &mut S) -> EpisodeOutcome {
    let seed = spec.episode_seed(e as usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let report = match &spec.faults {
        Some(faults) => {
            // A real plan even at zero rates: the fault crate's contract
            // (tests/chaos.rs) makes a zero-rate plan bit-exact with no
            // plan, and attaching it keeps the chaos path honest.
            let mut plan = FaultPlan::new(spec.plan_seed(faults, e as usize), faults.rates);
            run_policy(spec, e, &mut rng, sink, &mut plan)
        }
        None => run_policy(spec, e, &mut rng, sink, &mut NullFaultPlan),
    };
    EpisodeOutcome {
        episode: e,
        seed,
        metrics: report.metrics,
        total_reward: report.total_reward,
        health: report.health,
    }
}

fn run_policy<S: EventSink, F: FaultPoint>(
    spec: &CampaignSpec,
    e: u64,
    rng: &mut StdRng,
    sink: &mut S,
    fault: &mut F,
) -> EpisodeReport {
    let point = spec.episode_point(e as usize);
    match &spec.policy {
        CampaignPolicy::SharedGreedy(policy) => {
            let mut defender = SharedPolicyDefender::new(Arc::clone(policy), point, rng);
            evaluate(spec, point, &mut defender, spec.slots, rng, sink, fault)
        }
        CampaignPolicy::RandomFh => {
            let mut defender = RandomFh::new(point, rng);
            evaluate(spec, point, &mut defender, spec.slots, rng, sink, fault)
        }
        CampaignPolicy::PassiveFh => {
            let mut defender = PassiveFh::new(point, rng);
            evaluate(spec, point, &mut defender, spec.slots, rng, sink, fault)
        }
        CampaignPolicy::NoDefense => {
            let mut defender = NoDefense::new(point, rng);
            evaluate(spec, point, &mut defender, spec.slots, rng, sink, fault)
        }
        CampaignPolicy::DecoyRandomFh(rate) => {
            let mut defender = WithDecoys::new(RandomFh::new(point, rng), *rate, point);
            evaluate(spec, point, &mut defender, spec.slots, rng, sink, fault)
        }
        CampaignPolicy::TrainDqn(budget) => {
            let mut defender = DqnDefender::paper_default(point, rng);
            let train = RunBuilder::new(point)
                .kernel(spec.kernel)
                .sink(&mut *sink)
                .fault_plan(&mut *fault)
                .train(&mut defender, budget.train_slots, rng);
            defender.set_training(false);
            let mut report = evaluate(
                spec,
                point,
                &mut defender,
                budget.eval_slots,
                rng,
                sink,
                fault,
            );
            // Metrics/reward stay evaluation-only (comparable with the
            // frozen-policy modes); health covers both phases.
            report.health.absorb(&train.health);
            report
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn evaluate<D: Defender + ?Sized, S: EventSink, F: FaultPoint>(
    spec: &CampaignSpec,
    point: &ctjam_core::env::EnvParams,
    defender: &mut D,
    slots: usize,
    rng: &mut StdRng,
    sink: &mut S,
    fault: &mut F,
) -> EpisodeReport {
    RunBuilder::new(point)
        .kernel(spec.kernel)
        .sink(&mut *sink)
        .fault_plan(&mut *fault)
        .evaluate(defender, slots, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignFaults;
    use ctjam_core::env::EnvParams;
    use ctjam_fault::FaultRates;

    fn baseline_spec(policy: CampaignPolicy) -> CampaignSpec {
        let points = [50.0, 200.0]
            .iter()
            .map(|&l_j| EnvParams {
                l_j,
                ..EnvParams::default()
            })
            .collect();
        CampaignSpec {
            name: "engine-unit".into(),
            points,
            seeds: vec![11, 22, 33],
            policy,
            slots: 120,
            kernel: false,
            base_seed: 0xF1EE7,
            faults: None,
        }
    }

    #[test]
    fn campaign_covers_the_whole_grid_in_order() {
        let spec = baseline_spec(CampaignPolicy::RandomFh);
        let result = Fleet::new().threads(3).run(&spec);
        assert_eq!(result.outcomes.len(), 6);
        assert_eq!(
            result
                .outcomes
                .iter()
                .map(|o| o.episode)
                .collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
        assert_eq!(result.metrics.slots(), 6 * 120);
        assert_eq!(result.telemetry.slots, 6 * 120);
        assert_eq!(result.goodput_vector().len(), 6);
    }

    #[test]
    fn partial_plus_resume_equals_uninterrupted() {
        let spec = baseline_spec(CampaignPolicy::PassiveFh);
        let full = Fleet::new().threads(2).run(&spec);
        let progress = Fleet::new().threads(1).run_partial(&spec, 4);
        assert_eq!(progress.outcomes.len(), 4);
        let resumed = Fleet::new().threads(3).resume(&spec, &progress);
        assert_eq!(resumed.outcomes, full.outcomes);
        assert_eq!(resumed.metrics, full.metrics);
        assert_eq!(resumed.telemetry, full.telemetry);
        assert_eq!(
            resumed.telemetry.to_json().to_string_compact(),
            full.telemetry.to_json().to_string_compact()
        );
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn resume_rejects_a_foreign_checkpoint() {
        let spec = baseline_spec(CampaignPolicy::RandomFh);
        let progress = Fleet::new().run_partial(&spec, 2);
        let mut other = baseline_spec(CampaignPolicy::RandomFh);
        other.base_seed ^= 1;
        Fleet::new().resume(&other, &progress);
    }

    #[test]
    fn decoy_policy_runs_and_is_thread_invariant() {
        let mut spec = baseline_spec(CampaignPolicy::DecoyRandomFh(0.5));
        for p in &mut spec.points {
            p.adversary = ctjam_core::adversary::AdversaryConfig::reactive(0.0);
        }
        let one = Fleet::new().threads(1).run(&spec);
        let eight = Fleet::new().threads(8).run(&spec);
        assert_eq!(one.goodput_vector(), eight.goodput_vector());
        assert_eq!(one.metrics.slots(), 6 * 120);
    }

    #[test]
    fn faulted_campaign_reports_fired_faults() {
        let mut spec = baseline_spec(CampaignPolicy::RandomFh);
        spec.faults = Some(CampaignFaults {
            seed: 99,
            rates: FaultRates::uniform(0.2),
        });
        let result = Fleet::new().threads(2).run(&spec);
        assert_eq!(result.metrics.slots(), 6 * 120);
        assert!(
            result.health.faults_fired > 0,
            "a 20% uniform mix must fire somewhere across 720 slots"
        );
    }
}
