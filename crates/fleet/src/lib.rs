//! Fleet-scale sharded campaign engine.
//!
//! The paper's evaluation — and the roadmap's "millions of users" north
//! star — needs cheap, reproducible campaigns of 10⁴–10⁶ independent
//! episodes: a grid of [`ctjam_core::env::EnvParams`] × seeds × one
//! defender policy. This crate schedules such a grid onto
//! [`ctjam_core::pool`]'s work-stealing shard pool and guarantees the
//! results are **bit-exact regardless of thread count or steal order**:
//!
//! * Every episode derives its own RNG stream from the campaign's base
//!   seed by chained SplitMix64 mixing ([`CampaignSpec::episode_seed`])
//!   — no episode ever observes another's draws.
//! * Per-episode outcomes are keyed by episode index, so the outcome
//!   vector is independent of which shard ran what.
//! * Per-shard telemetry aggregates into
//!   [`ctjam_telemetry::ShardSink`]s, whose `merge` is associative and
//!   commutative (exact summation), so the O(shards) reduction lands on
//!   the sequential result bit-for-bit.
//!
//! A single read-only policy ([`ctjam_dqn::policy::GreedyPolicy`] behind
//! an `Arc`) is shared by all shards — campaigns evaluate one trained
//! network against the whole grid without cloning weights per episode.
//! Campaigns can also carry per-episode fault plans
//! ([`CampaignFaults`]), and [`Fleet::run_partial`] /
//! [`CampaignProgress`] / [`Fleet::resume`] give kill/resume with a
//! checkpointed prefix that reproduces the uninterrupted run exactly
//! (`tests/chaos.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod progress;
pub mod shared;
pub mod spec;

pub use engine::{CampaignResult, EpisodeOutcome, Fleet};
pub use progress::CampaignProgress;
pub use shared::SharedPolicyDefender;
pub use spec::{CampaignFaults, CampaignPolicy, CampaignSpec};
