//! A defender view over one shared read-only policy.

use ctjam_core::defender::Defender;
use ctjam_core::env::{Decision, EnvParams, Outcome, SlotResult};
use ctjam_dqn::encode::{ObservationEncoder, SlotOutcome, SlotRecord};
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_nn::batch::Batch;
use ctjam_nn::mlp::BatchScratch;
use rand::{Rng, RngCore};
use std::sync::Arc;

/// Greedy defender over an `Arc`-shared [`GreedyPolicy`].
///
/// The fleet engine shares one frozen network across every shard; each
/// episode builds its own `SharedPolicyDefender`, which owns only the
/// cheap per-episode state (observation window, scratch buffers, current
/// channel) and reads the weights through the shared handle. Action
/// selection is pure argmax — no RNG draws in `decide` — so two episodes
/// can never perturb each other's streams through the policy.
///
/// Decisions are egocentric exactly like the training-time
/// `DqnDefender`: the network picks a channel *delta* and the defender
/// applies it to its current channel modulo the channel count.
#[derive(Debug, Clone)]
pub struct SharedPolicyDefender {
    policy: Arc<GreedyPolicy>,
    encoder: ObservationEncoder,
    batch: Batch,
    scratch: BatchScratch,
    actions: Vec<usize>,
    obs: Vec<f64>,
    current_channel: usize,
    pending_delta: usize,
}

impl SharedPolicyDefender {
    /// Builds a defender reading `policy`, starting on a random channel
    /// (one `gen_range` draw, mirroring the other defender constructors).
    ///
    /// # Panics
    ///
    /// Panics if the policy's channel/power dimensions do not match
    /// `params`.
    pub fn new<R: Rng + ?Sized>(
        policy: Arc<GreedyPolicy>,
        params: &EnvParams,
        rng: &mut R,
    ) -> Self {
        let config = policy.config();
        assert_eq!(
            config.num_channels,
            params.num_channels(),
            "policy channel count does not match the environment"
        );
        assert_eq!(
            config.num_power_levels,
            params.num_powers(),
            "policy power-level count does not match the environment"
        );
        let encoder = ObservationEncoder::new(
            config.history_len,
            config.num_channels,
            config.num_power_levels,
        );
        let scratch = policy.scratch();
        let current_channel = rng.gen_range(0..params.num_channels());
        SharedPolicyDefender {
            policy,
            encoder,
            batch: Batch::with_cols(0),
            scratch,
            actions: Vec::new(),
            obs: Vec::new(),
            current_channel,
            pending_delta: 0,
        }
    }

    /// The channel the defender currently sits on.
    pub fn current_channel(&self) -> usize {
        self.current_channel
    }
}

impl Defender for SharedPolicyDefender {
    fn name(&self) -> &str {
        "Shared greedy (fleet)"
    }

    fn decide(&mut self, _rng: &mut dyn RngCore) -> Decision {
        self.encoder.encode_into(&mut self.obs);
        self.batch.reset(self.policy.input_size());
        self.batch.push_row(&self.obs);
        self.policy
            .act_greedy_batch(&self.batch, &mut self.scratch, &mut self.actions);
        let (delta, power_level) = self.policy.config().decode_action(self.actions[0]);
        self.pending_delta = delta;
        let channel = (self.current_channel + delta) % self.policy.config().num_channels;
        Decision {
            channel,
            power_level,
        }
    }

    fn feedback(&mut self, result: &SlotResult, _rng: &mut dyn RngCore) {
        let outcome = match result.outcome {
            Outcome::Clean => SlotOutcome::Success,
            Outcome::JammedSurvived => SlotOutcome::SuccessUnderJamming,
            Outcome::Jammed => SlotOutcome::Failure,
        };
        self.encoder.push(SlotRecord {
            outcome,
            // Egocentric channel feature: the relative hop taken.
            channel: self.pending_delta,
            power_level: result.decision.power_level,
        });
        self.current_channel = result.decision.channel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctjam_core::runner::RunBuilder;
    use ctjam_dqn::agent::DqnAgent;
    use ctjam_dqn::config::DqnConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shared_policy(params: &EnvParams, seed: u64) -> Arc<GreedyPolicy> {
        let config = DqnConfig {
            num_channels: params.num_channels(),
            num_power_levels: params.num_powers(),
            ..DqnConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        Arc::new(GreedyPolicy::from_agent(&DqnAgent::new(config, &mut rng)))
    }

    #[test]
    fn runs_an_episode_and_stays_in_range() {
        let params = EnvParams::default();
        let policy = shared_policy(&params, 9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut defender = SharedPolicyDefender::new(policy, &params, &mut rng);
        let report = RunBuilder::new(&params).evaluate(&mut defender, 200, &mut rng);
        assert_eq!(report.metrics.slots(), 200);
        assert!(defender.current_channel() < params.num_channels());
    }

    #[test]
    fn decide_draws_no_rng_and_is_deterministic_given_state() {
        let params = EnvParams::default();
        let policy = shared_policy(&params, 9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut defender = SharedPolicyDefender::new(Arc::clone(&policy), &params, &mut rng);
        let before = rng.gen::<u64>();
        let mut rng2 = StdRng::seed_from_u64(5);
        let mut defender2 = SharedPolicyDefender::new(policy, &params, &mut rng2);
        let d1 = defender.decide(&mut rng2);
        let d2 = defender2.decide(&mut rng2);
        assert_eq!(d1, d2, "identical state must decide identically");
        // `decide` above consumed nothing from `rng`: the next draw from a
        // fresh clone of the same stream position must agree.
        let mut rng3 = StdRng::seed_from_u64(5);
        let mut d3 = SharedPolicyDefender::new(shared_policy(&params, 9), &params, &mut rng3);
        let _ = d3.decide(&mut rng3);
        assert_eq!(before, rng3.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn rejects_mismatched_policy_dimensions() {
        let params = EnvParams::default();
        let config = DqnConfig {
            num_channels: params.num_channels() + 1,
            num_power_levels: params.num_powers(),
            ..DqnConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let policy = Arc::new(GreedyPolicy::from_agent(&DqnAgent::new(config, &mut rng)));
        SharedPolicyDefender::new(policy, &params, &mut rng);
    }
}
