//! Property-based tests for the DQN agent's components.

use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::encode::{ObservationEncoder, SlotOutcome, SlotRecord};
use ctjam_dqn::replay::{Experience, ReplayBuffer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_config(channels: usize, powers: usize, history: usize) -> DqnConfig {
    DqnConfig {
        history_len: history,
        num_channels: channels,
        num_power_levels: powers,
        hidden: (8, 8),
        replay_capacity: 64,
        batch_size: 8,
        warmup: 8,
        ..DqnConfig::default()
    }
}

proptest! {
    #[test]
    fn action_codec_is_a_bijection(channels in 1usize..20, powers in 1usize..12) {
        let config = tiny_config(channels, powers, 2);
        let mut seen = std::collections::HashSet::new();
        for action in 0..config.num_actions() {
            let (c, p) = config.decode_action(action);
            prop_assert!(c < channels && p < powers);
            prop_assert_eq!(config.encode_action(c, p), action);
            prop_assert!(seen.insert((c, p)));
        }
        prop_assert_eq!(seen.len(), channels * powers);
    }

    #[test]
    fn epsilon_is_monotone_and_bounded(steps_a in 0usize..20_000, steps_b in 0usize..20_000) {
        let config = DqnConfig::default();
        let (lo, hi) = if steps_a <= steps_b { (steps_a, steps_b) } else { (steps_b, steps_a) };
        let e_lo = config.epsilon_at(lo);
        let e_hi = config.epsilon_at(hi);
        prop_assert!(e_hi <= e_lo + 1e-12, "epsilon rose: {} -> {}", e_lo, e_hi);
        prop_assert!((config.epsilon_end..=config.epsilon_start).contains(&e_hi));
    }

    #[test]
    fn encoder_output_always_in_unit_cube(
        records in prop::collection::vec((0usize..16, 0usize..10, 0u8..3), 0..30),
        history in 1usize..12,
    ) {
        let mut enc = ObservationEncoder::new(history, 16, 10);
        for (ch, pw, outcome) in records {
            let outcome = match outcome {
                0 => SlotOutcome::Success,
                1 => SlotOutcome::SuccessUnderJamming,
                _ => SlotOutcome::Failure,
            };
            enc.push(SlotRecord { outcome, channel: ch, power_level: pw });
            let obs = enc.encode();
            prop_assert_eq!(obs.len(), 3 * history);
            for v in obs {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn replay_never_exceeds_capacity(capacity in 1usize..64, pushes in 0usize..200) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(Experience {
                state: vec![i as f64],
                action: 0,
                reward: 0.0,
                next_state: vec![],
            });
            prop_assert!(buf.len() <= capacity);
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
    }

    #[test]
    fn replay_keeps_the_most_recent_items(capacity in 2usize..16, extra in 1usize..32) {
        let mut buf = ReplayBuffer::new(capacity);
        let total = capacity + extra;
        for i in 0..total {
            buf.push(Experience {
                state: vec![],
                action: i,
                reward: 0.0,
                next_state: vec![],
            });
        }
        let mut rng = StdRng::seed_from_u64(1);
        let actions: std::collections::HashSet<usize> =
            buf.sample(400, &mut rng).iter().map(|e| e.action).collect();
        // Everything sampled must come from the newest `capacity` pushes.
        for a in &actions {
            prop_assert!(*a >= total - capacity, "stale item {} survived", a);
        }
    }

    #[test]
    fn softmax_never_returns_out_of_range(seed in any::<u64>(), tau in 0.01f64..50.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = tiny_config(4, 3, 2);
        let agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.2; config.input_size()];
        for _ in 0..50 {
            let a = agent.act_softmax(&obs, tau, &mut rng);
            prop_assert!(a < config.num_actions());
        }
    }
}
