//! The committed int8 accuracy gate: a trained agent, quantized, must
//! agree with its f64 greedy policy on ≥ 99.5% of held-out
//! observations, and the quantized batch path must survive adversarial
//! (subnormal / huge / non-finite) observations without panicking.

use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::policy::GreedyPolicy;
use ctjam_dqn::quant::{greedy_agreement, synthetic_observations, QuantizedPolicy};
use ctjam_nn::batch::Batch;
use ctjam_nn::quant::QuantScratch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trains a small agent on strictly graded per-action rewards, so its
/// Q-surface has *decisive* action margins everywhere. That is the
/// regime the gate is designed for: with margins well above the int8
/// noise floor, any agreement loss measures quantization error, not
/// tie-breaking luck between equally good actions. (A policy with
/// near-tied Q-values would flip argmax under any lossy encoding — no
/// quantization scheme can, or should, promise agreement there.)
fn trained_policy(seed: u64) -> GreedyPolicy {
    let config = DqnConfig {
        history_len: 3,
        num_channels: 4,
        num_power_levels: 2,
        hidden: (16, 12),
        replay_capacity: 512,
        batch_size: 16,
        warmup: 32,
        ..DqnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = DqnAgent::new(config.clone(), &mut rng);
    for i in 0..800 {
        let state: Vec<f64> = (0..config.input_size())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let next: Vec<f64> = (0..config.input_size())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let action = i % config.num_actions();
        // Strictly decreasing in the action index: a unique best action
        // with a 0.4 reward gap between neighbours.
        let reward = 1.0 - 0.4 * action as f64;
        agent.observe(state, action, reward, next, &mut rng);
    }
    GreedyPolicy::from_agent(&agent)
}

#[test]
fn quantized_agent_clears_the_99_5_percent_agreement_gate() {
    let policy = trained_policy(40);
    let calib = synthetic_observations(policy.input_size(), 0xCA11B, 256);
    let holdout = synthetic_observations(policy.input_size(), 0x401D0, 512);
    let (quantized, agreement) = QuantizedPolicy::quantize_gated(&policy, &calib, &holdout, 0.995)
        .expect("int8 policy must clear the 99.5% gate");
    assert!(
        agreement >= 0.995,
        "gate passed but reported agreement {agreement} < 0.995"
    );
    // The reported number is reproducible from the public pieces.
    assert_eq!(agreement, greedy_agreement(&policy, &quantized, &holdout));
}

#[test]
fn quantized_actions_are_in_range_and_mostly_equal_to_f64() {
    let policy = trained_policy(41);
    let calib = synthetic_observations(policy.input_size(), 11, 256);
    let quantized = QuantizedPolicy::quantize(&policy, &calib);
    let obs = synthetic_observations(policy.input_size(), 12, 200);
    let mut scratch = QuantScratch::default();
    let mut actions = Vec::new();
    quantized.act_greedy_batch(&obs, &mut scratch, &mut actions);
    assert_eq!(actions.len(), obs.rows());
    assert!(actions.iter().all(|&a| a < quantized.num_actions()));
    let agreement = greedy_agreement(&policy, &quantized, &obs);
    assert!(agreement >= 0.99, "agreement collapsed: {agreement}");
}

#[test]
fn adversarial_observations_never_panic_the_quantized_path() {
    let policy = trained_policy(42);
    let calib = synthetic_observations(policy.input_size(), 13, 256);
    let quantized = QuantizedPolicy::quantize(&policy, &calib);
    let width = quantized.input_size();

    let mut batch = Batch::with_cols(width);
    // Hand-picked poison rows: subnormals, huge magnitudes, and every
    // non-finite value, in several mixtures.
    let specials = [
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324,
        -5e-324,
        1e308,
        -1e308,
        f64::MAX,
        f64::MIN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        -0.0,
    ];
    for (i, &v) in specials.iter().enumerate() {
        let mut row = vec![0.5; width];
        row[i % width] = v;
        batch.push_row(&row);
    }
    batch.push_row(&vec![f64::NAN; width]);
    batch.push_row(&vec![f64::INFINITY; width]);
    batch.push_row(&vec![1e308; width]);
    batch.push_row(&vec![5e-324; width]);
    // Plus random mixtures of specials and ordinary values.
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..64 {
        let row: Vec<f64> = (0..width)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < 0.3 {
                    specials[rng.gen_range(0..specials.len())]
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            })
            .collect();
        batch.push_row(&row);
    }

    let mut scratch = QuantScratch::default();
    let mut actions = Vec::new();
    quantized.act_greedy_batch(&batch, &mut scratch, &mut actions);
    assert_eq!(actions.len(), batch.rows());
    assert!(actions.iter().all(|&a| a < quantized.num_actions()));
}
