//! Checkpoint/resume for DQN training.
//!
//! A checkpoint file is:
//!
//! ```text
//! magic "CTJC" · version u32 LE · payload · FNV-1a-64 checksum (u64 LE)
//! ```
//!
//! where the checksum covers everything before it. Writes go through a
//! uniquely named sibling tempfile (fsynced) + atomic rename (parent
//! directory fsynced), so a crash mid-write leaves either the old
//! checkpoint or none — never a torn file. Reads verify magic, version,
//! and checksum before any field is parsed, so truncation or bit-rot
//! surfaces as a typed [`CheckpointError`], not a panic or a silently
//! wrong agent.
//!
//! The agent payload ([`encode_agent`]/[`decode_agent`]) captures every
//! piece of training state — config, both networks (f64-exact), Adam
//! moments, the replay buffer with its write cursor, and the step
//! counters — so a resumed run continues **bit-exactly** where the saved
//! run left off (asserted by `tests/determinism.rs`).

use crate::agent::DqnAgent;
use crate::config::DqnConfig;
use crate::replay::{Experience, ReplayBuffer};
use bytes::BufMut;
use ctjam_nn::optimizer::Adam;
use ctjam_nn::serialize::{from_bytes_exact, to_bytes_exact, SerializeError};
use ctjam_telemetry::manifest::fnv1a_64;
use std::fmt;
use std::fs;
use std::path::Path;

/// Magic tag of the checkpoint container.
const MAGIC: &[u8; 4] = b"CTJC";

/// Current container version.
const VERSION: u32 = 1;

/// Errors from reading or writing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error (message carries the OS detail).
    Io(String),
    /// Missing or wrong magic tag — not a checkpoint file.
    BadMagic,
    /// The container version is newer than this build understands.
    BadVersion(u32),
    /// The file ended prematurely.
    Truncated,
    /// The checksum does not match the contents (bit-rot, torn write,
    /// or deliberate corruption).
    ChecksumMismatch,
    /// The payload parsed but declares impossible state (bad shapes,
    /// out-of-range cursors, invalid configuration).
    Malformed,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a ctjam checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint ended prematurely"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Malformed => write!(f, "checkpoint declares invalid state"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Wraps a payload in the container format (magic, version, checksum).
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_slice(payload);
    let checksum = fnv1a_64(&out);
    out.put_u64_le(checksum);
    out
}

/// Verifies a container and returns its payload slice.
///
/// # Errors
///
/// Returns the corresponding [`CheckpointError`] on any violation.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < 16 {
        return Err(CheckpointError::Truncated);
    }
    let body = &bytes[..bytes.len() - 8];
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&bytes[bytes.len() - 8..]);
    if fnv1a_64(body) != u64::from_le_bytes(stored) {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let mut version = [0u8; 4];
    version.copy_from_slice(&bytes[4..8]);
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    Ok(&body[8..])
}

/// Writes a sealed payload to `path` atomically and durably.
///
/// The bytes go to a uniquely named sibling tempfile
/// (`.<name>.<pid>.<n>.tmp`, so `agent.v2.ckpt` is never mangled into
/// `agent.v2.tmp` and no unrelated sibling `*.tmp` can be clobbered),
/// are fsynced, renamed into place, and the parent directory is fsynced
/// so the rename itself survives a crash. A failure mid-write leaves
/// either the old checkpoint or none — never a torn file.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> Result<(), CheckpointError> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let io_err = |e: std::io::Error| CheckpointError::Io(e.to_string());

    let sealed = seal(payload);
    let name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Io("checkpoint path has no file name".into()))?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let tmp = parent.join(format!(
        ".{}.{}.{}.tmp",
        name.to_string_lossy(),
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));

    let result = (|| {
        let mut file = fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(&sealed).map_err(io_err)?;
        // Contents must be on disk before the rename publishes them.
        file.sync_all().map_err(io_err)?;
        drop(file);
        fs::rename(&tmp, path).map_err(io_err)?;
        // The rename is a directory mutation; fsync the directory so the
        // new name survives a crash. Best effort on platforms where
        // opening a directory is not supported.
        if let Ok(dir) = fs::File::open(&parent) {
            let _ = dir.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads and verifies a checkpoint file, returning its payload.
///
/// # Errors
///
/// Returns a typed [`CheckpointError`] on I/O failure or corruption.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    unseal(&bytes).map(<[u8]>::to_vec)
}

// ---- safe little-endian readers (Truncated instead of panic) ----
// Public so downstream checkpoint composers (the defender checkpoint in
// `ctjam-core`) can append their own fields with the same discipline.

/// Reads a little-endian `u64`, or [`CheckpointError::Truncated`].
pub fn take_u64(cursor: &mut &[u8]) -> Result<u64, CheckpointError> {
    if cursor.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&cursor[..8]);
    *cursor = &cursor[8..];
    Ok(u64::from_le_bytes(raw))
}

/// Reads a `u64` and converts it to `usize`, or a typed error.
pub fn take_usize(cursor: &mut &[u8]) -> Result<usize, CheckpointError> {
    usize::try_from(take_u64(cursor)?).map_err(|_| CheckpointError::Malformed)
}

/// Reads a little-endian `f64` (bit-exact), or
/// [`CheckpointError::Truncated`].
pub fn take_f64(cursor: &mut &[u8]) -> Result<f64, CheckpointError> {
    Ok(f64::from_bits(take_u64(cursor)?))
}

/// Reads a `0`/`1` byte as a bool, or a typed error.
pub fn take_bool(cursor: &mut &[u8]) -> Result<bool, CheckpointError> {
    if cursor.is_empty() {
        return Err(CheckpointError::Truncated);
    }
    let b = cursor[0];
    *cursor = &cursor[1..];
    match b {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CheckpointError::Malformed),
    }
}

/// Reads a length-prefixed `f64` vector, or a typed error.
pub fn take_f64_vec(cursor: &mut &[u8]) -> Result<Vec<f64>, CheckpointError> {
    let len = take_usize(cursor)?;
    // Bound the allocation by what the buffer can actually hold.
    if cursor.len() < len.checked_mul(8).ok_or(CheckpointError::Malformed)? {
        return Err(CheckpointError::Truncated);
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(take_f64(cursor)?);
    }
    Ok(out)
}

fn take_blob<'a>(cursor: &mut &'a [u8]) -> Result<&'a [u8], CheckpointError> {
    let len = take_usize(cursor)?;
    if cursor.len() < len {
        return Err(CheckpointError::Truncated);
    }
    let (blob, rest) = cursor.split_at(len);
    *cursor = rest;
    Ok(blob)
}

/// Appends a length-prefixed `f64` vector (bit-exact).
pub fn put_f64_vec(buf: &mut Vec<u8>, values: &[f64]) {
    buf.put_u64_le(values.len() as u64);
    for v in values {
        buf.put_u64_le(v.to_bits());
    }
}

fn nn_error(e: SerializeError) -> CheckpointError {
    match e {
        SerializeError::Truncated => CheckpointError::Truncated,
        SerializeError::BadMagic | SerializeError::BadShape => CheckpointError::Malformed,
    }
}

/// Serializes an agent's complete training state into `buf`.
pub fn encode_agent(agent: &DqnAgent, buf: &mut Vec<u8>) {
    let c = agent.config();
    buf.put_u64_le(c.history_len as u64);
    buf.put_u64_le(c.num_channels as u64);
    buf.put_u64_le(c.num_power_levels as u64);
    buf.put_u64_le(c.hidden.0 as u64);
    buf.put_u64_le(c.hidden.1 as u64);
    buf.put_u64_le(c.gamma.to_bits());
    buf.put_u64_le(c.learning_rate.to_bits());
    buf.put_u64_le(c.replay_capacity as u64);
    buf.put_u64_le(c.batch_size as u64);
    buf.put_u64_le(c.target_sync_interval as u64);
    buf.put_u64_le(c.epsilon_start.to_bits());
    buf.put_u64_le(c.epsilon_end.to_bits());
    buf.put_u64_le(c.epsilon_decay_steps as u64);
    buf.put_u64_le(c.train_interval as u64);
    buf.put_u64_le(c.warmup as u64);
    buf.put_slice(&[u8::from(c.double_dqn)]);

    let online = to_bytes_exact(agent.network());
    buf.put_u64_le(online.len() as u64);
    buf.put_slice(&online);
    let target = to_bytes_exact(agent.target_network());
    buf.put_u64_le(target.len() as u64);
    buf.put_slice(&target);

    let opt = agent.optimizer();
    buf.put_u64_le(opt.learning_rate().to_bits());
    buf.put_u64_le(opt.step_count());
    put_f64_vec(buf, opt.first_moment());
    put_f64_vec(buf, opt.second_moment());

    let replay = agent.replay();
    buf.put_u64_le(replay.capacity() as u64);
    buf.put_u64_le(replay.write_index() as u64);
    buf.put_u64_le(replay.items().len() as u64);
    for e in replay.items() {
        put_f64_vec(buf, &e.state);
        buf.put_u64_le(e.action as u64);
        buf.put_u64_le(e.reward.to_bits());
        put_f64_vec(buf, &e.next_state);
    }

    buf.put_u64_le(agent.steps() as u64);
    buf.put_u64_le(agent.train_steps() as u64);
    buf.put_u64_le(agent.skipped_train_steps() as u64);
    match agent.last_loss() {
        Some(loss) => {
            buf.put_slice(&[1]);
            buf.put_u64_le(loss.to_bits());
        }
        None => buf.put_slice(&[0]),
    }
}

/// Deserializes an agent from [`encode_agent`] output, advancing the
/// cursor past it.
///
/// # Errors
///
/// Returns a typed [`CheckpointError`] on truncation or invalid state.
pub fn decode_agent(cursor: &mut &[u8]) -> Result<DqnAgent, CheckpointError> {
    let config = DqnConfig {
        history_len: take_usize(cursor)?,
        num_channels: take_usize(cursor)?,
        num_power_levels: take_usize(cursor)?,
        hidden: (take_usize(cursor)?, take_usize(cursor)?),
        gamma: take_f64(cursor)?,
        learning_rate: take_f64(cursor)?,
        replay_capacity: take_usize(cursor)?,
        batch_size: take_usize(cursor)?,
        target_sync_interval: take_usize(cursor)?,
        epsilon_start: take_f64(cursor)?,
        epsilon_end: take_f64(cursor)?,
        epsilon_decay_steps: take_usize(cursor)?,
        train_interval: take_usize(cursor)?,
        warmup: take_usize(cursor)?,
        double_dqn: take_bool(cursor)?,
    };
    // `DqnConfig::validate` (inside `from_parts`) panics on bad configs;
    // a checkpoint must fail cleanly instead.
    if config.history_len == 0
        || config.num_channels == 0
        || config.num_power_levels == 0
        || config.hidden.0 == 0
        || config.hidden.1 == 0
        || !(0.0..1.0).contains(&config.gamma)
        || config.learning_rate.is_nan()
        || config.learning_rate <= 0.0
        || config.batch_size == 0
        || config.replay_capacity < config.batch_size
        || !(0.0..=1.0).contains(&config.epsilon_start)
        || !(0.0..=1.0).contains(&config.epsilon_end)
        || config.train_interval == 0
    {
        return Err(CheckpointError::Malformed);
    }

    let online = from_bytes_exact(take_blob(cursor)?).map_err(nn_error)?;
    let target = from_bytes_exact(take_blob(cursor)?).map_err(nn_error)?;
    if online.input_size() != config.input_size()
        || online.output_size() != config.num_actions()
        || target.input_size() != config.input_size()
        || target.output_size() != config.num_actions()
    {
        return Err(CheckpointError::Malformed);
    }

    let opt_lr = take_f64(cursor)?;
    let opt_step = take_u64(cursor)?;
    let m = take_f64_vec(cursor)?;
    let v = take_f64_vec(cursor)?;
    if m.len() != v.len()
        || (!m.is_empty() && m.len() != online.param_count())
        || opt_lr.is_nan()
        || opt_lr <= 0.0
    {
        return Err(CheckpointError::Malformed);
    }
    let optimizer = Adam::restore(opt_lr, opt_step, m, v);

    let capacity = take_usize(cursor)?;
    let write = take_usize(cursor)?;
    let num_items = take_usize(cursor)?;
    if capacity != config.replay_capacity || num_items > capacity || write >= capacity {
        return Err(CheckpointError::Malformed);
    }
    let mut items = Vec::with_capacity(num_items.min(4096));
    for _ in 0..num_items {
        let state = take_f64_vec(cursor)?;
        let action = take_usize(cursor)?;
        let reward = take_f64(cursor)?;
        let next_state = take_f64_vec(cursor)?;
        if state.len() != config.input_size()
            || next_state.len() != config.input_size()
            || action >= config.num_actions()
        {
            return Err(CheckpointError::Malformed);
        }
        items.push(Experience {
            state,
            action,
            reward,
            next_state,
        });
    }
    let replay = ReplayBuffer::restore(capacity, items, write);

    let steps = take_usize(cursor)?;
    let train_steps = take_usize(cursor)?;
    let skipped_train_steps = take_usize(cursor)?;
    let last_loss = if take_bool(cursor)? {
        Some(take_f64(cursor)?)
    } else {
        None
    };

    Ok(DqnAgent::from_parts(
        config,
        online,
        target,
        optimizer,
        replay,
        steps,
        train_steps,
        skipped_train_steps,
        last_loss,
    ))
}

/// Saves an agent to `path` (sealed container, atomic write).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save_agent(agent: &DqnAgent, path: &Path) -> Result<(), CheckpointError> {
    let mut payload = Vec::new();
    encode_agent(agent, &mut payload);
    write_checkpoint(path, &payload)
}

/// Loads an agent saved by [`save_agent`].
///
/// # Errors
///
/// Returns a typed [`CheckpointError`] on I/O failure or corruption.
pub fn load_agent(path: &Path) -> Result<DqnAgent, CheckpointError> {
    let payload = read_checkpoint(path)?;
    let mut cursor = payload.as_slice();
    let agent = decode_agent(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(CheckpointError::Malformed);
    }
    Ok(agent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_agent(seed: u64, steps: usize) -> (DqnAgent, StdRng) {
        let config = DqnConfig {
            history_len: 2,
            num_channels: 4,
            num_power_levels: 2,
            hidden: (12, 12),
            replay_capacity: 500,
            batch_size: 8,
            warmup: 16,
            target_sync_interval: 20,
            ..DqnConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        for i in 0..steps {
            let mut state = vec![0.0; config.input_size()];
            state[i % config.input_size()] = (i as f64).sin();
            let next = state.clone();
            agent.observe(state, i % config.num_actions(), -1.0, next, &mut rng);
        }
        (agent, rng)
    }

    #[test]
    fn agent_roundtrips_through_bytes() {
        let (agent, _) = trained_agent(1, 120);
        let mut payload = Vec::new();
        encode_agent(&agent, &mut payload);
        let mut cursor = payload.as_slice();
        let back = decode_agent(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back.config(), agent.config());
        assert_eq!(
            back.network().flatten_params(),
            agent.network().flatten_params()
        );
        assert_eq!(
            back.target_network().flatten_params(),
            agent.target_network().flatten_params()
        );
        assert_eq!(
            back.optimizer().step_count(),
            agent.optimizer().step_count()
        );
        assert_eq!(
            back.optimizer().first_moment(),
            agent.optimizer().first_moment()
        );
        assert_eq!(back.replay().items(), agent.replay().items());
        assert_eq!(back.replay().write_index(), agent.replay().write_index());
        assert_eq!(back.steps(), agent.steps());
        assert_eq!(back.train_steps(), agent.train_steps());
        assert_eq!(back.last_loss(), agent.last_loss());
    }

    #[test]
    fn file_roundtrip_and_atomic_write() {
        let (agent, _) = trained_agent(2, 60);
        let dir = std::env::temp_dir().join("ctjam_ckpt_roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agent.ckpt");
        save_agent(&agent, &path).unwrap();
        // No tempfile left behind (neither the old `agent.tmp` scheme
        // nor the unique hidden siblings).
        assert!(only_checkpoints_in(&dir));
        let back = load_agent(&path).unwrap();
        assert_eq!(
            back.network().flatten_params(),
            agent.network().flatten_params()
        );
        // Overwrite in place works (rename clobbers).
        save_agent(&back, &path).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    /// True when `dir` holds only `*.ckpt` files — no stray tempfiles.
    fn only_checkpoints_in(dir: &std::path::Path) -> bool {
        fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .all(|n| n.ends_with(".ckpt"))
    }

    #[test]
    fn multi_dot_names_do_not_collide_with_siblings() {
        // Regression: `path.with_extension("tmp")` turned `agent.v2.ckpt`
        // into `agent.v2.tmp`, so two differently named checkpoints
        // (`agent.v2.ckpt`, `agent.v2.json`, an unrelated `agent.v2.tmp`)
        // could race or clobber each other through the shared temp name.
        let (agent, _) = trained_agent(7, 60);
        let dir = std::env::temp_dir().join("ctjam_ckpt_multidot");
        fs::create_dir_all(&dir).unwrap();

        // A pre-existing sibling that the old scheme would have destroyed.
        let bystander = dir.join("agent.v2.tmp");
        fs::write(&bystander, b"do not clobber").unwrap();

        let path = dir.join("agent.v2.ckpt");
        save_agent(&agent, &path).unwrap();

        assert_eq!(fs::read(&bystander).unwrap(), b"do not clobber");
        let back = load_agent(&path).unwrap();
        assert_eq!(
            back.network().flatten_params(),
            agent.network().flatten_params()
        );
        // Only the checkpoint and the untouched bystander remain.
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, ["agent.v2.ckpt", "agent.v2.tmp"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_to_one_directory_do_not_collide() {
        // The unique temp names carry a process-wide counter, so two
        // threads checkpointing different files in the same directory
        // never share a tempfile.
        let dir = std::env::temp_dir().join("ctjam_ckpt_concurrent");
        fs::create_dir_all(&dir).unwrap();
        std::thread::scope(|s| {
            for i in 0..4 {
                let path = dir.join(format!("agent.{i}.ckpt"));
                s.spawn(move || {
                    for _ in 0..8 {
                        write_checkpoint(&path, &[i as u8; 64]).unwrap();
                    }
                });
            }
        });
        for i in 0..4 {
            let payload = read_checkpoint(&dir.join(format!("agent.{i}.ckpt"))).unwrap();
            assert_eq!(payload, vec![i as u8; 64]);
        }
        assert!(only_checkpoints_in(&dir));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let (agent, _) = trained_agent(3, 60);
        let mut payload = Vec::new();
        encode_agent(&agent, &mut payload);
        let sealed = seal(&payload);
        for cut in [0, 3, 10, sealed.len() / 2, sealed.len() - 1] {
            let err = unseal(&sealed[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::BadMagic
                        | CheckpointError::Truncated
                        | CheckpointError::ChecksumMismatch
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (agent, _) = trained_agent(4, 40);
        let mut payload = Vec::new();
        encode_agent(&agent, &mut payload);
        let sealed = seal(&payload);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let mut bad = sealed.clone();
            let i = rng.gen_range(0..bad.len());
            let bit = rng.gen_range(0..8u32);
            bad[i] ^= 1 << bit;
            assert!(
                unseal(&bad).is_err(),
                "flip at byte {i} bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Vec::new();
        bytes.put_slice(MAGIC);
        bytes.put_u32_le(99);
        bytes.put_slice(b"payload");
        let checksum = fnv1a_64(&bytes);
        bytes.put_u64_le(checksum);
        assert_eq!(unseal(&bytes).unwrap_err(), CheckpointError::BadVersion(99));
    }

    #[test]
    fn garbage_payload_with_valid_seal_is_malformed_or_truncated() {
        // A sealed container whose payload is noise must fail *cleanly*.
        let mut rng = StdRng::seed_from_u64(10);
        for len in [0usize, 1, 16, 200, 1000] {
            let junk: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let sealed = seal(&junk);
            let payload = unseal(&sealed).unwrap();
            let mut cursor = payload;
            match decode_agent(&mut cursor) {
                Err(CheckpointError::Truncated | CheckpointError::Malformed) => {}
                other => panic!("garbage len {len} gave {other:?}"),
            }
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_agent(Path::new("/nonexistent/agent.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn resumed_agent_trains_bit_exactly() {
        let (mut agent, mut rng) = trained_agent(5, 100);
        let mut payload = Vec::new();
        encode_agent(&agent, &mut payload);
        let mut cursor = payload.as_slice();
        let mut resumed = decode_agent(&mut cursor).unwrap();
        let mut rng2 = rng.clone();
        let obs = vec![0.4; agent.config().input_size()];
        for i in 0..60 {
            let a = agent.observe(obs.clone(), i % 8, -2.0, obs.clone(), &mut rng);
            let b = resumed.observe(obs.clone(), i % 8, -2.0, obs.clone(), &mut rng2);
            assert_eq!(a, b);
        }
        assert_eq!(
            agent.network().flatten_params(),
            resumed.network().flatten_params()
        );
    }
}
