//! Detached greedy-policy snapshots for serving.
//!
//! A [`GreedyPolicy`] is the deployable part of a [`DqnAgent`]: the
//! online network plus the configuration that gives its outputs meaning.
//! It carries none of the training state (replay buffer, optimizer,
//! target network, ε schedule), so it is cheap to clone, trivially
//! `Send + Sync`-shareable behind an `Arc`, and — crucially for an
//! inference server — swappable atomically without touching a live
//! training run.
//!
//! Both inference paths are **bit-exact** with [`DqnAgent::act_greedy`]
//! on the agent the snapshot was taken from: the per-sample path calls
//! the same [`Mlp::forward`], and the batched path goes through
//! [`Mlp::forward_batch`] (bit-exact with per-row `forward` by the
//! `ctjam-nn` kernel contract) followed by the same NaN-total argmax.
//! Regression-tested below and re-asserted end-to-end by the
//! `ctjam-serve` load harness.

use crate::agent::{argmax, DqnAgent};
use crate::checkpoint::{self, CheckpointError};
use crate::config::DqnConfig;
use ctjam_nn::batch::Batch;
use ctjam_nn::mlp::{BatchScratch, Mlp};
use std::path::Path;

/// An immutable greedy-inference snapshot of a trained DQN.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyPolicy {
    config: DqnConfig,
    net: Mlp,
}

impl GreedyPolicy {
    /// Snapshots the agent's online network and configuration.
    pub fn from_agent(agent: &DqnAgent) -> Self {
        GreedyPolicy {
            config: agent.config().clone(),
            net: agent.network().clone(),
        }
    }

    /// Loads a snapshot from a sealed agent checkpoint
    /// ([`crate::checkpoint::save_agent`] format): the file's magic,
    /// version, and FNV-1a checksum are verified and the full agent
    /// decoded before the policy is extracted, so corruption or shape
    /// lies surface as a typed [`CheckpointError`], never a panic or a
    /// silently wrong policy.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`CheckpointError`] on I/O failure,
    /// corruption, or malformed state.
    pub fn load_checkpoint(path: &Path) -> Result<Self, CheckpointError> {
        let agent = checkpoint::load_agent(path)?;
        Ok(GreedyPolicy::from_agent(&agent))
    }

    /// The snapshot's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// The snapshot's network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Observation width the policy expects (`3 × I`).
    pub fn input_size(&self) -> usize {
        self.config.input_size()
    }

    /// Number of actions the policy chooses among (`C × PL`).
    pub fn num_actions(&self) -> usize {
        self.config.num_actions()
    }

    /// A forward-pass scratch space sized for this policy's network.
    /// Reuse it across [`GreedyPolicy::act_greedy_batch`] calls so
    /// steady-state serving performs no per-batch allocation.
    pub fn scratch(&self) -> BatchScratch {
        BatchScratch::for_network(&self.net)
    }

    /// Greedy action at one observation — bit-exact with
    /// [`DqnAgent::act_greedy`] on the snapshotted agent.
    ///
    /// # Panics
    ///
    /// Panics if the observation width differs from
    /// [`GreedyPolicy::input_size`].
    pub fn act_greedy(&self, observation: &[f64]) -> usize {
        argmax(&self.net.forward(observation))
    }

    /// Greedy actions for a whole observation batch, through one
    /// [`Mlp::forward_batch`] call. Appends one action per row to
    /// `actions` (cleared first). Bit-exact with per-row
    /// [`GreedyPolicy::act_greedy`].
    ///
    /// # Panics
    ///
    /// Panics if `batch.cols()` differs from
    /// [`GreedyPolicy::input_size`].
    pub fn act_greedy_batch(
        &self,
        batch: &Batch,
        scratch: &mut BatchScratch,
        actions: &mut Vec<usize>,
    ) {
        actions.clear();
        if batch.is_empty() {
            return;
        }
        let q = self.net.forward_batch(batch, scratch);
        for s in 0..q.rows() {
            actions.push(argmax(q.row(s)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_agent(seed: u64) -> DqnAgent {
        let config = DqnConfig {
            history_len: 3,
            num_channels: 4,
            num_power_levels: 2,
            hidden: (16, 12),
            replay_capacity: 256,
            batch_size: 8,
            warmup: 16,
            ..DqnConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        for i in 0..80 {
            let mut state = vec![0.0; config.input_size()];
            state[i % config.input_size()] = (i as f64).sin();
            let next = state.clone();
            agent.observe(state, i % config.num_actions(), -1.0, next, &mut rng);
        }
        agent
    }

    fn observations(config: &DqnConfig, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..config.input_size())
                    .map(|j| ((i * 37 + j * 11) as f64).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn snapshot_matches_agent_per_sample_and_batched() {
        let agent = small_agent(7);
        let policy = GreedyPolicy::from_agent(&agent);
        let obs = observations(agent.config(), 33);
        let mut batch = Batch::with_cols(policy.input_size());
        for o in &obs {
            batch.push_row(o);
        }
        let mut scratch = policy.scratch();
        let mut actions = Vec::new();
        policy.act_greedy_batch(&batch, &mut scratch, &mut actions);
        assert_eq!(actions.len(), obs.len());
        for (i, o) in obs.iter().enumerate() {
            let expected = agent.act_greedy(o);
            assert_eq!(policy.act_greedy(o), expected, "per-sample row {i}");
            assert_eq!(actions[i], expected, "batched row {i}");
        }
    }

    #[test]
    fn batched_path_handles_empty_and_reused_scratch() {
        let agent = small_agent(8);
        let policy = GreedyPolicy::from_agent(&agent);
        let mut scratch = policy.scratch();
        let mut actions = vec![99; 4];
        policy.act_greedy_batch(
            &Batch::with_cols(policy.input_size()),
            &mut scratch,
            &mut actions,
        );
        assert!(actions.is_empty(), "empty batch must clear the output");
        // Varying batch sizes through the same scratch stay bit-exact.
        let obs = observations(agent.config(), 9);
        for take in [1, 5, 9, 2] {
            let mut batch = Batch::with_cols(policy.input_size());
            for o in obs.iter().take(take) {
                batch.push_row(o);
            }
            policy.act_greedy_batch(&batch, &mut scratch, &mut actions);
            for (i, o) in obs.iter().take(take).enumerate() {
                assert_eq!(actions[i], agent.act_greedy(o), "take {take} row {i}");
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_the_policy() {
        let agent = small_agent(9);
        let path = std::env::temp_dir().join("ctjam_policy_snapshot.ckpt");
        checkpoint::save_agent(&agent, &path).unwrap();
        let policy = GreedyPolicy::load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(policy.config(), agent.config());
        for o in observations(agent.config(), 10) {
            assert_eq!(policy.act_greedy(&o), agent.act_greedy(&o));
        }
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let agent = small_agent(10);
        let path = std::env::temp_dir().join("ctjam_policy_corrupt.ckpt");
        checkpoint::save_agent(&agent, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            GreedyPolicy::load_checkpoint(&path),
            Err(CheckpointError::ChecksumMismatch)
        ));
        std::fs::remove_file(&path).ok();
    }
}
