//! DQN hyperparameters.

/// Configuration of the DQN agent.
///
/// Defaults mirror the paper's setup: `I = 8` slots of history (3
/// observable indexes each), `C = 16` ZigBee channels, `PL = 10` power
/// levels, two hidden layers sized so the deployed network lands at the
/// paper's ~10 k parameters / ~42.7 KB.
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// History window `I` (slots of (outcome, channel, power) context).
    pub history_len: usize,
    /// Number of selectable channels `C`.
    pub num_channels: usize,
    /// Number of transmit power levels `PL`.
    pub num_power_levels: usize,
    /// Widths of the two hidden layers.
    pub hidden: (usize, usize),
    /// Discount factor `γ`.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Replay buffer capacity ("data blocks from historical information").
    pub replay_capacity: usize,
    /// Minibatch size per training step.
    pub batch_size: usize,
    /// Environment steps between target-network synchronizations.
    pub target_sync_interval: usize,
    /// Initial exploration rate ε.
    pub epsilon_start: f64,
    /// Final exploration rate ε.
    pub epsilon_end: f64,
    /// Steps over which ε decays linearly from start to end.
    pub epsilon_decay_steps: usize,
    /// Environment steps between gradient updates (1 = every step).
    pub train_interval: usize,
    /// Replay fill level required before training starts.
    pub warmup: usize,
    /// Use Double DQN targets (`r + γ·Q_target(s′, argmax_a Q_online(s′, a))`)
    /// instead of vanilla max targets. An extension over the paper's
    /// vanilla DQN that reduces maximization bias; off by default to
    /// match §III.C.
    pub double_dqn: bool,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            history_len: 8,
            num_channels: 16,
            num_power_levels: 10,
            hidden: (48, 42),
            gamma: 0.9,
            learning_rate: 1e-3,
            replay_capacity: 120_000,
            batch_size: 32,
            target_sync_interval: 250,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 5_000,
            train_interval: 1,
            warmup: 256,
            double_dqn: false,
        }
    }
}

impl DqnConfig {
    /// Input width of the network: `3 × I`.
    pub fn input_size(&self) -> usize {
        3 * self.history_len
    }

    /// Output width of the network: `C × PL` actions.
    pub fn num_actions(&self) -> usize {
        self.num_channels * self.num_power_levels
    }

    /// Exploration rate after `steps` environment steps (linear decay).
    pub fn epsilon_at(&self, steps: usize) -> f64 {
        if self.epsilon_decay_steps == 0 || steps >= self.epsilon_decay_steps {
            return self.epsilon_end;
        }
        let f = steps as f64 / self.epsilon_decay_steps as f64;
        self.epsilon_start + (self.epsilon_end - self.epsilon_start) * f
    }

    /// Decomposes an action index into `(channel, power_level)`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    pub fn decode_action(&self, action: usize) -> (usize, usize) {
        assert!(action < self.num_actions(), "action {action} out of range");
        (
            action / self.num_power_levels,
            action % self.num_power_levels,
        )
    }

    /// Inverse of [`DqnConfig::decode_action`].
    ///
    /// # Panics
    ///
    /// Panics if either component is out of range.
    pub fn encode_action(&self, channel: usize, power_level: usize) -> usize {
        assert!(
            channel < self.num_channels,
            "channel {channel} out of range"
        );
        assert!(
            power_level < self.num_power_levels,
            "power level {power_level} out of range"
        );
        channel * self.num_power_levels + power_level
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or probabilities are out of
    /// range — configuration bugs, not runtime conditions.
    pub fn validate(&self) {
        assert!(self.history_len > 0, "history length must be positive");
        assert!(self.num_channels > 0, "need at least one channel");
        assert!(self.num_power_levels > 0, "need at least one power level");
        assert!(
            self.hidden.0 > 0 && self.hidden.1 > 0,
            "hidden widths must be positive"
        );
        assert!((0.0..1.0).contains(&self.gamma), "gamma must be in [0,1)");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(
            self.replay_capacity >= self.batch_size,
            "replay smaller than a batch"
        );
        assert!(
            (0.0..=1.0).contains(&self.epsilon_start) && (0.0..=1.0).contains(&self.epsilon_end),
            "epsilon must be a probability"
        );
        assert!(self.train_interval > 0, "train interval must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_architecture() {
        let c = DqnConfig::default();
        c.validate();
        assert_eq!(c.input_size(), 24); // 3 × I with I = 8
        assert_eq!(c.num_actions(), 160); // C × PL = 16 × 10
    }

    #[test]
    fn epsilon_decays_linearly_then_floors() {
        let c = DqnConfig::default();
        assert_eq!(c.epsilon_at(0), 1.0);
        let mid = c.epsilon_at(c.epsilon_decay_steps / 2);
        assert!((mid - (1.0 + 0.05) / 2.0).abs() < 0.01);
        assert_eq!(c.epsilon_at(c.epsilon_decay_steps), 0.05);
        assert_eq!(c.epsilon_at(usize::MAX), 0.05);
    }

    #[test]
    fn action_codec_roundtrip() {
        let c = DqnConfig::default();
        for action in 0..c.num_actions() {
            let (ch, p) = c.decode_action(action);
            assert_eq!(c.encode_action(ch, p), action);
        }
    }

    #[test]
    #[should_panic]
    fn decode_out_of_range_panics() {
        DqnConfig::default().decode_action(160);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        DqnConfig {
            gamma: 1.5,
            ..DqnConfig::default()
        }
        .validate();
    }
}
