//! The DQN agent: ε-greedy action selection, replay training, and a
//! target network.

use crate::config::DqnConfig;
use crate::replay::{Experience, ReplayBuffer};
use ctjam_fault::{FaultPoint, FaultSite, NullFaultPlan};
use ctjam_nn::batch::Batch;
use ctjam_nn::mlp::{BatchScratch, Mlp, MlpBuilder};
use ctjam_nn::optimizer::Adam;
use ctjam_nn::optimizer::Optimizer;
use rand::Rng;

/// A deep Q-network agent over `C × PL` (channel, power) actions.
///
/// See the crate-level example for basic usage. The typical loop is:
///
/// 1. [`DqnAgent::act`] on the current observation,
/// 2. step the environment,
/// 3. [`DqnAgent::observe`] the transition — which trains the online
///    network from replay and periodically syncs the target network.
#[derive(Debug, Clone)]
pub struct DqnAgent {
    config: DqnConfig,
    online: Mlp,
    target: Mlp,
    optimizer: Adam,
    replay: ReplayBuffer,
    scratch: TrainScratch,
    steps: usize,
    train_steps: usize,
    skipped_train_steps: usize,
    last_loss: Option<f64>,
}

/// Reusable buffers for [`DqnAgent::train_step`] and the scratch-based
/// inference path: the packed minibatch, the network scratch spaces, the
/// Q-target batch, and the single-row observation workspace. Kept inside
/// the agent so steady-state training *and* evaluation perform no
/// per-step allocation.
#[derive(Debug, Clone)]
struct TrainScratch {
    states: Batch,
    actions: Vec<usize>,
    rewards: Vec<f64>,
    next_states: Batch,
    /// Traced forward/backward workspace of the online network.
    online: BatchScratch,
    /// Forward-only workspace for the target (and, under double DQN, the
    /// online-next) pass.
    aux: BatchScratch,
    targets: Batch,
    /// Double DQN: per-sample action selected by the online network.
    selected: Vec<usize>,
    params: Vec<f64>,
    /// Single-row observation batch for scratch-based inference.
    obs: Batch,
    /// Forward-only workspace for scratch-based inference (kept separate
    /// from `online`/`aux` so an inference between `train_step` calls
    /// cannot clobber a training trace).
    infer: BatchScratch,
    /// Reusable weight buffer for [`DqnAgent::act_softmax_scratch`].
    softmax_weights: Vec<f64>,
}

impl TrainScratch {
    fn for_networks(online: &Mlp) -> Self {
        TrainScratch {
            states: Batch::with_cols(online.input_size()),
            actions: Vec::new(),
            rewards: Vec::new(),
            next_states: Batch::with_cols(online.input_size()),
            online: BatchScratch::for_network(online),
            aux: BatchScratch::for_network(online),
            targets: Batch::with_cols(online.output_size()),
            selected: Vec::new(),
            params: Vec::new(),
            obs: Batch::with_cols(online.input_size()),
            infer: BatchScratch::for_network(online),
            softmax_weights: Vec::new(),
        }
    }
}

impl DqnAgent {
    /// Creates an agent with freshly initialized networks.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DqnConfig::validate`]).
    pub fn new<R: Rng + ?Sized>(config: DqnConfig, rng: &mut R) -> Self {
        config.validate();
        let online = MlpBuilder::new(config.input_size())
            .hidden(config.hidden.0)
            .hidden(config.hidden.1)
            .output(config.num_actions())
            .build(rng);
        let target = online.clone();
        let optimizer = Adam::with_learning_rate(config.learning_rate);
        let replay = ReplayBuffer::new(config.replay_capacity);
        let scratch = TrainScratch::for_networks(&online);
        DqnAgent {
            config,
            online,
            target,
            optimizer,
            last_loss: None,
            replay,
            scratch,
            steps: 0,
            train_steps: 0,
            skipped_train_steps: 0,
        }
    }

    /// Rebuilds an agent from checkpointed parts, re-deriving the
    /// training scratch space. The counterpart of reading every field
    /// back through the public accessors; used by the `checkpoint`
    /// module.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the networks' shapes
    /// do not match it.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        config: DqnConfig,
        online: Mlp,
        target: Mlp,
        optimizer: Adam,
        replay: ReplayBuffer,
        steps: usize,
        train_steps: usize,
        skipped_train_steps: usize,
        last_loss: Option<f64>,
    ) -> Self {
        config.validate();
        assert_eq!(online.input_size(), config.input_size(), "online input");
        assert_eq!(online.output_size(), config.num_actions(), "online output");
        assert_eq!(target.input_size(), config.input_size(), "target input");
        assert_eq!(target.output_size(), config.num_actions(), "target output");
        let scratch = TrainScratch::for_networks(&online);
        DqnAgent {
            config,
            online,
            target,
            optimizer,
            replay,
            scratch,
            steps,
            train_steps,
            skipped_train_steps,
            last_loss,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// The online (trained) network.
    pub fn network(&self) -> &Mlp {
        &self.online
    }

    /// The target network used for bootstrap estimates.
    pub fn target_network(&self) -> &Mlp {
        &self.target
    }

    /// The replay buffer.
    pub fn replay(&self) -> &ReplayBuffer {
        &self.replay
    }

    /// Loads pre-trained weights into both networks (the paper trains
    /// offline, then loads the result onto the hub).
    ///
    /// # Panics
    ///
    /// Panics if the architecture differs from the configuration's.
    pub fn load_network(&mut self, net: &Mlp) {
        self.online.copy_weights_from(net);
        self.target.copy_weights_from(net);
    }

    /// Environment steps observed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Gradient updates performed so far.
    pub fn train_steps(&self) -> usize {
        self.train_steps
    }

    /// Optimizer steps skipped by the non-finite-gradient guard (only
    /// possible on the fault-injected training path).
    pub fn skipped_train_steps(&self) -> usize {
        self.skipped_train_steps
    }

    /// The optimizer state (checkpointing).
    pub fn optimizer(&self) -> &Adam {
        &self.optimizer
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon_at(self.steps)
    }

    /// Transitions currently held in the replay buffer (telemetry:
    /// replay occupancy).
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Replay buffer capacity.
    pub fn replay_capacity(&self) -> usize {
        self.replay.capacity()
    }

    /// Loss of the most recent gradient step, if any ran yet.
    pub fn last_loss(&self) -> Option<f64> {
        self.last_loss
    }

    /// Q-values of every action at an observation.
    pub fn q_values(&self, observation: &[f64]) -> Vec<f64> {
        self.online.forward(observation)
    }

    /// Q-values through the agent's reusable inference scratch.
    ///
    /// Bit-exact with [`DqnAgent::q_values`] ([`Mlp::forward_batch`] is
    /// bit-exact with per-row [`Mlp::forward`]) but allocation-free in
    /// steady state — the observation row and every layer activation
    /// live in buffers reused across calls.
    pub fn q_values_scratch(&mut self, observation: &[f64]) -> &[f64] {
        let Self {
            online, scratch, ..
        } = self;
        scratch.obs.set_shape(1, observation.len());
        scratch.obs.row_mut(0).copy_from_slice(observation);
        online
            .forward_batch(&scratch.obs, &mut scratch.infer)
            .row(0)
    }

    /// Greedy action (no exploration).
    pub fn act_greedy(&self, observation: &[f64]) -> usize {
        argmax(&self.q_values(observation))
    }

    /// ε-greedy action selection (paper §III.C): the best action with
    /// probability `1 − ε`, otherwise one of the remaining actions
    /// uniformly (`ε/(C·PL − 1)` each).
    pub fn act<R: Rng + ?Sized>(&self, observation: &[f64], rng: &mut R) -> usize {
        let best = self.act_greedy(observation);
        let epsilon = self.epsilon();
        let n = self.config.num_actions();
        if n == 1 || !rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
            return best;
        }
        // Uniform over the other n−1 actions.
        let mut pick = rng.gen_range(0..n - 1);
        if pick >= best {
            pick += 1;
        }
        pick
    }

    /// Greedy action through the reusable inference scratch (bit-exact
    /// with [`DqnAgent::act_greedy`], allocation-free in steady state).
    pub fn act_greedy_scratch(&mut self, observation: &[f64]) -> usize {
        argmax(self.q_values_scratch(observation))
    }

    /// [`DqnAgent::act`] through the reusable inference scratch: same
    /// ε-greedy policy, same RNG draw order, no per-call allocation.
    pub fn act_scratch<R: Rng + ?Sized>(&mut self, observation: &[f64], rng: &mut R) -> usize {
        let best = self.act_greedy_scratch(observation);
        let epsilon = self.epsilon();
        let n = self.config.num_actions();
        if n == 1 || !rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
            return best;
        }
        let mut pick = rng.gen_range(0..n - 1);
        if pick >= best {
            pick += 1;
        }
        pick
    }

    /// Boltzmann (softmax) action selection: samples an action with
    /// probability `∝ exp(Q(s, a)/τ)`.
    ///
    /// A randomized deployment policy: unlike ε-greedy — whose greedy arm
    /// is deterministic and therefore learnable by a traffic-predicting
    /// (DeepJam-class) jammer — softmax sampling spreads probability over
    /// all near-optimal actions, trading a little reward for
    /// unpredictability.
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive.
    pub fn act_softmax<R: Rng + ?Sized>(
        &self,
        observation: &[f64],
        temperature: f64,
        rng: &mut R,
    ) -> usize {
        assert!(temperature > 0.0, "softmax temperature must be positive");
        let q = self.q_values(observation);
        let max = q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = q.iter().map(|v| ((v - max) / temperature).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// [`DqnAgent::act_softmax`] through the reusable inference scratch:
    /// same Boltzmann policy, same RNG draw order, no per-call
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive.
    pub fn act_softmax_scratch<R: Rng + ?Sized>(
        &mut self,
        observation: &[f64],
        temperature: f64,
        rng: &mut R,
    ) -> usize {
        assert!(temperature > 0.0, "softmax temperature must be positive");
        let Self {
            online, scratch, ..
        } = self;
        scratch.obs.set_shape(1, observation.len());
        scratch.obs.row_mut(0).copy_from_slice(observation);
        let q = online
            .forward_batch(&scratch.obs, &mut scratch.infer)
            .row(0);
        let max = q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights = &mut scratch.softmax_weights;
        weights.clear();
        weights.extend(q.iter().map(|v| ((v - max) / temperature).exp()));
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// Records a transition and performs the training schedule: push to
    /// replay, train every `train_interval` steps once `warmup` is
    /// reached, and sync the target network every
    /// `target_sync_interval` steps. Returns the training loss when a
    /// gradient step ran.
    pub fn observe<R: Rng + ?Sized>(
        &mut self,
        state: Vec<f64>,
        action: usize,
        reward: f64,
        next_state: Vec<f64>,
        rng: &mut R,
    ) -> Option<f64> {
        self.observe_with_fault(state, action, reward, next_state, rng, &mut NullFaultPlan)
    }

    /// [`DqnAgent::observe`] with a fault-injection plan threaded into
    /// the training step (see [`DqnAgent::train_step_with_fault`]).
    /// With a [`NullFaultPlan`] this monomorphizes to exactly
    /// [`DqnAgent::observe`].
    pub fn observe_with_fault<R: Rng + ?Sized, F: FaultPoint + ?Sized>(
        &mut self,
        state: Vec<f64>,
        action: usize,
        reward: f64,
        next_state: Vec<f64>,
        rng: &mut R,
        fault: &mut F,
    ) -> Option<f64> {
        self.replay.push(Experience {
            state,
            action,
            reward,
            next_state,
        });
        self.steps += 1;

        let mut loss = None;
        if self.replay.len() >= self.config.warmup
            && self.steps.is_multiple_of(self.config.train_interval)
        {
            loss = Some(self.train_step_with_fault(rng, fault));
        }
        if self.steps.is_multiple_of(self.config.target_sync_interval) {
            self.sync_target();
        }
        loss
    }

    /// One gradient step on a replay minibatch; returns the loss.
    ///
    /// Targets are `r + γ·max_{a′} Q_target(s′, a′)` written into the
    /// online network's own prediction vector so only the taken action's
    /// output receives gradient.
    ///
    /// The whole minibatch runs through the batched kernels: exactly one
    /// online forward over the packed states (its trace reused by
    /// backpropagation), one target forward over the packed next-states,
    /// and — under double DQN — one online forward over the next-states
    /// for action selection. Bit-exact with the per-sample formulation
    /// (regression-tested below).
    pub fn train_step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.train_step_with_fault(rng, &mut NullFaultPlan)
    }

    /// [`DqnAgent::train_step`] with fault injection and its recovery
    /// guard.
    ///
    /// An enabled plan may fire:
    ///
    /// * [`FaultSite::ReplayCorruption`] — one stored transition has
    ///   every scalar overwritten with a poisoned (NaN/Inf) value before
    ///   sampling;
    /// * [`FaultSite::GradientPoison`] — one gradient component is
    ///   replaced with NaN/Inf after backprop.
    ///
    /// Recovery: on the fault-injected path the gradient is checked and
    /// a non-finite gradient **skips the optimizer step** (weights and
    /// Adam moments untouched, [`DqnAgent::skipped_train_steps`]
    /// incremented) instead of silently destroying the network. The
    /// returned loss may still be non-finite — it is a measurement, not
    /// an update.
    ///
    /// All fault work is gated on [`FaultPoint::is_enabled`], so with a
    /// [`NullFaultPlan`] this monomorphizes to exactly
    /// [`DqnAgent::train_step`] (no gradient scan, no extra branch in
    /// the hot loop).
    pub fn train_step_with_fault<R: Rng + ?Sized, F: FaultPoint + ?Sized>(
        &mut self,
        rng: &mut R,
        fault: &mut F,
    ) -> f64 {
        if fault.is_enabled()
            && !self.replay.is_empty()
            && fault.should_fire(FaultSite::ReplayCorruption)
        {
            let index = fault.pick_index(FaultSite::ReplayCorruption, self.replay.len());
            let value = fault.poison(FaultSite::ReplayCorruption);
            self.replay.corrupt_at(index, value);
        }
        let Self {
            config,
            online,
            target,
            optimizer,
            replay,
            scratch,
            train_steps,
            skipped_train_steps,
            last_loss,
            ..
        } = self;
        replay.sample_into(
            config.batch_size,
            &mut scratch.states,
            &mut scratch.actions,
            &mut scratch.rewards,
            &mut scratch.next_states,
            rng,
        );
        let rows = scratch.states.rows();

        // Double DQN: the online network selects, the target network
        // evaluates.
        scratch.selected.clear();
        if config.double_dqn {
            let online_next = online.forward_batch(&scratch.next_states, &mut scratch.aux);
            for s in 0..rows {
                scratch.selected.push(argmax(online_next.row(s)));
            }
        }

        // One traced online forward over the batch — the predictions seed
        // the Q-target vectors AND the backward pass reuses the trace.
        online.forward_batch(&scratch.states, &mut scratch.online);
        scratch.targets.copy_from(scratch.online.output());

        let next_q = target.forward_batch(&scratch.next_states, &mut scratch.aux);
        for s in 0..rows {
            let bootstrap = if config.double_dqn {
                next_q.row(s)[scratch.selected[s]]
            } else {
                next_q
                    .row(s)
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max)
            };
            scratch.targets.row_mut(s)[scratch.actions[s]] =
                scratch.rewards[s] + config.gamma * bootstrap;
        }

        *train_steps += 1;
        let (loss, _) = online.backward_batch(&scratch.targets, &mut scratch.online);
        online.flatten_params_into(&mut scratch.params);
        if fault.is_enabled() {
            let mut grads = scratch.online.gradient().to_vec();
            if fault.should_fire(FaultSite::GradientPoison) {
                let index = fault.pick_index(FaultSite::GradientPoison, grads.len());
                grads[index] = fault.poison(FaultSite::GradientPoison);
            }
            if grads.iter().all(|g| g.is_finite()) {
                optimizer.step(&mut scratch.params, &grads);
                online.set_params(&scratch.params);
            } else {
                *skipped_train_steps += 1;
            }
        } else {
            optimizer.step(&mut scratch.params, scratch.online.gradient());
            online.set_params(&scratch.params);
        }
        *last_loss = Some(loss);
        loss
    }

    /// Copies the online network into the target network.
    pub fn sync_target(&mut self) {
        self.target.copy_weights_from(&self.online);
    }
}

/// Index of the largest value. Total over all `f64` inputs: ties resolve
/// to the last maximum (matching `Iterator::max_by` on a total order) and
/// NaN entries behave like `NEG_INFINITY` — never selected unless nothing
/// else exists, in which case index 0 is returned. A NaN sneaking out of
/// a diverged network thus yields an arbitrary-but-valid action instead
/// of a panic mid-deployment.
///
/// Shared with [`crate::policy`] so a detached [`crate::policy::GreedyPolicy`]
/// resolves ties and NaNs exactly like the agent it was snapshotted from.
pub(crate) fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_value = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        // NaN compares false, leaving `best` untouched.
        if v >= best_value {
            best = i;
            best_value = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> DqnConfig {
        DqnConfig {
            history_len: 2,
            num_channels: 4,
            num_power_levels: 2,
            hidden: (16, 16),
            learning_rate: 5e-3,
            replay_capacity: 2_000,
            batch_size: 16,
            target_sync_interval: 50,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 500,
            train_interval: 1,
            warmup: 32,
            gamma: 0.8,
            double_dqn: false,
        }
    }

    #[test]
    fn act_returns_valid_actions() {
        let mut rng = StdRng::seed_from_u64(0);
        let agent = DqnAgent::new(small_config(), &mut rng);
        let obs = vec![0.0; agent.config().input_size()];
        for _ in 0..100 {
            assert!(agent.act(&obs, &mut rng) < agent.config().num_actions());
        }
    }

    #[test]
    fn scratch_inference_is_bit_exact_with_allocating_paths() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut agent = DqnAgent::new(small_config(), &mut rng);
        let input = agent.config().input_size();
        for i in 0..50 {
            let obs: Vec<f64> = (0..input).map(|j| ((i * 31 + j) as f64).sin()).collect();
            let plain = agent.q_values(&obs);
            let scratch = agent.q_values_scratch(&obs).to_vec();
            assert_eq!(plain, scratch, "q_values diverged at obs {i}");
            assert_eq!(agent.act_greedy(&obs), agent.act_greedy_scratch(&obs));
            // Same RNG stream → identical ε-greedy and softmax draws.
            let mut rng_a = StdRng::seed_from_u64(1_000 + i as u64);
            let mut rng_b = rng_a.clone();
            assert_eq!(agent.act(&obs, &mut rng_a), {
                let a = agent.act_scratch(&obs, &mut rng_b);
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "rng diverged");
                a
            });
            let mut rng_c = StdRng::seed_from_u64(2_000 + i as u64);
            let mut rng_d = rng_c.clone();
            assert_eq!(
                agent.act_softmax(&obs, 0.7, &mut rng_c),
                agent.act_softmax_scratch(&obs, 0.7, &mut rng_d)
            );
        }
        // Interleaving inference with training must not disturb either:
        // the inference workspace is separate from the training trace.
        for i in 0..100 {
            let obs = vec![0.1 * (i % 7) as f64; input];
            agent.observe(obs.clone(), i % 4, -1.0, obs, &mut rng);
        }
        let obs = vec![0.3; input];
        assert_eq!(agent.q_values(&obs), agent.q_values_scratch(&obs).to_vec());
    }

    #[test]
    fn epsilon_greedy_explores_and_exploits() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = DqnAgent::new(
            DqnConfig {
                epsilon_end: 0.0,
                ..small_config()
            },
            &mut rng,
        );
        // Force ε to its floor of 0 → always the greedy action.
        agent.steps = 10_000;
        let obs = vec![0.1; agent.config().input_size()];
        let greedy = agent.act_greedy(&obs);
        for _ in 0..50 {
            assert_eq!(agent.act(&obs, &mut rng), greedy);
        }
        // ε = 1 → never stuck on one action.
        agent.steps = 0;
        let seen: std::collections::HashSet<usize> =
            (0..200).map(|_| agent.act(&obs, &mut rng)).collect();
        assert!(seen.len() > 3, "exploration too narrow: {seen:?}");
    }

    #[test]
    fn learns_a_contextual_bandit() {
        // Reward 0 for the action equal to the context tag, −10 otherwise.
        // With γ > 0 and identical next-states the optimal Q still ranks
        // the matching action highest.
        let mut rng = StdRng::seed_from_u64(2);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let contexts: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                let mut v = vec![0.0; config.input_size()];
                v[c] = 1.0;
                v
            })
            .collect();
        for step in 0..3_000 {
            let c = step % 4;
            let obs = contexts[c].clone();
            let action = agent.act(&obs, &mut rng);
            let reward = if action == c { 0.0 } else { -10.0 };
            let next = contexts[(c + 1) % 4].clone();
            agent.observe(obs, action, reward, next, &mut rng);
        }
        let mut correct = 0;
        for (c, obs) in contexts.iter().enumerate() {
            if agent.act_greedy(obs) == c {
                correct += 1;
            }
        }
        assert!(correct >= 3, "only {correct}/4 contexts learned");
    }

    #[test]
    fn target_sync_happens_on_schedule() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.0; config.input_size()];
        for _ in 0..config.target_sync_interval {
            agent.observe(obs.clone(), 0, -1.0, obs.clone(), &mut rng);
        }
        // Right after a sync the two networks agree.
        assert_eq!(agent.online.forward(&obs), agent.target.forward(&obs));
    }

    #[test]
    fn warmup_gates_training() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.0; config.input_size()];
        for i in 0..config.warmup - 1 {
            let loss = agent.observe(obs.clone(), 0, -1.0, obs.clone(), &mut rng);
            assert!(loss.is_none(), "trained too early at step {i}");
        }
        let loss = agent.observe(obs.clone(), 0, -1.0, obs.clone(), &mut rng);
        assert!(loss.is_some(), "training never started");
        assert!(agent.train_steps() == 1);
    }

    #[test]
    fn softmax_policy_is_randomized_but_value_seeking() {
        let mut rng = StdRng::seed_from_u64(9);
        let agent = DqnAgent::new(small_config(), &mut rng);
        let obs = vec![0.4; agent.config().input_size()];
        // Low temperature concentrates on the greedy action.
        let greedy = agent.act_greedy(&obs);
        let cold: Vec<usize> = (0..100)
            .map(|_| agent.act_softmax(&obs, 1e-4, &mut rng))
            .collect();
        assert!(
            cold.iter().all(|&a| a == greedy),
            "cold softmax must be greedy"
        );
        // High temperature spreads over many actions.
        let hot: std::collections::HashSet<usize> = (0..300)
            .map(|_| agent.act_softmax(&obs, 100.0, &mut rng))
            .collect();
        assert!(hot.len() > 4, "hot softmax too concentrated: {hot:?}");
    }

    #[test]
    #[should_panic]
    fn softmax_rejects_nonpositive_temperature() {
        let mut rng = StdRng::seed_from_u64(0);
        let agent = DqnAgent::new(small_config(), &mut rng);
        let obs = vec![0.0; agent.config().input_size()];
        agent.act_softmax(&obs, 0.0, &mut rng);
    }

    #[test]
    fn double_dqn_also_learns_the_bandit() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = DqnConfig {
            double_dqn: true,
            ..small_config()
        };
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let contexts: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                let mut v = vec![0.0; config.input_size()];
                v[c] = 1.0;
                v
            })
            .collect();
        for step in 0..3_000 {
            let c = step % 4;
            let obs = contexts[c].clone();
            let action = agent.act(&obs, &mut rng);
            let reward = if action == c { 0.0 } else { -10.0 };
            let next = contexts[(c + 1) % 4].clone();
            agent.observe(obs, action, reward, next, &mut rng);
        }
        let mut correct = 0;
        for (c, obs) in contexts.iter().enumerate() {
            if agent.act_greedy(obs) == c {
                correct += 1;
            }
        }
        assert!(correct >= 3, "double DQN learned only {correct}/4 contexts");
    }

    #[test]
    fn double_dqn_targets_never_exceed_vanilla() {
        // The double estimator is bounded above by the max estimator for
        // the same networks: Q_t(s', argmax Q_o) <= max Q_t(s').
        let mut rng = StdRng::seed_from_u64(7);
        let config = small_config();
        let agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.25; config.input_size()];
        let online = agent.online.forward(&obs);
        let target = agent.target.forward(&obs);
        let double = target[argmax(&online)];
        let vanilla = target.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(double <= vanilla + 1e-12);
    }

    #[test]
    fn argmax_is_total_over_nan_and_ties() {
        // NaN behaves like NEG_INFINITY — skipped, no panic.
        assert_eq!(argmax(&[1.0, f64::NAN, 3.0, 2.0]), 2);
        assert_eq!(argmax(&[f64::NAN, 5.0]), 1);
        // All-NaN and empty inputs fall back to index 0.
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), 0);
        assert_eq!(argmax(&[]), 0);
        // Ties resolve to the LAST maximum, matching the previous
        // `max_by(partial_cmp)` behaviour.
        assert_eq!(argmax(&[2.0, 7.0, 7.0, 1.0]), 2);
        assert_eq!(argmax(&[f64::NEG_INFINITY, f64::NEG_INFINITY]), 1);
    }

    #[test]
    fn act_greedy_survives_nan_q_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut agent = DqnAgent::new(small_config(), &mut rng);
        // Poison every parameter so the forward pass emits NaN logits.
        let poisoned = vec![f64::NAN; agent.network().param_count()];
        let mut net = agent.network().clone();
        net.set_params(&poisoned);
        agent.load_network(&net);
        let obs = vec![0.5; agent.config().input_size()];
        assert!(agent.q_values(&obs).iter().all(|q| q.is_nan()));
        let action = agent.act_greedy(&obs); // must not panic
        assert!(action < agent.config().num_actions());
    }

    /// Reference implementation of the pre-batching `train_step`: one
    /// per-sample forward per network per transition, per-sample target
    /// assembly, then `Mlp::train_batch`.
    fn reference_train_step<R: Rng + ?Sized>(
        online: &mut Mlp,
        target: &Mlp,
        replay: &crate::replay::ReplayBuffer,
        config: &DqnConfig,
        opt: &mut Adam,
        rng: &mut R,
    ) -> f64 {
        let batch = replay.sample(config.batch_size, rng);
        let mut inputs: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<Vec<f64>> = Vec::new();
        for e in &batch {
            let mut target_vec = online.forward(&e.state);
            let next_q = target.forward(&e.next_state);
            let bootstrap = if config.double_dqn {
                let online_next = online.forward(&e.next_state);
                next_q[argmax(&online_next)]
            } else {
                next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            };
            target_vec[e.action] = e.reward + config.gamma * bootstrap;
            inputs.push(e.state.clone());
            targets.push(target_vec);
        }
        let pairs: Vec<(&[f64], &[f64])> = inputs
            .iter()
            .zip(&targets)
            .map(|(i, t)| (i.as_slice(), t.as_slice()))
            .collect();
        online.train_batch(&pairs, opt)
    }

    fn assert_batched_train_step_matches_reference(double_dqn: bool) {
        let mut rng = StdRng::seed_from_u64(21);
        let config = DqnConfig {
            double_dqn,
            warmup: 10_000, // gate automatic training off while filling
            ..small_config()
        };
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        for i in 0..200 {
            let mut state = vec![0.0; config.input_size()];
            state[i % config.input_size()] = (i as f64).sin();
            let mut next = vec![0.0; config.input_size()];
            next[(i + 1) % config.input_size()] = (i as f64).cos();
            agent.observe(
                state,
                i % config.num_actions(),
                -(i as f64 % 7.0),
                next,
                &mut rng,
            );
        }
        // Drive the reference path with a clone of everything, including
        // the RNG, so both draw the same minibatch.
        let mut reference = agent.network().clone();
        let target = agent.target_network().clone();
        let mut opt = Adam::with_learning_rate(config.learning_rate);
        let mut ref_rng = rng.clone();
        let ref_loss = reference_train_step(
            &mut reference,
            &target,
            agent.replay(),
            &config,
            &mut opt,
            &mut ref_rng,
        );
        let loss = agent.train_step(&mut rng);
        assert_eq!(loss, ref_loss, "batched loss deviates from per-sample");
        assert_eq!(
            agent.network().flatten_params(),
            reference.flatten_params(),
            "batched weight update deviates from per-sample"
        );
    }

    #[test]
    fn batched_train_step_is_bit_exact_with_per_sample() {
        assert_batched_train_step_matches_reference(false);
    }

    #[test]
    fn double_dqn_batched_target_selection_is_unchanged() {
        assert_batched_train_step_matches_reference(true);
    }

    #[test]
    fn zero_rate_faulted_training_is_bit_exact_with_plain() {
        use ctjam_fault::{FaultPlan, FaultRates};

        let config = small_config();
        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = rng_a.clone();
        let mut plain = DqnAgent::new(config.clone(), &mut rng_a);
        let mut faulted = DqnAgent::new(config.clone(), &mut rng_b);
        let mut plan = FaultPlan::new(77, FaultRates::zero());
        for i in 0..200 {
            let mut state = vec![0.0; config.input_size()];
            state[i % config.input_size()] = (i as f64).sin();
            let next = state.clone();
            let a = plain.observe(state.clone(), i % 4, -1.0, next.clone(), &mut rng_a);
            let b = faulted.observe_with_fault(state, i % 4, -1.0, next, &mut rng_b, &mut plan);
            assert_eq!(a, b, "loss diverged at step {i}");
        }
        assert_eq!(
            plain.network().flatten_params(),
            faulted.network().flatten_params()
        );
        assert_eq!(faulted.skipped_train_steps(), 0);
        assert_eq!(plan.total_fired(), 0);
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn poisoned_gradient_skips_the_optimizer_step() {
        use ctjam_fault::{FaultPlan, FaultRates};

        let config = small_config();
        let mut rng = StdRng::seed_from_u64(33);
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.3; config.input_size()];
        for i in 0..config.warmup {
            agent.observe(obs.clone(), i % 4, -1.0, obs.clone(), &mut rng);
        }
        let before = agent.network().flatten_params();
        let step_before = agent.optimizer().step_count();
        let mut plan = FaultPlan::new(1, FaultRates::zero().with(FaultSite::GradientPoison, 1.0));
        agent.train_step_with_fault(&mut rng, &mut plan);
        // Weights and Adam state must be exactly what they were.
        assert_eq!(agent.network().flatten_params(), before);
        assert_eq!(agent.optimizer().step_count(), step_before);
        assert_eq!(agent.skipped_train_steps(), 1);
        assert_eq!(plan.fired(FaultSite::GradientPoison), 1);
    }

    #[test]
    fn corrupted_replay_never_destroys_the_network() {
        use ctjam_fault::{FaultPlan, FaultRates};

        let config = small_config();
        let mut rng = StdRng::seed_from_u64(34);
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let mut plan = FaultPlan::new(2, FaultRates::zero().with(FaultSite::ReplayCorruption, 0.5));
        let obs = vec![0.1; config.input_size()];
        for i in 0..300 {
            agent.observe_with_fault(obs.clone(), i % 4, -2.0, obs.clone(), &mut rng, &mut plan);
        }
        assert!(plan.fired(FaultSite::ReplayCorruption) > 0);
        // NaN-tainted minibatches skipped their updates...
        assert!(agent.skipped_train_steps() > 0);
        // ...so the surviving weights stay finite.
        assert!(agent
            .network()
            .flatten_params()
            .iter()
            .all(|p| p.is_finite()));
    }

    #[test]
    fn from_parts_reproduces_training_bit_exactly() {
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(35);
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.2; config.input_size()];
        for i in 0..100 {
            agent.observe(obs.clone(), i % 4, -1.0, obs.clone(), &mut rng);
        }
        let mut resumed = DqnAgent::from_parts(
            agent.config().clone(),
            agent.network().clone(),
            agent.target_network().clone(),
            agent.optimizer().clone(),
            ReplayBuffer::restore(
                agent.replay().capacity(),
                agent.replay().items().to_vec(),
                agent.replay().write_index(),
            ),
            agent.steps(),
            agent.train_steps(),
            agent.skipped_train_steps(),
            agent.last_loss(),
        );
        let mut rng2 = rng.clone();
        for i in 0..50 {
            let a = agent.observe(obs.clone(), i % 4, -1.0, obs.clone(), &mut rng);
            let b = resumed.observe(obs.clone(), i % 4, -1.0, obs.clone(), &mut rng2);
            assert_eq!(a, b, "loss diverged at resumed step {i}");
        }
        assert_eq!(
            agent.network().flatten_params(),
            resumed.network().flatten_params()
        );
        assert_eq!(agent.steps(), resumed.steps());
        assert_eq!(agent.train_steps(), resumed.train_steps());
    }

    #[test]
    fn load_network_overrides_both_nets() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let donor = DqnAgent::new(config.clone(), &mut rng);
        agent.load_network(donor.network());
        let obs = vec![0.5; config.input_size()];
        assert_eq!(agent.online.forward(&obs), donor.online.forward(&obs));
        assert_eq!(agent.target.forward(&obs), donor.online.forward(&obs));
    }
}
