//! The DQN agent: ε-greedy action selection, replay training, and a
//! target network.

use crate::config::DqnConfig;
use crate::replay::{Experience, ReplayBuffer};
use ctjam_nn::mlp::{Mlp, MlpBuilder};
use ctjam_nn::optimizer::Adam;
use rand::Rng;

/// A deep Q-network agent over `C × PL` (channel, power) actions.
///
/// See the crate-level example for basic usage. The typical loop is:
///
/// 1. [`DqnAgent::act`] on the current observation,
/// 2. step the environment,
/// 3. [`DqnAgent::observe`] the transition — which trains the online
///    network from replay and periodically syncs the target network.
#[derive(Debug, Clone)]
pub struct DqnAgent {
    config: DqnConfig,
    online: Mlp,
    target: Mlp,
    optimizer: Adam,
    replay: ReplayBuffer,
    steps: usize,
    train_steps: usize,
    last_loss: Option<f64>,
}

impl DqnAgent {
    /// Creates an agent with freshly initialized networks.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DqnConfig::validate`]).
    pub fn new<R: Rng + ?Sized>(config: DqnConfig, rng: &mut R) -> Self {
        config.validate();
        let online = MlpBuilder::new(config.input_size())
            .hidden(config.hidden.0)
            .hidden(config.hidden.1)
            .output(config.num_actions())
            .build(rng);
        let target = online.clone();
        let optimizer = Adam::with_learning_rate(config.learning_rate);
        let replay = ReplayBuffer::new(config.replay_capacity);
        DqnAgent {
            config,
            online,
            target,
            optimizer,
            last_loss: None,
            replay,
            steps: 0,
            train_steps: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// The online (trained) network.
    pub fn network(&self) -> &Mlp {
        &self.online
    }

    /// Loads pre-trained weights into both networks (the paper trains
    /// offline, then loads the result onto the hub).
    ///
    /// # Panics
    ///
    /// Panics if the architecture differs from the configuration's.
    pub fn load_network(&mut self, net: &Mlp) {
        self.online.copy_weights_from(net);
        self.target.copy_weights_from(net);
    }

    /// Environment steps observed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Gradient updates performed so far.
    pub fn train_steps(&self) -> usize {
        self.train_steps
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon_at(self.steps)
    }

    /// Transitions currently held in the replay buffer (telemetry:
    /// replay occupancy).
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Replay buffer capacity.
    pub fn replay_capacity(&self) -> usize {
        self.replay.capacity()
    }

    /// Loss of the most recent gradient step, if any ran yet.
    pub fn last_loss(&self) -> Option<f64> {
        self.last_loss
    }

    /// Q-values of every action at an observation.
    pub fn q_values(&self, observation: &[f64]) -> Vec<f64> {
        self.online.forward(observation)
    }

    /// Greedy action (no exploration).
    pub fn act_greedy(&self, observation: &[f64]) -> usize {
        argmax(&self.q_values(observation))
    }

    /// ε-greedy action selection (paper §III.C): the best action with
    /// probability `1 − ε`, otherwise one of the remaining actions
    /// uniformly (`ε/(C·PL − 1)` each).
    pub fn act<R: Rng + ?Sized>(&self, observation: &[f64], rng: &mut R) -> usize {
        let best = self.act_greedy(observation);
        let epsilon = self.epsilon();
        let n = self.config.num_actions();
        if n == 1 || !rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
            return best;
        }
        // Uniform over the other n−1 actions.
        let mut pick = rng.gen_range(0..n - 1);
        if pick >= best {
            pick += 1;
        }
        pick
    }

    /// Boltzmann (softmax) action selection: samples an action with
    /// probability `∝ exp(Q(s, a)/τ)`.
    ///
    /// A randomized deployment policy: unlike ε-greedy — whose greedy arm
    /// is deterministic and therefore learnable by a traffic-predicting
    /// (DeepJam-class) jammer — softmax sampling spreads probability over
    /// all near-optimal actions, trading a little reward for
    /// unpredictability.
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive.
    pub fn act_softmax<R: Rng + ?Sized>(
        &self,
        observation: &[f64],
        temperature: f64,
        rng: &mut R,
    ) -> usize {
        assert!(temperature > 0.0, "softmax temperature must be positive");
        let q = self.q_values(observation);
        let max = q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = q.iter().map(|v| ((v - max) / temperature).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// Records a transition and performs the training schedule: push to
    /// replay, train every `train_interval` steps once `warmup` is
    /// reached, and sync the target network every
    /// `target_sync_interval` steps. Returns the training loss when a
    /// gradient step ran.
    pub fn observe<R: Rng + ?Sized>(
        &mut self,
        state: Vec<f64>,
        action: usize,
        reward: f64,
        next_state: Vec<f64>,
        rng: &mut R,
    ) -> Option<f64> {
        self.replay.push(Experience {
            state,
            action,
            reward,
            next_state,
        });
        self.steps += 1;

        let mut loss = None;
        if self.replay.len() >= self.config.warmup
            && self.steps.is_multiple_of(self.config.train_interval)
        {
            loss = Some(self.train_step(rng));
        }
        if self.steps.is_multiple_of(self.config.target_sync_interval) {
            self.sync_target();
        }
        loss
    }

    /// One gradient step on a replay minibatch; returns the loss.
    ///
    /// Targets are `r + γ·max_{a′} Q_target(s′, a′)` written into the
    /// online network's own prediction vector so only the taken action's
    /// output receives gradient.
    pub fn train_step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let batch = self.replay.sample(self.config.batch_size, rng);
        let mut inputs: Vec<Vec<f64>> = Vec::with_capacity(batch.len());
        let mut targets: Vec<Vec<f64>> = Vec::with_capacity(batch.len());
        for e in &batch {
            let mut target_vec = self.online.forward(&e.state);
            let next_q = self.target.forward(&e.next_state);
            let bootstrap = if self.config.double_dqn {
                // Double DQN: the online network selects, the target
                // network evaluates.
                let online_next = self.online.forward(&e.next_state);
                next_q[argmax(&online_next)]
            } else {
                next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            };
            target_vec[e.action] = e.reward + self.config.gamma * bootstrap;
            inputs.push(e.state.clone());
            targets.push(target_vec);
        }
        let pairs: Vec<(&[f64], &[f64])> = inputs
            .iter()
            .zip(&targets)
            .map(|(i, t)| (i.as_slice(), t.as_slice()))
            .collect();
        self.train_steps += 1;
        let loss = self.online.train_batch(&pairs, &mut self.optimizer);
        self.last_loss = Some(loss);
        loss
    }

    /// Copies the online network into the target network.
    pub fn sync_target(&mut self) {
        self.target.copy_weights_from(&self.online);
    }
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite Q values"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> DqnConfig {
        DqnConfig {
            history_len: 2,
            num_channels: 4,
            num_power_levels: 2,
            hidden: (16, 16),
            learning_rate: 5e-3,
            replay_capacity: 2_000,
            batch_size: 16,
            target_sync_interval: 50,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 500,
            train_interval: 1,
            warmup: 32,
            gamma: 0.8,
            double_dqn: false,
        }
    }

    #[test]
    fn act_returns_valid_actions() {
        let mut rng = StdRng::seed_from_u64(0);
        let agent = DqnAgent::new(small_config(), &mut rng);
        let obs = vec![0.0; agent.config().input_size()];
        for _ in 0..100 {
            assert!(agent.act(&obs, &mut rng) < agent.config().num_actions());
        }
    }

    #[test]
    fn epsilon_greedy_explores_and_exploits() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = DqnAgent::new(
            DqnConfig {
                epsilon_end: 0.0,
                ..small_config()
            },
            &mut rng,
        );
        // Force ε to its floor of 0 → always the greedy action.
        agent.steps = 10_000;
        let obs = vec![0.1; agent.config().input_size()];
        let greedy = agent.act_greedy(&obs);
        for _ in 0..50 {
            assert_eq!(agent.act(&obs, &mut rng), greedy);
        }
        // ε = 1 → never stuck on one action.
        agent.steps = 0;
        let seen: std::collections::HashSet<usize> =
            (0..200).map(|_| agent.act(&obs, &mut rng)).collect();
        assert!(seen.len() > 3, "exploration too narrow: {seen:?}");
    }

    #[test]
    fn learns_a_contextual_bandit() {
        // Reward 0 for the action equal to the context tag, −10 otherwise.
        // With γ > 0 and identical next-states the optimal Q still ranks
        // the matching action highest.
        let mut rng = StdRng::seed_from_u64(2);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let contexts: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                let mut v = vec![0.0; config.input_size()];
                v[c] = 1.0;
                v
            })
            .collect();
        for step in 0..3_000 {
            let c = step % 4;
            let obs = contexts[c].clone();
            let action = agent.act(&obs, &mut rng);
            let reward = if action == c { 0.0 } else { -10.0 };
            let next = contexts[(c + 1) % 4].clone();
            agent.observe(obs, action, reward, next, &mut rng);
        }
        let mut correct = 0;
        for (c, obs) in contexts.iter().enumerate() {
            if agent.act_greedy(obs) == c {
                correct += 1;
            }
        }
        assert!(correct >= 3, "only {correct}/4 contexts learned");
    }

    #[test]
    fn target_sync_happens_on_schedule() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.0; config.input_size()];
        for _ in 0..config.target_sync_interval {
            agent.observe(obs.clone(), 0, -1.0, obs.clone(), &mut rng);
        }
        // Right after a sync the two networks agree.
        assert_eq!(agent.online.forward(&obs), agent.target.forward(&obs));
    }

    #[test]
    fn warmup_gates_training() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.0; config.input_size()];
        for i in 0..config.warmup - 1 {
            let loss = agent.observe(obs.clone(), 0, -1.0, obs.clone(), &mut rng);
            assert!(loss.is_none(), "trained too early at step {i}");
        }
        let loss = agent.observe(obs.clone(), 0, -1.0, obs.clone(), &mut rng);
        assert!(loss.is_some(), "training never started");
        assert!(agent.train_steps() == 1);
    }

    #[test]
    fn softmax_policy_is_randomized_but_value_seeking() {
        let mut rng = StdRng::seed_from_u64(9);
        let agent = DqnAgent::new(small_config(), &mut rng);
        let obs = vec![0.4; agent.config().input_size()];
        // Low temperature concentrates on the greedy action.
        let greedy = agent.act_greedy(&obs);
        let cold: Vec<usize> = (0..100)
            .map(|_| agent.act_softmax(&obs, 1e-4, &mut rng))
            .collect();
        assert!(
            cold.iter().all(|&a| a == greedy),
            "cold softmax must be greedy"
        );
        // High temperature spreads over many actions.
        let hot: std::collections::HashSet<usize> = (0..300)
            .map(|_| agent.act_softmax(&obs, 100.0, &mut rng))
            .collect();
        assert!(hot.len() > 4, "hot softmax too concentrated: {hot:?}");
    }

    #[test]
    #[should_panic]
    fn softmax_rejects_nonpositive_temperature() {
        let mut rng = StdRng::seed_from_u64(0);
        let agent = DqnAgent::new(small_config(), &mut rng);
        let obs = vec![0.0; agent.config().input_size()];
        agent.act_softmax(&obs, 0.0, &mut rng);
    }

    #[test]
    fn double_dqn_also_learns_the_bandit() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = DqnConfig {
            double_dqn: true,
            ..small_config()
        };
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let contexts: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                let mut v = vec![0.0; config.input_size()];
                v[c] = 1.0;
                v
            })
            .collect();
        for step in 0..3_000 {
            let c = step % 4;
            let obs = contexts[c].clone();
            let action = agent.act(&obs, &mut rng);
            let reward = if action == c { 0.0 } else { -10.0 };
            let next = contexts[(c + 1) % 4].clone();
            agent.observe(obs, action, reward, next, &mut rng);
        }
        let mut correct = 0;
        for (c, obs) in contexts.iter().enumerate() {
            if agent.act_greedy(obs) == c {
                correct += 1;
            }
        }
        assert!(correct >= 3, "double DQN learned only {correct}/4 contexts");
    }

    #[test]
    fn double_dqn_targets_never_exceed_vanilla() {
        // The double estimator is bounded above by the max estimator for
        // the same networks: Q_t(s', argmax Q_o) <= max Q_t(s').
        let mut rng = StdRng::seed_from_u64(7);
        let config = small_config();
        let agent = DqnAgent::new(config.clone(), &mut rng);
        let obs = vec![0.25; config.input_size()];
        let online = agent.online.forward(&obs);
        let target = agent.target.forward(&obs);
        let double = target[argmax(&online)];
        let vanilla = target.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(double <= vanilla + 1e-12);
    }

    #[test]
    fn load_network_overrides_both_nets() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = small_config();
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        let donor = DqnAgent::new(config.clone(), &mut rng);
        agent.load_network(donor.network());
        let obs = vec![0.5; config.input_size()];
        assert_eq!(agent.online.forward(&obs), donor.online.forward(&obs));
        assert_eq!(agent.target.forward(&obs), donor.online.forward(&obs));
    }
}
