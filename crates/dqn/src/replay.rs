//! Experience replay buffer.

use ctjam_nn::batch::Batch;
use rand::Rng;

/// One transition `(s, a, r, s′)` of the continuing anti-jamming task
/// (no terminal states — the competition never ends).
#[derive(Debug, Clone, PartialEq)]
pub struct Experience {
    /// Observation before acting.
    pub state: Vec<f64>,
    /// Action index taken.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// Observation after the environment stepped.
    pub next_state: Vec<f64>,
}

/// A fixed-capacity ring buffer of experiences with uniform sampling.
///
/// # Example
///
/// ```
/// use ctjam_dqn::replay::{Experience, ReplayBuffer};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut buf = ReplayBuffer::new(100);
/// buf.push(Experience { state: vec![0.0], action: 1, reward: -5.0, next_state: vec![1.0] });
/// let mut rng = StdRng::seed_from_u64(0);
/// let batch = buf.sample(1, &mut rng);
/// assert_eq!(batch[0].action, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Experience>,
    write: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` experiences.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            write: 0,
        }
    }

    /// Maximum number of stored experiences.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored experiences.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The stored experiences in internal (ring) order — checkpointing
    /// and diagnostics; sampling does not depend on this order.
    pub fn items(&self) -> &[Experience] {
        &self.items
    }

    /// The ring-buffer write cursor (next overwrite position).
    pub fn write_index(&self) -> usize {
        self.write
    }

    /// Rebuilds a buffer from checkpointed state.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `items.len() > capacity`, or the write
    /// cursor is out of range.
    pub fn restore(capacity: usize, items: Vec<Experience>, write: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        assert!(items.len() <= capacity, "more items than capacity");
        assert!(write < capacity, "write cursor out of range");
        ReplayBuffer {
            capacity,
            items,
            write,
        }
    }

    /// Overwrites every scalar of the transition at `index` with
    /// `value` — fault injection's replay-corruption hook
    /// (`FaultSite::ReplayCorruption`). Returns `false` when the index
    /// is out of range.
    pub fn corrupt_at(&mut self, index: usize, value: f64) -> bool {
        let Some(e) = self.items.get_mut(index) else {
            return false;
        };
        e.state.fill(value);
        e.next_state.fill(value);
        e.reward = value;
        true
    }

    /// Inserts an experience, overwriting the oldest once full.
    pub fn push(&mut self, experience: Experience) {
        if self.items.len() < self.capacity {
            self.items.push(experience);
        } else {
            self.items[self.write] = experience;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Samples `batch` experiences uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, batch: usize, rng: &mut R) -> Vec<&'a Experience> {
        assert!(
            !self.items.is_empty(),
            "cannot sample an empty replay buffer"
        );
        (0..batch)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }

    /// Samples `batch` experiences uniformly with replacement directly
    /// into packed, reusable buffers (the batched training path's
    /// zero-allocation counterpart of [`ReplayBuffer::sample`]).
    ///
    /// Draws exactly the same RNG sequence as `sample`, so a seeded run
    /// picks identical transitions whichever entry point it uses.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        batch: usize,
        states: &mut Batch,
        actions: &mut Vec<usize>,
        rewards: &mut Vec<f64>,
        next_states: &mut Batch,
        rng: &mut R,
    ) {
        assert!(
            !self.items.is_empty(),
            "cannot sample an empty replay buffer"
        );
        states.reset(self.items[0].state.len());
        next_states.reset(self.items[0].next_state.len());
        actions.clear();
        rewards.clear();
        for _ in 0..batch {
            let e = &self.items[rng.gen_range(0..self.items.len())];
            states.push_row(&e.state);
            actions.push(e.action);
            rewards.push(e.reward);
            next_states.push_row(&e.next_state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exp(tag: f64) -> Experience {
        Experience {
            state: vec![tag],
            action: 0,
            reward: tag,
            next_state: vec![tag + 1.0],
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(exp(i as f64));
        }
        assert_eq!(buf.len(), 3);
        // Items 0 and 1 were overwritten by 3 and 4.
        let rewards: Vec<f64> = buf.items.iter().map(|e| e.reward).collect();
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sampling_covers_contents() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(exp(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let seen: std::collections::HashSet<i64> = buf
            .sample(500, &mut rng)
            .iter()
            .map(|e| e.reward as i64)
            .collect();
        assert_eq!(seen.len(), 10, "uniform sampling should hit everything");
    }

    #[test]
    fn sample_into_draws_the_same_transitions_as_sample() {
        let mut buf = ReplayBuffer::new(32);
        for i in 0..20 {
            buf.push(Experience {
                state: vec![i as f64, -(i as f64)],
                action: i % 5,
                reward: i as f64 * 0.5,
                next_state: vec![i as f64 + 1.0, 0.0],
            });
        }
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = rng_a.clone();
        let reference = buf.sample(12, &mut rng_a);

        let mut states = Batch::default();
        let mut next_states = Batch::default();
        let mut actions = Vec::new();
        let mut rewards = Vec::new();
        buf.sample_into(
            12,
            &mut states,
            &mut actions,
            &mut rewards,
            &mut next_states,
            &mut rng_b,
        );
        assert_eq!(states.rows(), 12);
        for (s, e) in reference.iter().enumerate() {
            assert_eq!(states.row(s), &e.state[..]);
            assert_eq!(actions[s], e.action);
            assert_eq!(rewards[s], e.reward);
            assert_eq!(next_states.row(s), &e.next_state[..]);
        }
        // Both RNGs advanced identically.
        assert_eq!(rng_a.gen_range(0..u32::MAX), rng_b.gen_range(0..u32::MAX));
    }

    #[test]
    fn restore_reproduces_the_buffer() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(exp(i as f64));
        }
        let copy = ReplayBuffer::restore(buf.capacity(), buf.items().to_vec(), buf.write_index());
        assert_eq!(copy.items(), buf.items());
        assert_eq!(copy.write_index(), buf.write_index());
        // Sampling draws identically from original and restored buffers.
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = rng_a.clone();
        let a: Vec<f64> = buf.sample(8, &mut rng_a).iter().map(|e| e.reward).collect();
        let b: Vec<f64> = copy
            .sample(8, &mut rng_b)
            .iter()
            .map(|e| e.reward)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_at_poisons_one_transition() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(exp(i as f64));
        }
        assert!(buf.corrupt_at(2, f64::NAN));
        assert!(buf.items()[2].reward.is_nan());
        assert!(buf.items()[2].state.iter().all(|v| v.is_nan()));
        // Neighbours untouched.
        assert_eq!(buf.items()[1].reward, 1.0);
        assert!(!buf.corrupt_at(99, 0.0));
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        buf.sample(1, &mut rng);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        ReplayBuffer::new(0);
    }
}
