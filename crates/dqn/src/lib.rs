//! Deep Q-Network agent for the CTJam anti-jamming defense.
//!
//! Implements §III.C of the paper:
//!
//! * the observation is the (outcome, channel, power) of the previous `I`
//!   time slots — `3 × I` input neurons ([`encode`]);
//! * the network is a 4-layer fully connected MLP with two ReLU hidden
//!   layers and `C × PL` linear outputs, one Q-value per
//!   (channel, power-level) action ([`config`], [`agent`]);
//! * actions are chosen ε-greedily: the argmax with probability `1 − ε`,
//!   any other action uniformly with probability `ε/(C·PL − 1)`;
//! * training uses experience replay ([`replay`]) and a periodically
//!   synchronized target network ([`agent`]).
//!
//! # Example
//!
//! ```
//! use ctjam_dqn::agent::DqnAgent;
//! use ctjam_dqn::config::DqnConfig;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = DqnConfig::default();
//! let mut agent = DqnAgent::new(config.clone(), &mut rng);
//! let observation = vec![0.0; config.input_size()];
//! let action = agent.act(&observation, &mut rng);
//! assert!(action < config.num_actions());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod checkpoint;
pub mod config;
pub mod encode;
pub mod policy;
pub mod quant;
pub mod replay;
