//! Int8-quantized greedy policies for serving, with a behavioral
//! accuracy gate.
//!
//! A [`QuantizedPolicy`] is the int8 twin of
//! [`GreedyPolicy`]: the snapshotted
//! network pushed through [`ctjam_nn::quant`]'s post-training symmetric
//! quantization, plus the same configuration and the same NaN-total
//! argmax. It exists for serving only — training and evaluation stay on
//! the f64 network.
//!
//! Because quantization is lossy, the contract is **behavioral**:
//! [`QuantizedPolicy::quantize_gated`] only hands back a policy whose
//! greedy actions agree with the f64 policy on at least
//! `min_agreement` of a held-out observation set (ctjam-serve uses
//! 99.5%); otherwise it returns [`QuantGateError`] carrying the
//! measured agreement so the caller can fall back to f64 and count the
//! rejection. [`synthetic_observations`] generates calibration and
//! hold-out sets spanning the full `[-1, 1]` observation range plus the
//! corner vectors, for call sites (checkpoint loading in a server) that
//! have no recorded traffic to calibrate on.

use crate::agent::argmax;
use crate::config::DqnConfig;
use crate::policy::GreedyPolicy;
use ctjam_nn::batch::Batch;
use ctjam_nn::quant::{QuantScratch, QuantizedMlp};
use std::fmt;

/// An int8-quantized greedy-inference snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPolicy {
    config: DqnConfig,
    net: QuantizedMlp,
}

/// The quantized policy failed its greedy-action-agreement gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantGateError {
    /// Agreement measured on the hold-out set, in `[0, 1]`.
    pub agreement: f64,
    /// The agreement the gate required.
    pub required: f64,
}

impl fmt::Display for QuantGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "int8 greedy-action agreement {:.4} below required {:.4}",
            self.agreement, self.required
        )
    }
}

impl std::error::Error for QuantGateError {}

impl QuantizedPolicy {
    /// Quantizes `policy` against `calibration` observations with no
    /// accuracy gate. Prefer [`QuantizedPolicy::quantize_gated`] for
    /// anything that serves traffic.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty or its width differs from the
    /// policy input.
    pub fn quantize(policy: &GreedyPolicy, calibration: &Batch) -> Self {
        QuantizedPolicy {
            config: policy.config().clone(),
            net: QuantizedMlp::quantize(policy.network(), calibration),
        }
    }

    /// Quantizes `policy` and admits the result only if its greedy
    /// actions agree with the f64 policy on at least `min_agreement`
    /// of the `holdout` observations. Returns the admitted policy with
    /// its measured agreement.
    ///
    /// # Errors
    ///
    /// Returns [`QuantGateError`] (with the measured agreement) when
    /// the gate fails.
    ///
    /// # Panics
    ///
    /// Panics if either observation set is empty or mis-sized.
    pub fn quantize_gated(
        policy: &GreedyPolicy,
        calibration: &Batch,
        holdout: &Batch,
        min_agreement: f64,
    ) -> Result<(Self, f64), QuantGateError> {
        let quantized = Self::quantize(policy, calibration);
        let agreement = greedy_agreement(policy, &quantized, holdout);
        if agreement >= min_agreement {
            Ok((quantized, agreement))
        } else {
            Err(QuantGateError {
                agreement,
                required: min_agreement,
            })
        }
    }

    /// The snapshot's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Observation width the policy expects (`3 × I`).
    pub fn input_size(&self) -> usize {
        self.config.input_size()
    }

    /// Number of actions the policy chooses among (`C × PL`).
    pub fn num_actions(&self) -> usize {
        self.config.num_actions()
    }

    /// Bytes the quantized parameters occupy (the IoT memory-footprint
    /// number; compare with `8 ×` the f64 parameter count).
    pub fn param_bytes(&self) -> usize {
        self.net.param_bytes()
    }

    /// Greedy action at one observation through the int8 forward pass.
    /// Never panics on non-finite or huge observation *values* (they
    /// saturate/flush during quantization).
    ///
    /// # Panics
    ///
    /// Panics if the observation width differs from
    /// [`QuantizedPolicy::input_size`].
    pub fn act_greedy(&self, observation: &[f64], scratch: &mut QuantScratch) -> usize {
        let mut q = Vec::with_capacity(self.num_actions());
        self.net.forward_into(observation, scratch, &mut q);
        argmax(&q)
    }

    /// Greedy actions for a whole observation batch. Appends one action
    /// per row to `actions` (cleared first); mirrors
    /// [`GreedyPolicy::act_greedy_batch`]'s shape contract, including
    /// the empty-batch early return.
    ///
    /// # Panics
    ///
    /// Panics if `batch.cols()` differs from
    /// [`QuantizedPolicy::input_size`].
    pub fn act_greedy_batch(
        &self,
        batch: &Batch,
        scratch: &mut QuantScratch,
        actions: &mut Vec<usize>,
    ) {
        actions.clear();
        if batch.is_empty() {
            return;
        }
        let mut q = Vec::with_capacity(self.num_actions());
        for s in 0..batch.rows() {
            self.net.forward_into(batch.row(s), scratch, &mut q);
            actions.push(argmax(&q));
        }
    }
}

/// Fraction of `observations` rows on which the quantized policy picks
/// the same greedy action as the f64 policy.
///
/// # Panics
///
/// Panics if `observations` is empty or mis-sized for either policy.
pub fn greedy_agreement(
    policy: &GreedyPolicy,
    quantized: &QuantizedPolicy,
    observations: &Batch,
) -> f64 {
    assert!(observations.rows() > 0, "empty agreement set");
    let mut f64_scratch = policy.scratch();
    let mut f64_actions = Vec::new();
    policy.act_greedy_batch(observations, &mut f64_scratch, &mut f64_actions);
    let mut q_scratch = QuantScratch::default();
    let mut q_actions = Vec::new();
    quantized.act_greedy_batch(observations, &mut q_scratch, &mut q_actions);
    let agree = f64_actions
        .iter()
        .zip(&q_actions)
        .filter(|(a, b)| a == b)
        .count();
    agree as f64 / observations.rows() as f64
}

/// A deterministic synthetic observation set: `n` uniform rows over
/// `[-1, 1]` (covering both the encoder's `[0, 1]` range and the wider
/// spans bench clients generate) plus the all-zero and all-`±1` corner
/// vectors. Distinct seeds give disjoint calibration/hold-out sets.
pub fn synthetic_observations(input_size: usize, seed: u64, n: usize) -> Batch {
    assert!(input_size > 0, "observation width must be positive");
    let mut batch = Batch::with_cols(input_size);
    // SplitMix64: tiny, deterministic, and independent of the rand shim.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let mut row = vec![0.0; input_size];
    for _ in 0..n {
        row.iter_mut().for_each(|v| *v = next());
        batch.push_row(&row);
    }
    for corner in [0.0, 1.0, -1.0] {
        row.iter_mut().for_each(|v| *v = corner);
        batch.push_row(&row);
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::DqnAgent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_policy(seed: u64) -> GreedyPolicy {
        let config = DqnConfig {
            history_len: 3,
            num_channels: 4,
            num_power_levels: 2,
            hidden: (16, 12),
            replay_capacity: 256,
            batch_size: 8,
            warmup: 16,
            ..DqnConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agent = DqnAgent::new(config.clone(), &mut rng);
        for i in 0..80 {
            let mut state = vec![0.0; config.input_size()];
            state[i % config.input_size()] = (i as f64).sin();
            let next = state.clone();
            agent.observe(state, i % config.num_actions(), -1.0, next, &mut rng);
        }
        GreedyPolicy::from_agent(&agent)
    }

    #[test]
    fn gated_quantization_reports_agreement() {
        let policy = small_policy(21);
        let calib = synthetic_observations(policy.input_size(), 1, 128);
        let holdout = synthetic_observations(policy.input_size(), 2, 128);
        let (q, agreement) =
            QuantizedPolicy::quantize_gated(&policy, &calib, &holdout, 0.5).expect("gate");
        assert!((0.5..=1.0).contains(&agreement));
        assert_eq!(q.num_actions(), policy.num_actions());
        assert!(q.param_bytes() < 8 * policy.network().param_count());
    }

    #[test]
    fn impossible_gate_fails_with_measured_agreement() {
        let policy = small_policy(22);
        let calib = synthetic_observations(policy.input_size(), 3, 64);
        let holdout = synthetic_observations(policy.input_size(), 4, 64);
        // A gate above 1.0 can never pass; the error carries the
        // actually measured agreement.
        let err = QuantizedPolicy::quantize_gated(&policy, &calib, &holdout, 1.01)
            .expect_err("gate must fail");
        assert!(err.agreement <= 1.0);
        assert_eq!(err.required, 1.01);
        let msg = err.to_string();
        assert!(msg.contains("agreement"), "unhelpful error: {msg}");
    }

    #[test]
    fn synthetic_observations_are_deterministic_and_disjoint() {
        let a = synthetic_observations(6, 7, 32);
        let b = synthetic_observations(6, 7, 32);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = synthetic_observations(6, 8, 32);
        assert_ne!(a.as_slice(), c.as_slice());
        assert_eq!(a.rows(), 35, "n rows plus three corner vectors");
        assert!(a.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn batched_quantized_actions_match_per_sample() {
        let policy = small_policy(23);
        let calib = synthetic_observations(policy.input_size(), 5, 128);
        let q = QuantizedPolicy::quantize(&policy, &calib);
        let obs = synthetic_observations(policy.input_size(), 6, 17);
        let mut scratch = QuantScratch::default();
        let mut actions = Vec::new();
        q.act_greedy_batch(&obs, &mut scratch, &mut actions);
        assert_eq!(actions.len(), obs.rows());
        for (s, &batched) in actions.iter().enumerate() {
            assert_eq!(batched, q.act_greedy(obs.row(s), &mut scratch));
        }
        // Empty batch clears the output, like the f64 path.
        actions.push(42);
        q.act_greedy_batch(
            &Batch::with_cols(q.input_size()),
            &mut scratch,
            &mut actions,
        );
        assert!(actions.is_empty());
    }
}
