//! The `3 × I` observation encoding of paper §III.C.
//!
//! "The input layer has 3 × I neurons, which correspond to the state
//! (i.e., success or failure) and action (i.e., channel and power level)
//! of the Tx in previous I time slots because these three indexes are
//! observable to the victim."

use std::collections::VecDeque;

/// The victim-observable outcome of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotOutcome {
    /// Transmission succeeded cleanly.
    Success,
    /// Transmission succeeded despite jamming (the `TJ` state: elevated
    /// error rate is observable even though data got through).
    SuccessUnderJamming,
    /// Transmission failed.
    Failure,
}

impl SlotOutcome {
    /// Numeric encoding fed to the network.
    pub fn encoded(self) -> f64 {
        match self {
            SlotOutcome::Success => 1.0,
            SlotOutcome::SuccessUnderJamming => 0.5,
            SlotOutcome::Failure => 0.0,
        }
    }
}

/// One slot's observable record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotRecord {
    /// What happened.
    pub outcome: SlotOutcome,
    /// Channel used (`0..num_channels`).
    pub channel: usize,
    /// Power level used (`0..num_power_levels`).
    pub power_level: usize,
}

/// Sliding-window encoder producing the `3 × I` observation vector.
///
/// Channels and power levels are normalized to `[0, 1]`; the window is
/// zero-padded until `I` slots have been observed.
///
/// # Example
///
/// ```
/// use ctjam_dqn::encode::{ObservationEncoder, SlotOutcome, SlotRecord};
///
/// let mut enc = ObservationEncoder::new(4, 16, 10);
/// enc.push(SlotRecord { outcome: SlotOutcome::Success, channel: 3, power_level: 9 });
/// let obs = enc.encode();
/// assert_eq!(obs.len(), 12);
/// // Newest record occupies the trailing triple.
/// assert_eq!(&obs[9..], &[1.0, 0.2, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationEncoder {
    history_len: usize,
    num_channels: usize,
    num_power_levels: usize,
    window: VecDeque<SlotRecord>,
}

impl ObservationEncoder {
    /// Creates an encoder for `history_len` slots of context.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(history_len: usize, num_channels: usize, num_power_levels: usize) -> Self {
        assert!(history_len > 0, "history length must be positive");
        assert!(num_channels > 0, "need at least one channel");
        assert!(num_power_levels > 0, "need at least one power level");
        ObservationEncoder {
            history_len,
            num_channels,
            num_power_levels,
            window: VecDeque::with_capacity(history_len),
        }
    }

    /// Appends a slot record, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if the channel or power level is out of range.
    pub fn push(&mut self, record: SlotRecord) {
        assert!(record.channel < self.num_channels, "channel out of range");
        assert!(
            record.power_level < self.num_power_levels,
            "power level out of range"
        );
        if self.window.len() == self.history_len {
            self.window.pop_front();
        }
        self.window.push_back(record);
    }

    /// Number of records currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// The configured history length `I`.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// The configured channel count `C`.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// The configured power-level count `PL`.
    pub fn num_power_levels(&self) -> usize {
        self.num_power_levels
    }

    /// The window contents, oldest first (checkpointing: replaying these
    /// through [`ObservationEncoder::push`] rebuilds the window).
    pub fn records(&self) -> impl Iterator<Item = &SlotRecord> {
        self.window.iter()
    }

    /// Whether the window holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Clears the window (start of a fresh episode/run).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Encodes the window into the `3 × I` vector: oldest slot first,
    /// each slot contributing `(outcome, channel/(C−1), power/(PL−1))`.
    /// Missing history is zero-padded at the front.
    pub fn encode(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// [`ObservationEncoder::encode`] into a caller-owned buffer
    /// (cleared and refilled), so hot loops reuse one allocation across
    /// slots. Produces exactly the same vector as `encode`.
    pub fn encode_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(3 * self.history_len, 0.0);
        let offset = self.history_len - self.window.len();
        for (i, rec) in self.window.iter().enumerate() {
            let base = 3 * (offset + i);
            out[base] = rec.outcome.encoded();
            out[base + 1] = normalize(rec.channel, self.num_channels);
            out[base + 2] = normalize(rec.power_level, self.num_power_levels);
        }
    }
}

fn normalize(value: usize, count: usize) -> f64 {
    if count <= 1 {
        0.0
    } else {
        value as f64 / (count - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(outcome: SlotOutcome, channel: usize, power: usize) -> SlotRecord {
        SlotRecord {
            outcome,
            channel,
            power_level: power,
        }
    }

    #[test]
    fn encoding_dimensions() {
        let enc = ObservationEncoder::new(8, 16, 10);
        assert_eq!(enc.encode().len(), 24);
        assert!(enc.is_empty());
    }

    #[test]
    fn zero_padding_at_front() {
        let mut enc = ObservationEncoder::new(3, 16, 10);
        enc.push(rec(SlotOutcome::Failure, 15, 0));
        let obs = enc.encode();
        assert_eq!(&obs[..6], &[0.0; 6]);
        assert_eq!(&obs[6..], &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn window_slides() {
        let mut enc = ObservationEncoder::new(2, 4, 4);
        enc.push(rec(SlotOutcome::Success, 0, 0));
        enc.push(rec(SlotOutcome::Success, 1, 1));
        enc.push(rec(SlotOutcome::Failure, 2, 2));
        assert_eq!(enc.len(), 2);
        let obs = enc.encode();
        // Oldest remaining = (1,1) success; newest = (2,2) failure.
        assert_eq!(obs[0], 1.0);
        assert!((obs[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(obs[3], 0.0);
        assert!((obs[4] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_encoding_distinct() {
        assert_eq!(SlotOutcome::Success.encoded(), 1.0);
        assert_eq!(SlotOutcome::SuccessUnderJamming.encoded(), 0.5);
        assert_eq!(SlotOutcome::Failure.encoded(), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut enc = ObservationEncoder::new(2, 4, 4);
        enc.push(rec(SlotOutcome::Success, 0, 0));
        enc.reset();
        assert!(enc.is_empty());
        assert_eq!(enc.encode(), vec![0.0; 6]);
    }

    #[test]
    fn values_always_normalized() {
        let mut enc = ObservationEncoder::new(4, 16, 10);
        for i in 0..20 {
            enc.push(rec(SlotOutcome::SuccessUnderJamming, i % 16, i % 10));
            for v in enc.encode() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_channel_panics() {
        ObservationEncoder::new(2, 4, 4).push(rec(SlotOutcome::Success, 4, 0));
    }

    #[test]
    fn encode_into_reuses_a_dirty_buffer_correctly() {
        let mut enc = ObservationEncoder::new(3, 8, 4);
        let mut buf = vec![9.9; 17]; // wrong size, stale contents
        for i in 0..6 {
            enc.push(rec(SlotOutcome::Success, i % 8, i % 4));
            enc.encode_into(&mut buf);
            assert_eq!(buf, enc.encode(), "divergence after push {i}");
        }
    }
}
