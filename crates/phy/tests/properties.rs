//! Property-based tests over the PHY substrate's core invariants.

use ctjam_phy::complex::{energy, Complex64};
use ctjam_phy::emulation::{frequency_shift, optimize_alpha, quantization_error};
use ctjam_phy::fft::{fft, ifft};
use ctjam_phy::qam::Qam64;
use ctjam_phy::zigbee::chips::{ChipTable, CHIPS_PER_SYMBOL};
use ctjam_phy::zigbee::frame::{bytes_to_symbols, symbols_to_bytes, PhyFrame};
use ctjam_phy::zigbee::oqpsk::OqpskModulator;
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

proptest! {
    #[test]
    fn fft_roundtrip_is_identity(x in complex_vec(64)) {
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn fft_preserves_energy(x in complex_vec(128)) {
        let spectrum = fft(&x).unwrap();
        let lhs = energy(&x);
        let rhs = energy(&spectrum) / x.len() as f64;
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs));
    }

    #[test]
    fn qam_roundtrip(sym in 0u8..64) {
        let qam = Qam64::new();
        prop_assert_eq!(qam.demodulate(qam.modulate(sym)), sym);
    }

    #[test]
    fn qam_fast_nearest_matches_exhaustive(
        re in -3.0f64..3.0,
        im in -3.0f64..3.0,
        alpha in 0.05f64..4.0,
    ) {
        let qam = Qam64::new();
        let z = Complex64::new(re, im);
        let fast = qam.nearest_scaled(z, alpha);
        let slow = qam.nearest_exhaustive(z, alpha);
        prop_assert!((fast.1 - slow.1).abs() < 1e-9);
    }

    #[test]
    fn spread_despread_roundtrip(symbols in prop::collection::vec(0u8..16, 1..32)) {
        let t = ChipTable::new();
        let chips = t.spread(&symbols);
        prop_assert_eq!(t.despread_exact(&chips).unwrap(), symbols);
    }

    #[test]
    fn despread_corrects_sparse_chip_errors(
        symbols in prop::collection::vec(0u8..16, 1..8),
        flips in prop::collection::vec(0usize..CHIPS_PER_SYMBOL, 0..5),
    ) {
        let t = ChipTable::new();
        let tolerance = ((t.min_distance() - 1) / 2) as usize;
        let mut chips = t.spread(&symbols);
        // Flip at most `tolerance` distinct chips inside the first symbol.
        let mut distinct: Vec<usize> = flips;
        distinct.sort_unstable();
        distinct.dedup();
        distinct.truncate(tolerance);
        for &f in &distinct {
            chips[f] ^= 1;
        }
        let decoded: Vec<u8> = t.despread(&chips).into_iter().map(|(s, _)| s).collect();
        prop_assert_eq!(decoded, symbols);
    }

    #[test]
    fn oqpsk_roundtrip(symbols in prop::collection::vec(0u8..16, 1..12)) {
        let m = OqpskModulator::with_oversampling(6);
        prop_assert_eq!(m.demodulate(&m.modulate_symbols(&symbols)), symbols);
    }

    #[test]
    fn frame_roundtrip(psdu in prop::collection::vec(any::<u8>(), 0..128)) {
        let frame = PhyFrame::new(psdu.clone()).unwrap();
        let parsed = PhyFrame::parse(&frame.to_bytes()).unwrap();
        prop_assert_eq!(parsed.psdu(), &psdu[..]);
    }

    #[test]
    fn nibble_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(symbols_to_bytes(&bytes_to_symbols(&bytes)), bytes);
    }

    #[test]
    fn alpha_solution_beats_any_coarse_grid(points in complex_vec(48)) {
        let qam = Qam64::new();
        let sol = optimize_alpha(&qam, &points);
        prop_assert_eq!(
            quantization_error(&qam, &points, sol.alpha),
            sol.error
        );
        // The optimizer must do at least as well as a coarse scan of the
        // same bracket it searches internally.
        let max_target = points.iter().map(|t| t.norm()).fold(0.0f64, f64::max);
        let upper = max_target.max(1.0) * 2.0;
        // E(α) is only piecewise smooth; the optimizer targets the global
        // basin, not the exact bottom of every micro-kink, so allow a
        // 0.5% optimality band against the reference grid.
        for i in 0..=40 {
            let a = upper * i as f64 / 40.0;
            let reference = quantization_error(&qam, &points, a);
            prop_assert!(
                sol.error <= reference * 1.005 + 1e-9,
                "grid alpha {} beats optimizer by >0.5%: {} < {}",
                a,
                reference,
                sol.error
            );
        }
    }

    #[test]
    fn frequency_shift_preserves_energy(x in complex_vec(64), bins in -32i32..32) {
        let shifted = frequency_shift(&x, bins);
        prop_assert!((energy(&shifted) - energy(&x)).abs() < 1e-9 * (1.0 + energy(&x)));
    }
}

// ---------------------------------------------------------------------------
// Golden-value tests for the Eq. 1–2 scale optimizer on the reference
// ZigBee waveform: chip sequence 0 (32 chips) modulated by the O-QPSK
// modulator at 10× oversampling. The constants below were produced by
// this repository's own solver and pin its behavior down to ~1e-6 so a
// regression in the QAM search or the golden-section refinement is
// caught immediately.
// ---------------------------------------------------------------------------

fn reference_chip_waveform() -> Vec<Complex64> {
    let table = ChipTable::new();
    let modulator = OqpskModulator::with_oversampling(10);
    modulator.modulate_chips(table.sequence(0))
}

/// E(α*) and α* for the reference waveform, from this solver.
const GOLDEN_ALPHA: f64 = 0.8461781414198839;
const GOLDEN_ERROR: f64 = 3.2710833801538253;
/// E(1): the quantization error with no scale optimization at all.
const GOLDEN_ERROR_UNIT: f64 = 6.515975274846046;

#[test]
fn alpha_star_matches_golden_values_on_reference_waveform() {
    let qam = Qam64::new();
    let wave = reference_chip_waveform();
    let sol = optimize_alpha(&qam, &wave);
    assert!(
        (sol.alpha - GOLDEN_ALPHA).abs() < 1e-6,
        "alpha* drifted: {} vs golden {}",
        sol.alpha,
        GOLDEN_ALPHA
    );
    assert!(
        (sol.error - GOLDEN_ERROR).abs() < 1e-6,
        "E(alpha*) drifted: {} vs golden {}",
        sol.error,
        GOLDEN_ERROR
    );
    let unit = quantization_error(&qam, &wave, 1.0);
    assert!(
        (unit - GOLDEN_ERROR_UNIT).abs() < 1e-6,
        "E(1) drifted: {unit} vs golden {GOLDEN_ERROR_UNIT}"
    );
}

#[test]
fn alpha_star_strictly_beats_unit_scale_on_reference_waveform() {
    // The paper's point in Eq. 2: optimizing the scale roughly halves
    // the emulation error relative to transmitting at the nominal
    // amplitude. For the reference waveform the improvement is ~2×.
    let qam = Qam64::new();
    let wave = reference_chip_waveform();
    let sol = optimize_alpha(&qam, &wave);
    let unit = quantization_error(&qam, &wave, 1.0);
    assert!(
        sol.error < 0.6 * unit,
        "alpha* should beat alpha=1 by a wide margin: E(a*)={} vs E(1)={}",
        sol.error,
        unit
    );
}

#[test]
fn alpha_star_is_global_minimum_over_dense_grid() {
    // E(α) is piecewise smooth with kinks where the nearest-point
    // assignment changes, so a local search could in principle get
    // stuck. Check the solver's answer against a dense reference scan.
    let qam = Qam64::new();
    let wave = reference_chip_waveform();
    let sol = optimize_alpha(&qam, &wave);
    for i in 1..=4000 {
        let alpha = 2.0 * i as f64 / 4000.0;
        let e = quantization_error(&qam, &wave, alpha);
        assert!(
            sol.error <= e + 1e-9,
            "grid alpha {alpha} beats the solver: {e} < {}",
            sol.error
        );
    }
}

proptest! {
    // Convexity of Eq. 1 in the sense that actually holds: E(α) is the
    // pointwise minimum over nearest-point assignments of functions
    // that are each a sum of quadratics in α, so between any two scales
    // that share the same assignment the midpoint inequality
    // E((a+b)/2) ≤ (E(a) + E(b)) / 2 is exact. (Globally E is *not*
    // convex — the min over assignments introduces concave kinks.)
    #[test]
    fn quantization_error_is_midpoint_convex_within_an_assignment(
        center in 0.1f64..2.0,
        half_width in 1e-4f64..0.02,
    ) {
        let qam = Qam64::new();
        let wave = reference_chip_waveform();
        let (a, b) = (center - half_width, center + half_width);
        let assignment = |alpha: f64| -> Vec<usize> {
            wave.iter().map(|&t| qam.nearest_scaled(t, alpha).0).collect()
        };
        if assignment(a) == assignment(b) {
            // With a common assignment S at both endpoints,
            //   E(mid) ≤ F_S(mid) ≤ (F_S(a) + F_S(b))/2 = (E(a) + E(b))/2
            // because F_S is a convex quadratic and E = min_S F_S.
            let e_a = quantization_error(&qam, &wave, a);
            let e_b = quantization_error(&qam, &wave, b);
            let e_mid = quantization_error(&qam, &wave, center);
            prop_assert!(
                e_mid <= 0.5 * (e_a + e_b) + 1e-9,
                "midpoint convexity violated at [{a}, {b}]: E(mid)={e_mid}, \
                 (E(a)+E(b))/2={}",
                0.5 * (e_a + e_b)
            );
        }
    }
}
